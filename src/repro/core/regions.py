"""Regions: sets of points in the workspace (one of Scenic's primitive types).

Regions support three operations the runtime needs:

* membership (``contains_point`` / ``contains_object``) for the built-in and
  user requirements (``X is in region``);
* uniform sampling, used by the ``(in | on) region`` and ``visible`` position
  specifiers — sampling a region yields a :class:`PointInRegionDistribution`
  so the draw happens per scene;
* an optional *preferred orientation* (a vector field), which the ``on
  region`` specifier uses to optionally specify ``heading``.

The concrete region classes mirror the reference implementation: circles,
sectors (view cones), rotated rectangles, polygonal regions (unions of simple
polygons), polylines (for curbs) and finite point sets, plus lazy
intersection and difference regions evaluated by rejection.
"""

from __future__ import annotations

import math
import random as _random
from typing import Any, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..geometry import kernel as _kernel
from ..geometry.polygon import BoundingBox, Polygon, polygons_intersect
from ..geometry.spatial_index import SpatialGrid
from ..geometry.triangulation import TriangulatedSampler, sample_point_in_triangle
from .distributions import Distribution, needs_sampling
from .errors import RejectSample, ScenicError
from .utils import normalize_angle
from .vectors import Vector, VectorLike


class PointInRegionDistribution(Distribution):
    """A uniformly random point of a region (drawn once per scene)."""

    def __init__(self, region: "Region"):
        super().__init__(region)
        self.region = region

    def sample_given(self, dependency_values, rng):
        (region,) = dependency_values
        return region.uniform_point(rng)

    def __repr__(self) -> str:
        return f"PointInRegionDistribution({self.region!r})"


class Region:
    """Abstract base class for all regions."""

    def __init__(self, name: str, orientation: Optional[Any] = None):
        self.name = name
        #: Optional preferred orientation (a :class:`VectorField`).
        self.orientation = orientation

    # -- membership -------------------------------------------------------------

    def contains_point(self, point: VectorLike) -> bool:
        raise NotImplementedError

    def contains_points_batch(self, points: Any) -> "np.ndarray":
        """Membership of ``N`` points at once, as a boolean array.

        This scalar fallback simply loops :meth:`contains_point`, so
        third-party regions inherit batch semantics for free; every built-in
        region overrides it with a genuinely vectorized implementation (the
        contract: identical results to calling ``contains_point`` per point,
        up to ~1-ulp boundary coincidences).  *points* may be an ``(N, 2)``
        array or any iterable of vector-likes.
        """
        pts = _kernel.as_points(points)
        return np.fromiter(
            (bool(self.contains_point((x, y))) for x, y in pts), dtype=bool, count=len(pts)
        )

    def contains_object(self, scenic_object: Any) -> bool:
        """An object is inside iff its corners *and* edge midpoints all are.

        Corners alone wrongly accept a box straddling a concave notch of the
        region (all four corners inside, the middle of an edge outside); the
        midpoints catch that case while staying exact for convex regions,
        where corner containment already implies full containment.
        """
        corners = scenic_object.corners
        if not all(self.contains_point(corner) for corner in corners):
            return False
        count = len(corners)
        return all(
            self.contains_point((corners[i] + corners[(i + 1) % count]) / 2)
            for i in range(count)
        )

    # -- sampling ---------------------------------------------------------------

    def uniform_point(self, rng: _random.Random) -> Vector:
        """Draw a uniformly random point; may raise :class:`RejectSample`."""
        raise NotImplementedError

    def uniform_point_distribution(self) -> PointInRegionDistribution:
        return PointInRegionDistribution(self)

    # -- geometry ---------------------------------------------------------------

    def bounding_box(self) -> Optional[BoundingBox]:
        """Axis-aligned bounds, or ``None`` when unbounded."""
        return None

    def area(self) -> float:
        raise NotImplementedError(f"{type(self).__name__} has no finite area")

    def intersect(self, other: "Region") -> "Region":
        """The intersection region (sampled by rejection unless specialised)."""
        if isinstance(other, EverywhereRegion):
            return self
        if isinstance(self, EverywhereRegion):
            return other
        return IntersectionRegion(self, other)

    def difference(self, other: "Region") -> "Region":
        return DifferenceRegion(self, other)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class EverywhereRegion(Region):
    """The whole plane: everything is contained, nothing can be sampled."""

    def __init__(self, name: str = "everywhere"):
        super().__init__(name)

    def contains_point(self, point: VectorLike) -> bool:
        return True

    def contains_points_batch(self, points: Any) -> np.ndarray:
        return np.ones(len(_kernel.as_points(points)), dtype=bool)

    def contains_object(self, scenic_object: Any) -> bool:
        return True

    def uniform_point(self, rng):
        raise ScenicError("cannot sample a uniformly random point of the whole plane")


class EmptyRegion(Region):
    """The empty set (useful as an identity for unions and error cases)."""

    def __init__(self, name: str = "empty"):
        super().__init__(name)

    def contains_point(self, point: VectorLike) -> bool:
        return False

    def contains_points_batch(self, points: Any) -> np.ndarray:
        return np.zeros(len(_kernel.as_points(points)), dtype=bool)

    def contains_object(self, scenic_object: Any) -> bool:
        return False

    def uniform_point(self, rng):
        raise RejectSample("sampling from an empty region")

    def area(self) -> float:
        return 0.0


everywhere = EverywhereRegion()
nowhere = EmptyRegion()


class CircularRegion(Region):
    """A disc of the given radius about a centre point."""

    def __init__(self, center: VectorLike, radius: float, name: str = "circle"):
        super().__init__(name)
        self.center = Vector.from_any(center)
        self.radius = float(radius)
        if self.radius < 0:
            raise ScenicError("circle radius must be non-negative")

    def contains_point(self, point: VectorLike) -> bool:
        return self.center.distance_to(point) <= self.radius + 1e-9

    def contains_points_batch(self, points: Any) -> np.ndarray:
        pts = _kernel.as_points(points)
        distances = np.hypot(pts[:, 0] - self.center.x, pts[:, 1] - self.center.y)
        return distances <= self.radius + 1e-9

    def uniform_point(self, rng):
        r = self.radius * math.sqrt(rng.random())
        theta = rng.uniform(0, 2 * math.pi)
        return self.center + Vector(r * math.cos(theta), r * math.sin(theta))

    def bounding_box(self):
        return BoundingBox(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )

    def area(self) -> float:
        return math.pi * self.radius ** 2


class SectorRegion(Region):
    """A circular sector: the view cone of an :class:`OrientedPoint`.

    ``heading`` is the direction of the bisector and ``angle`` the full
    opening angle; an angle of ``2*pi`` (or more) degenerates to a disc.
    """

    def __init__(
        self,
        center: VectorLike,
        radius: float,
        heading: float,
        angle: float,
        name: str = "sector",
    ):
        super().__init__(name)
        self.center = Vector.from_any(center)
        self.radius = float(radius)
        self.heading = float(heading)
        self.angle = float(angle)
        if self.radius < 0:
            raise ScenicError("sector radius must be non-negative")
        if self.angle <= 0:
            raise ScenicError("sector angle must be positive")

    def contains_point(self, point: VectorLike) -> bool:
        point = Vector.from_any(point)
        offset = point - self.center
        if offset.norm() > self.radius + 1e-9:
            return False
        if self.angle >= 2 * math.pi - 1e-9:
            return True
        if offset.norm() < 1e-12:
            return True
        relative = abs(normalize_angle(offset.angle() - self.heading))
        return relative <= self.angle / 2 + 1e-9

    def contains_points_batch(self, points: Any) -> np.ndarray:
        pts = _kernel.as_points(points)
        dx = pts[:, 0] - self.center.x
        dy = pts[:, 1] - self.center.y
        norms = np.hypot(dx, dy)
        in_radius = norms <= self.radius + 1e-9
        if self.angle >= 2 * math.pi - 1e-9:
            return in_radius
        # Heading of the offset (anticlockwise from North), wrapped to (-pi, pi].
        angles = np.arctan2(-dx, dy)
        relative = np.abs(_normalize_angles(angles - self.heading))
        in_cone = (relative <= self.angle / 2 + 1e-9) | (norms < 1e-12)
        return in_radius & in_cone

    def uniform_point(self, rng):
        half = min(self.angle, 2 * math.pi) / 2
        theta = self.heading + rng.uniform(-half, half)
        r = self.radius * math.sqrt(rng.random())
        # theta is a *heading* (anticlockwise from North).
        return self.center + Vector(-r * math.sin(theta), r * math.cos(theta))

    def bounding_box(self):
        return BoundingBox(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )

    def area(self) -> float:
        fraction = min(self.angle, 2 * math.pi) / (2 * math.pi)
        return math.pi * self.radius ** 2 * fraction


class RectangularRegion(Region):
    """A rectangle with arbitrary heading, given by centre, width and height."""

    def __init__(
        self,
        center: VectorLike,
        heading: float,
        width: float,
        height: float,
        name: str = "rectangle",
        orientation: Optional[Any] = None,
    ):
        super().__init__(name, orientation)
        self.center = Vector.from_any(center)
        self.heading = float(heading)
        self.width = float(width)
        self.height = float(height)
        self.polygon = Polygon.rectangle(self.center, self.width, self.height, self.heading)

    def contains_point(self, point: VectorLike) -> bool:
        local = (Vector.from_any(point) - self.center).rotated_by(-self.heading)
        return abs(local.x) <= self.width / 2 + 1e-9 and abs(local.y) <= self.height / 2 + 1e-9

    def contains_points_batch(self, points: Any) -> np.ndarray:
        pts = _kernel.as_points(points)
        dx = pts[:, 0] - self.center.x
        dy = pts[:, 1] - self.center.y
        cos_h = math.cos(-self.heading)
        sin_h = math.sin(-self.heading)
        local_x = dx * cos_h - dy * sin_h
        local_y = dx * sin_h + dy * cos_h
        return (np.abs(local_x) <= self.width / 2 + 1e-9) & (
            np.abs(local_y) <= self.height / 2 + 1e-9
        )

    def uniform_point(self, rng):
        local = Vector(
            rng.uniform(-self.width / 2, self.width / 2),
            rng.uniform(-self.height / 2, self.height / 2),
        )
        return self.center + local.rotated_by(self.heading)

    def bounding_box(self):
        return self.polygon.bounding_box()

    def area(self) -> float:
        return self.width * self.height


class PolygonalRegion(Region):
    """A union of simple polygons, optionally with a preferred orientation."""

    def __init__(
        self,
        polygons: Sequence[Polygon],
        name: str = "polygonal",
        orientation: Optional[Any] = None,
    ):
        super().__init__(name, orientation)
        polygon_list = list(polygons)
        if not polygon_list:
            raise ScenicError("a polygonal region needs at least one polygon")
        self.polygons: Tuple[Polygon, ...] = tuple(polygon_list)
        self._samplers = [TriangulatedSampler(polygon) for polygon in self.polygons]
        self._areas = [polygon.area for polygon in self.polygons]
        self._total_area = sum(self._areas)
        if self._total_area <= 0:
            raise ScenicError("polygonal region has zero total area")
        self._cumulative: List[float] = []
        running = 0.0
        for polygon_area in self._areas:
            running += polygon_area / self._total_area
            self._cumulative.append(running)
        self._vertex_arrays: Optional[List[np.ndarray]] = None
        self._boxes: Optional[np.ndarray] = None
        self._grid: Optional[SpatialGrid] = None

    #: Unions with at least this many pieces index them in a SpatialGrid, so
    #: each query point is tested against its nearby pieces only.
    _GRID_MIN_POLYGONS = 8

    def _batch_tables(self) -> Tuple[List[np.ndarray], np.ndarray]:
        """Lazily built per-piece vertex arrays and (margin-padded) bounds."""
        if self._vertex_arrays is None:
            vertex_arrays = [
                np.array([(v.x, v.y) for v in polygon.vertices], dtype=float)
                for polygon in self.polygons
            ]
            boxes = np.empty((len(self.polygons), 4), dtype=float)
            for index, vertices in enumerate(vertex_arrays):
                boxes[index, 0:2] = vertices.min(axis=0)
                boxes[index, 2:4] = vertices.max(axis=0)
            # The scalar containment test accepts boundary points within a
            # ~1e-9 tolerance; pad the prefilter boxes so it cannot prune them.
            boxes += np.array([-1e-6, -1e-6, 1e-6, 1e-6])
            self._boxes = boxes
            if len(self.polygons) >= self._GRID_MIN_POLYGONS:
                self._grid = SpatialGrid(boxes)
            # Published last: concurrent callers key off _vertex_arrays, so
            # boxes and grid must be visible before it is (parallel sampling
            # shares one region across worker threads).
            self._vertex_arrays = vertex_arrays
        return self._vertex_arrays, self._boxes

    def contains_point(self, point: VectorLike) -> bool:
        if len(self.polygons) >= self._GRID_MIN_POLYGONS:
            # Large unions (road maps) test only the pieces whose grid cell
            # covers the point.  The grid over-approximates (padded bounding
            # boxes), so the boolean verdict is identical to the linear scan.
            self._batch_tables()
            if self._grid is not None:
                point = Vector.from_any(point)
                return any(
                    self.polygons[index].contains_point(point)
                    for index in self._grid.bucket_for_point(point.x, point.y)
                )
        return any(polygon.contains_point(point) for polygon in self.polygons)

    def contains_points_batch(self, points: Any) -> np.ndarray:
        pts = _kernel.as_points(points)
        result = np.zeros(len(pts), dtype=bool)
        if len(pts) == 0:
            return result
        vertex_arrays, boxes = self._batch_tables()
        if self._grid is not None:
            point_indices, piece_indices = self._grid.candidates_for_points(pts)
            for piece in np.unique(piece_indices):
                members = point_indices[piece_indices == piece]
                members = members[~result[members]]
                if len(members) == 0:
                    continue
                result[members] = _kernel.points_in_polygon(
                    vertex_arrays[piece], pts[members]
                )
            return result
        for vertices, box in zip(vertex_arrays, boxes):
            pending = (
                ~result
                & (pts[:, 0] >= box[0])
                & (pts[:, 0] <= box[2])
                & (pts[:, 1] >= box[1])
                & (pts[:, 1] <= box[3])
            )
            if pending.any():
                candidates = np.flatnonzero(pending)
                result[candidates] = _kernel.points_in_polygon(vertices, pts[candidates])
        return result

    def uniform_point(self, rng):
        u = rng.random()
        for sampler, threshold in zip(self._samplers, self._cumulative):
            if u <= threshold:
                return sampler.sample(rng)
        return self._samplers[-1].sample(rng)

    def bounding_box(self):
        boxes = [polygon.bounding_box() for polygon in self.polygons]
        return BoundingBox(
            min(box.min_x for box in boxes),
            min(box.min_y for box in boxes),
            max(box.max_x for box in boxes),
            max(box.max_y for box in boxes),
        )

    def area(self) -> float:
        return self._total_area

    def intersects_polygon(self, polygon: Polygon) -> bool:
        return any(polygons_intersect(piece, polygon) for piece in self.polygons)

    def restricted_to(self, polygons: Sequence[Polygon], name: Optional[str] = None) -> "PolygonalRegion":
        """A new region made of the given polygons but keeping this region's orientation."""
        return PolygonalRegion(polygons, name or f"{self.name}*", orientation=self.orientation)


class PolylineRegion(Region):
    """A chain (or union of chains) of line segments, e.g. the curb.

    Sampling is uniform by arc length.  The region has a natural preferred
    orientation: the heading of the segment a point lies on.  That
    orientation is exposed both through :meth:`orientation_at` and, when the
    region is constructed, through a segment-based vector field assigned to
    ``self.orientation`` by the caller (the GTA world library does this).
    """

    def __init__(self, chains: Sequence[Sequence[VectorLike]], name: str = "polyline",
                 orientation: Optional[Any] = None):
        super().__init__(name, orientation)
        self.segments: List[Tuple[Vector, Vector]] = []
        for chain in chains:
            points = [Vector.from_any(p) for p in chain]
            for start, end in zip(points[:-1], points[1:]):
                if start.distance_to(end) > 0:
                    self.segments.append((start, end))
        if not self.segments:
            raise ScenicError("a polyline region needs at least one segment")
        self._lengths = [a.distance_to(b) for a, b in self.segments]
        self._total_length = sum(self._lengths)

    def contains_point(self, point: VectorLike, tolerance: float = 0.5) -> bool:
        point = Vector.from_any(point)
        return any(
            _point_segment_distance(point, a, b) <= tolerance for a, b in self.segments
        )

    def contains_points_batch(self, points: Any, tolerance: float = 0.5) -> np.ndarray:
        pts = _kernel.as_points(points)
        result = np.zeros(len(pts), dtype=bool)
        if len(pts) == 0:
            return result
        starts = np.array([(a.x, a.y) for a, _b in self.segments], dtype=float)
        ends = np.array([(b.x, b.y) for _a, b in self.segments], dtype=float)
        segments = ends - starts  # (S, 2)
        lengths_sq = (segments ** 2).sum(axis=1)
        # Project every point onto every segment: (N, S) parameters clamped to [0, 1].
        offsets_x = pts[:, 0:1] - starts[None, :, 0]
        offsets_y = pts[:, 1:2] - starts[None, :, 1]
        with np.errstate(divide="ignore", invalid="ignore"):
            t = (offsets_x * segments[None, :, 0] + offsets_y * segments[None, :, 1]) / lengths_sq
        t = np.clip(np.where(lengths_sq > 0, t, 0.0), 0.0, 1.0)
        nearest_dx = offsets_x - t * segments[None, :, 0]
        nearest_dy = offsets_y - t * segments[None, :, 1]
        distances = np.hypot(nearest_dx, nearest_dy)
        return (distances <= tolerance).any(axis=1)

    def uniform_point(self, rng):
        target = rng.random() * self._total_length
        running = 0.0
        for (a, b), length in zip(self.segments, self._lengths):
            if running + length >= target:
                t = (target - running) / length
                return a + (b - a) * t
            running += length
        a, b = self.segments[-1]
        return b

    def orientation_at(self, point: VectorLike) -> float:
        """Heading of the nearest segment at *point*."""
        point = Vector.from_any(point)
        best_segment = min(
            self.segments, key=lambda seg: _point_segment_distance(point, seg[0], seg[1])
        )
        return (best_segment[1] - best_segment[0]).angle()

    def bounding_box(self):
        points = [p for segment in self.segments for p in segment]
        return BoundingBox.of_points(points)

    def length(self) -> float:
        return self._total_length

    def area(self) -> float:
        return 0.0


class PointSetRegion(Region):
    """A finite set of points (e.g. parking spots); sampling picks one uniformly."""

    def __init__(self, points: Iterable[VectorLike], name: str = "points",
                 orientation: Optional[Any] = None, tolerance: float = 1e-6):
        super().__init__(name, orientation)
        self.points = [Vector.from_any(p) for p in points]
        if not self.points:
            raise ScenicError("a point-set region needs at least one point")
        self.tolerance = tolerance

    def contains_point(self, point: VectorLike) -> bool:
        point = Vector.from_any(point)
        return any(point.distance_to(p) <= self.tolerance for p in self.points)

    def contains_points_batch(self, points: Any) -> np.ndarray:
        pts = _kernel.as_points(points)
        if len(pts) == 0:
            return np.zeros(0, dtype=bool)
        anchors = np.array([(p.x, p.y) for p in self.points], dtype=float)
        distances = np.hypot(
            pts[:, 0:1] - anchors[None, :, 0], pts[:, 1:2] - anchors[None, :, 1]
        )
        return (distances <= self.tolerance).any(axis=1)

    def uniform_point(self, rng):
        return rng.choice(self.points)

    def bounding_box(self):
        return BoundingBox.of_points(self.points)

    def area(self) -> float:
        return 0.0


class IntersectionRegion(Region):
    """Intersection of two regions, sampled by rejection from the smaller one."""

    def __init__(self, first: Region, second: Region, name: Optional[str] = None,
                 max_attempts: int = 200):
        super().__init__(name or f"({first.name} ∩ {second.name})",
                         first.orientation or second.orientation)
        self.first = first
        self.second = second
        self.max_attempts = max_attempts

    def _sampling_order(self) -> Tuple[Region, Region]:
        """Sample from the region with the smaller (known) area, test the other."""
        try:
            first_area = self.first.area()
        except (NotImplementedError, ScenicError):
            first_area = math.inf
        try:
            second_area = self.second.area()
        except (NotImplementedError, ScenicError):
            second_area = math.inf
        if second_area < first_area:
            return self.second, self.first
        return self.first, self.second

    def contains_point(self, point: VectorLike) -> bool:
        return self.first.contains_point(point) and self.second.contains_point(point)

    def contains_points_batch(self, points: Any) -> np.ndarray:
        pts = _kernel.as_points(points)
        return self.first.contains_points_batch(pts) & self.second.contains_points_batch(pts)

    def uniform_point(self, rng):
        source, filter_region = self._sampling_order()
        for _ in range(self.max_attempts):
            candidate = source.uniform_point(rng)
            if filter_region.contains_point(candidate):
                return candidate
        raise RejectSample(f"could not sample a point in {self.name}")

    def bounding_box(self):
        first_box = self.first.bounding_box()
        second_box = self.second.bounding_box()
        if first_box is None:
            return second_box
        if second_box is None:
            return first_box
        return BoundingBox(
            max(first_box.min_x, second_box.min_x),
            max(first_box.min_y, second_box.min_y),
            min(first_box.max_x, second_box.max_x),
            min(first_box.max_y, second_box.max_y),
        )


class DifferenceRegion(Region):
    """Points of ``first`` that are not in ``second`` (rejection sampled)."""

    def __init__(self, first: Region, second: Region, name: Optional[str] = None,
                 max_attempts: int = 200):
        super().__init__(name or f"({first.name} \\ {second.name})", first.orientation)
        self.first = first
        self.second = second
        self.max_attempts = max_attempts

    def contains_point(self, point: VectorLike) -> bool:
        return self.first.contains_point(point) and not self.second.contains_point(point)

    def contains_points_batch(self, points: Any) -> np.ndarray:
        pts = _kernel.as_points(points)
        return self.first.contains_points_batch(pts) & ~self.second.contains_points_batch(pts)

    def uniform_point(self, rng):
        for _ in range(self.max_attempts):
            candidate = self.first.uniform_point(rng)
            if not self.second.contains_point(candidate):
                return candidate
        raise RejectSample(f"could not sample a point in {self.name}")

    def bounding_box(self):
        return self.first.bounding_box()

    def area(self) -> float:
        return self.first.area()


def _normalize_angles(angles: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.core.utils.normalize_angle`: wrap into (-pi, pi]."""
    wrapped = np.mod(angles, 2 * math.pi)
    return np.where(wrapped > math.pi, wrapped - 2 * math.pi, wrapped)


def _point_segment_distance(point: Vector, a: Vector, b: Vector) -> float:
    segment = b - a
    length_sq = segment.dot(segment)
    if length_sq == 0:
        return point.distance_to(a)
    t = max(0.0, min(1.0, (point - a).dot(segment) / length_sq))
    return point.distance_to(a + segment * t)


__all__ = [
    "Region",
    "EverywhereRegion",
    "EmptyRegion",
    "everywhere",
    "nowhere",
    "CircularRegion",
    "SectorRegion",
    "RectangularRegion",
    "PolygonalRegion",
    "PolylineRegion",
    "PointSetRegion",
    "IntersectionRegion",
    "DifferenceRegion",
    "PointInRegionDistribution",
]

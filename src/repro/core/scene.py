"""Scenes: the concrete outputs of sampling a scenario.

A scene is an assignment of concrete values to every property of every
object in the scenario, plus the global parameters (Sec. 5.1).  Scenes are
what gets handed to simulator interfaces (the renderer, the Mars-rover
planner, ...) and to the perception pipeline.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .objects import Object
from .vectors import Vector
from .workspace import Workspace


class Scene:
    """A concrete configuration of objects produced by ``Scenario.generate``."""

    def __init__(
        self,
        objects: Sequence[Object],
        ego: Object,
        params: Optional[Dict[str, Any]] = None,
        workspace: Optional[Workspace] = None,
    ):
        self.objects: List[Object] = list(objects)
        self.ego = ego
        self.params: Dict[str, Any] = dict(params or {})
        self.workspace = workspace if workspace is not None else Workspace()
        #: Importance weight stamped by constructive strategies (see
        #: :mod:`repro.synthesis.importance`): an online estimate of the
        #: plain-rejection acceptance probability of the run that produced
        #: this scene.  The scene itself is always an exact sample of the
        #: requirement-conditioned prior; the weight only serves downstream
        #: prior-mass estimates.  1.0 for rejection-style strategies.
        self.importance_weight: float = 1.0

    # -- queries ---------------------------------------------------------------

    @property
    def non_ego_objects(self) -> List[Object]:
        return [scenic_object for scenic_object in self.objects if scenic_object is not self.ego]

    def objects_of_class(self, klass: type) -> List[Object]:
        return [scenic_object for scenic_object in self.objects if isinstance(scenic_object, klass)]

    def distance_between(self, first: Object, second: Object) -> float:
        return Vector.from_any(first.position).distance_to(second.position)

    def closest_object_to(self, reference: Object) -> Optional[Object]:
        others = [scenic_object for scenic_object in self.objects if scenic_object is not reference]
        if not others:
            return None
        return min(others, key=lambda other: self.distance_between(reference, other))

    def has_collisions(self) -> bool:
        """True if any pair of collision-checked objects overlaps.

        Routed through the batched separating-axis kernel (with grid pruning
        for large scenes); small scenes keep the scalar pair loop.
        """
        if len(self.objects) >= 4:
            from ..geometry import kernel

            collidable = [not obj.allowCollisions for obj in self.objects]
            if sum(collidable) >= 2:
                corners = kernel.corners_array(self.objects)
                return len(kernel.pairwise_collisions(corners, collidable)) > 0
            return False
        for i, first in enumerate(self.objects):
            for second in self.objects[i + 1:]:
                if first.allowCollisions or second.allowCollisions:
                    continue
                if first.intersects(second):
                    return True
        return False

    # -- export ----------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A plain-data summary (positions, headings, sizes, class names, params)."""
        return {
            "params": dict(self.params),
            "ego_index": self.objects.index(self.ego) if self.ego in self.objects else None,
            "objects": [
                {
                    "class": type(scenic_object).__name__,
                    "position": tuple(Vector.from_any(scenic_object.position)),
                    "heading": float(scenic_object.heading),
                    "width": float(scenic_object.width),
                    "height": float(scenic_object.height),
                    "properties": {
                        name: value
                        for name, value in scenic_object.properties.items()
                        if isinstance(value, (int, float, str, bool))
                    },
                }
                for scenic_object in self.objects
            ],
        }

    def ascii_render(self, columns: int = 60, rows: int = 24) -> str:
        """A quick textual rendering of the scene for debugging and examples.

        The ego is drawn as ``E``, other objects as ``#``; the view is fitted
        to the objects' bounding box with a small margin.
        """
        positions = [Vector.from_any(scenic_object.position) for scenic_object in self.objects]
        min_x = min(point.x for point in positions) - 5
        max_x = max(point.x for point in positions) + 5
        min_y = min(point.y for point in positions) - 5
        max_y = max(point.y for point in positions) + 5
        grid = [[" " for _ in range(columns)] for _ in range(rows)]
        for scenic_object in self.objects:
            point = Vector.from_any(scenic_object.position)
            column = int((point.x - min_x) / (max_x - min_x + 1e-9) * (columns - 1))
            row = int((point.y - min_y) / (max_y - min_y + 1e-9) * (rows - 1))
            symbol = "E" if scenic_object is self.ego else "#"
            grid[rows - 1 - row][column] = symbol
        return "\n".join("".join(row) for row in grid)

    def __len__(self) -> int:
        return len(self.objects)

    def __repr__(self) -> str:
        return f"Scene({len(self.objects)} objects, params={sorted(self.params)})"


__all__ = ["Scene"]

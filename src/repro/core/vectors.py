"""2-D vectors and rotations.

The paper works in a 2-D workspace where positions are vectors constructed
with the ``X @ Y`` syntax and headings are single angles measured
anticlockwise from North (the positive y axis).  This module provides the
concrete :class:`Vector` value type used throughout the runtime, along with
the rotation helpers used by the specifier and operator semantics
(Appendix C): ``rotate``, ``offsetLocal``, and the heading of a displacement.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Tuple, Union

from .utils import normalize_angle

VectorLike = Union["Vector", Tuple[float, float], list]


class Vector:
    """An immutable 2-D vector (position or offset) in metres.

    Supports the arithmetic used by the operator semantics: addition,
    subtraction, scalar multiplication, rotation about the origin, and
    conversion to/from plain coordinate pairs.
    """

    __slots__ = ("x", "y")

    def __init__(self, x: float, y: float):
        object.__setattr__(self, "x", float(x))
        object.__setattr__(self, "y", float(y))

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("Vector instances are immutable")

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def from_any(value: VectorLike) -> "Vector":
        """Coerce a ``Vector``, pair, or object with a ``position`` into a Vector."""
        if isinstance(value, Vector):
            return value
        if hasattr(value, "to_vector"):
            return value.to_vector()
        if hasattr(value, "position"):
            return Vector.from_any(value.position)
        if isinstance(value, (tuple, list)) and len(value) == 2:
            return Vector(value[0], value[1])
        raise TypeError(f"cannot interpret {value!r} as a vector")

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other: VectorLike) -> "Vector":
        other = Vector.from_any(other)
        return Vector(self.x + other.x, self.y + other.y)

    __radd__ = __add__

    def __sub__(self, other: VectorLike) -> "Vector":
        other = Vector.from_any(other)
        return Vector(self.x - other.x, self.y - other.y)

    def __rsub__(self, other: VectorLike) -> "Vector":
        other = Vector.from_any(other)
        return Vector(other.x - self.x, other.y - self.y)

    def __mul__(self, scalar: float) -> "Vector":
        return Vector(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vector":
        return Vector(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Vector":
        return Vector(-self.x, -self.y)

    # -- geometry --------------------------------------------------------------

    def norm(self) -> float:
        """Euclidean length."""
        return math.hypot(self.x, self.y)

    def distance_to(self, other: VectorLike) -> float:
        other = Vector.from_any(other)
        return math.hypot(self.x - other.x, self.y - other.y)

    def dot(self, other: VectorLike) -> float:
        other = Vector.from_any(other)
        return self.x * other.x + self.y * other.y

    def cross(self, other: VectorLike) -> float:
        """Z component of the 3-D cross product (signed area of the parallelogram)."""
        other = Vector.from_any(other)
        return self.x * other.y - self.y * other.x

    def rotated_by(self, angle: float) -> "Vector":
        """Rotate anticlockwise by *angle* radians about the origin.

        This is the ``rotate`` operation of Appendix C (Fig. 26).
        """
        cos_a, sin_a = math.cos(angle), math.sin(angle)
        return Vector(self.x * cos_a - self.y * sin_a, self.x * sin_a + self.y * cos_a)

    def angle(self) -> float:
        """Heading of this vector interpreted as a displacement from the origin.

        The paper's convention (``arctan`` in Appendix C) measures headings
        anticlockwise from North, so a displacement straight "ahead" (+y) has
        heading 0 and a displacement to the left (-x) has heading +pi/2.
        """
        if self.x == 0.0 and self.y == 0.0:
            return 0.0
        return normalize_angle(math.atan2(-self.x, self.y))

    def angle_from(self, origin: VectorLike) -> float:
        """Heading of the line of sight from *origin* to this vector."""
        return (self - Vector.from_any(origin)).angle()

    def offset_rotated(self, heading: float, offset: VectorLike) -> "Vector":
        """Translate by *offset* expressed in the local frame with the given heading.

        This is ``offsetLocal`` from Appendix C: the offset's y axis points
        along *heading* and its x axis points to the right of it.
        """
        return self + Vector.from_any(offset).rotated_by(heading)

    # -- conversions and protocol methods --------------------------------------

    def to_tuple(self) -> Tuple[float, float]:
        return (self.x, self.y)

    def to_vector(self) -> "Vector":
        return self

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __len__(self) -> int:
        return 2

    def __getitem__(self, index: int) -> float:
        return (self.x, self.y)[index]

    def __eq__(self, other) -> bool:
        try:
            other = Vector.from_any(other)
        except TypeError:
            return NotImplemented
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        return hash((self.x, self.y))

    def __repr__(self) -> str:
        return f"Vector({self.x:g}, {self.y:g})"

    def is_close_to(self, other: VectorLike, tolerance: float = 1e-9) -> bool:
        other = Vector.from_any(other)
        return (
            math.isclose(self.x, other.x, abs_tol=tolerance, rel_tol=tolerance)
            and math.isclose(self.y, other.y, abs_tol=tolerance, rel_tol=tolerance)
        )


ZERO_VECTOR = Vector(0.0, 0.0)


def rotate(vector: VectorLike, angle: float) -> Vector:
    """Functional form of :meth:`Vector.rotated_by` (matches Appendix C notation)."""
    return Vector.from_any(vector).rotated_by(angle)


def heading_of_segment(start: VectorLike, end: VectorLike) -> float:
    """Heading of the directed segment from *start* to *end*."""
    return (Vector.from_any(end) - Vector.from_any(start)).angle()


def heading_to_direction(heading: float) -> Vector:
    """Unit vector pointing along *heading* (0 = North = +y)."""
    return Vector(-math.sin(heading), math.cos(heading))


def centroid(points: Iterable[VectorLike]) -> Vector:
    """Arithmetic mean of a non-empty collection of points."""
    total_x = total_y = 0.0
    count = 0
    for point in points:
        vec = Vector.from_any(point)
        total_x += vec.x
        total_y += vec.y
        count += 1
    if count == 0:
        raise ValueError("centroid of empty point collection")
    return Vector(total_x / count, total_y / count)

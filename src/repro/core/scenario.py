"""Scenarios and the rejection sampler (Sec. 5).

A :class:`Scenario` is the compiled form of a Scenic program: the objects it
created (with possibly-random properties), the ego, the global parameters,
the declared requirements and the workspace.  ``Scenario.generate`` performs
rejection sampling: it repeatedly draws a joint sample of all random values,
instantiates concrete objects (applying mutation noise), and accepts the
scene only if the built-in requirements (containment, non-collision,
visibility — Sec. 3) and all user requirements hold.

:class:`ScenarioBuilder` is the Python-level front end: a context manager
that collects objects, the ego, parameters and requirements as they are
created, mirroring what evaluating a Scenic program does.
"""

from __future__ import annotations

import random as _random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from .context import ScenarioContext, pop_context, push_context
from .distributions import Sample, concretize
from .errors import InvalidScenarioError, RejectSample, RejectionError
from .objects import Object
from .requirements import Requirement
from .scene import Scene
from .workspace import Workspace


@dataclass
class GenerationStats:
    """Bookkeeping about one call to ``Scenario.generate``."""

    iterations: int = 0
    rejections_containment: int = 0
    rejections_collision: int = 0
    rejections_visibility: int = 0
    rejections_user: int = 0
    rejections_sampling: int = 0
    elapsed_seconds: float = 0.0

    @property
    def total_rejections(self) -> int:
        return (
            self.rejections_containment
            + self.rejections_collision
            + self.rejections_visibility
            + self.rejections_user
            + self.rejections_sampling
        )


class Scenario:
    """A distribution over scenes, sampled by rejection."""

    def __init__(
        self,
        objects: Sequence[Object],
        ego: Object,
        params: Optional[Dict[str, Any]] = None,
        requirements: Optional[Sequence[Requirement]] = None,
        workspace: Optional[Workspace] = None,
    ):
        if ego is None:
            raise InvalidScenarioError("a scenario must define an ego object")
        object_list = list(objects)
        if ego not in object_list:
            object_list.insert(0, ego)
        self.objects: List[Object] = object_list
        self.ego = ego
        self.params: Dict[str, Any] = dict(params or {})
        self.requirements: List[Requirement] = list(requirements or [])
        self.workspace = workspace if workspace is not None else Workspace()
        self.last_stats: Optional[GenerationStats] = None

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def from_context(cls, context: ScenarioContext, workspace: Optional[Workspace] = None) -> "Scenario":
        if context.ego is None:
            raise InvalidScenarioError("the scenario never assigned the ego object")
        return cls(
            objects=context.objects,
            ego=context.ego,
            params=context.params,
            requirements=context.requirements,
            workspace=workspace or context.workspace or Workspace(),
        )

    # -- sampling ---------------------------------------------------------------

    def generate(
        self,
        max_iterations: int = 2000,
        rng: Optional[_random.Random] = None,
        seed: Optional[int] = None,
    ) -> Scene:
        """Sample one scene satisfying all requirements.

        Raises :class:`RejectionError` if no valid scene is found within
        *max_iterations* candidate samples.  Statistics about the run are
        stored in :attr:`last_stats`.
        """
        if rng is None:
            rng = _random.Random(seed)
        stats = GenerationStats()
        start_time = time.perf_counter()
        scene: Optional[Scene] = None
        for iteration in range(1, max_iterations + 1):
            stats.iterations = iteration
            try:
                scene = self._sample_candidate(rng, stats)
            except RejectSample:
                stats.rejections_sampling += 1
                continue
            if scene is not None:
                break
        stats.elapsed_seconds = time.perf_counter() - start_time
        self.last_stats = stats
        if scene is None:
            raise RejectionError(max_iterations)
        return scene

    def generate_batch(
        self,
        count: int,
        max_iterations: int = 2000,
        rng: Optional[_random.Random] = None,
        seed: Optional[int] = None,
    ) -> List[Scene]:
        """Sample *count* independent scenes."""
        if rng is None:
            rng = _random.Random(seed)
        return [self.generate(max_iterations=max_iterations, rng=rng) for _ in range(count)]

    def _sample_candidate(self, rng: _random.Random, stats: GenerationStats) -> Optional[Scene]:
        """Draw one candidate scene; return it if valid, ``None`` if rejected."""
        sample = Sample(rng)
        concrete_objects = [scenic_object._concretize(sample) for scenic_object in self.objects]
        concrete_ego = self.ego._concretize(sample)
        concrete_params = {name: concretize(value, sample) for name, value in self.params.items()}

        if not self._check_builtin_requirements(concrete_objects, concrete_ego, stats):
            return None
        for requirement in self.requirements:
            if not requirement.should_enforce(rng):
                continue
            if not requirement.holds_in(sample):
                stats.rejections_user += 1
                return None
        return Scene(concrete_objects, concrete_ego, concrete_params, self.workspace)

    def _check_builtin_requirements(
        self, concrete_objects: List[Object], concrete_ego: Object, stats: GenerationStats
    ) -> bool:
        """The three default requirements of Sec. 3.

        All objects must be contained in the workspace, must not intersect
        each other (unless ``allowCollisions``), and must be visible from the
        ego (unless ``requireVisible`` is disabled).
        """
        from .operators import _can_see  # concrete implementation

        workspace_region = self.workspace.region
        for scenic_object in concrete_objects:
            if not self.workspace.is_unbounded and not workspace_region.contains_object(scenic_object):
                stats.rejections_containment += 1
                return False
        for index, first in enumerate(concrete_objects):
            for second in concrete_objects[index + 1:]:
                if first.allowCollisions or second.allowCollisions:
                    continue
                if first.intersects(second):
                    stats.rejections_collision += 1
                    return False
        for scenic_object in concrete_objects:
            if scenic_object is concrete_ego:
                continue
            if scenic_object.requireVisible and not _can_see(concrete_ego, scenic_object):
                stats.rejections_visibility += 1
                return False
        return True

    # -- misc -------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"Scenario({len(self.objects)} objects, {len(self.requirements)} requirements, "
            f"params={sorted(self.params)})"
        )


class ScenarioBuilder:
    """Python-level front end for constructing scenarios.

    Usage::

        with ScenarioBuilder(workspace=road_workspace) as builder:
            ego = Car(...)
            builder.set_ego(ego)
            Car(LeftOf(spot, by=0.5))
            builder.require(can_see(ego, other))
        scenario = builder.scenario()
    """

    def __init__(self, workspace: Optional[Workspace] = None):
        self._workspace = workspace
        self._context: Optional[ScenarioContext] = None
        self._finished_context: Optional[ScenarioContext] = None

    # -- context management ------------------------------------------------------

    def __enter__(self) -> "ScenarioBuilder":
        self._context = push_context()
        if self._workspace is not None:
            self._context.workspace = self._workspace
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self._finished_context = pop_context()
        self._context = None

    def _active(self) -> ScenarioContext:
        if self._context is None:
            raise InvalidScenarioError("the builder must be used inside a 'with' block")
        return self._context

    # -- recording ----------------------------------------------------------------

    def set_ego(self, scenic_object: Object) -> Object:
        self._active().set_ego(scenic_object)
        return scenic_object

    def require(
        self,
        condition: Union[Any, Callable],
        probability: float = 1.0,
        name: Optional[str] = None,
    ) -> Requirement:
        requirement = Requirement(condition, probability, name)
        self._active().add_requirement(requirement)
        return requirement

    def param(self, name: str, value: Any) -> None:
        self._active().set_param(name, value)

    def mutate(self, *objects: Object, scale: float = 1.0) -> None:
        """Enable mutation for the given objects (or all objects so far)."""
        context = self._active()
        targets = list(objects) if objects else list(context.objects)
        for target in targets:
            target._assign_property("mutationScale", scale)

    # -- output -------------------------------------------------------------------

    def scenario(self) -> Scenario:
        context = self._finished_context or self._context
        if context is None:
            raise InvalidScenarioError("no scenario has been built yet")
        return Scenario.from_context(context, workspace=self._workspace)


__all__ = ["Scenario", "ScenarioBuilder", "GenerationStats"]

"""Scenarios and the rejection sampler (Sec. 5).

A :class:`Scenario` is the compiled form of a Scenic program: the objects it
created (with possibly-random properties), the ego, the global parameters,
the declared requirements and the workspace.  ``Scenario.generate`` samples
a scene by rejection: a joint sample of all random values is drawn,
concrete objects are instantiated (applying mutation noise), and the scene
is accepted only if the built-in requirements (containment, non-collision,
visibility — Sec. 3) and all user requirements hold.  The sampling loop
itself lives in the pluggable engine of :mod:`repro.sampling`;
``generate``/``generate_batch`` are thin wrappers over it.

:class:`ScenarioBuilder` is the Python-level front end: a context manager
that collects objects, the ego, parameters and requirements as they are
created, mirroring what evaluating a Scenic program does.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from .context import ScenarioContext, pop_context, push_context
from .errors import InvalidScenarioError
from .objects import Object
from .requirements import Requirement
from .scene import Scene
from .workspace import Workspace


@dataclass
class GenerationStats:
    """Bookkeeping about one scene draw (one ``Scenario.generate`` call).

    ``iterations`` counts full candidate scenes; ``component_redraws`` counts
    partial re-draws of independent object groups performed by the
    dependency-aware strategies in :mod:`repro.sampling` (always 0 for plain
    rejection sampling).  ``candidates_drawn`` counts constructive proposal
    draws — positions drawn from triangle fans by the ``direct`` strategy,
    including inner membership redraws; 0 for every strategy whose
    candidates coincide with ``iterations``.  Use
    :attr:`drawn_candidates` for the cross-strategy comparable count.
    """

    iterations: int = 0
    rejections_containment: int = 0
    rejections_collision: int = 0
    rejections_visibility: int = 0
    rejections_user: int = 0
    rejections_sampling: int = 0
    component_redraws: int = 0
    candidates_drawn: int = 0
    elapsed_seconds: float = 0.0

    @property
    def drawn_candidates(self) -> int:
        """Candidates actually drawn: explicit proposal count, else iterations."""
        return max(self.iterations, self.candidates_drawn)

    @property
    def total_rejections(self) -> int:
        return (
            self.rejections_containment
            + self.rejections_collision
            + self.rejections_visibility
            + self.rejections_user
            + self.rejections_sampling
        )


class Scenario:
    """A distribution over scenes, sampled by rejection."""

    def __init__(
        self,
        objects: Sequence[Object],
        ego: Object,
        params: Optional[Dict[str, Any]] = None,
        requirements: Optional[Sequence[Requirement]] = None,
        workspace: Optional[Workspace] = None,
    ):
        if ego is None:
            raise InvalidScenarioError("a scenario must define an ego object")
        object_list = list(objects)
        if ego not in object_list:
            object_list.insert(0, ego)
        self.objects: List[Object] = object_list
        self.ego = ego
        self.params: Dict[str, Any] = dict(params or {})
        self.requirements: List[Requirement] = list(requirements or [])
        self.workspace = workspace if workspace is not None else Workspace()
        self.last_stats: Optional[GenerationStats] = None
        self._engine_cache: Dict[Any, Any] = {}
        #: Content address of the compiled artifact this scenario came from
        #: (set by :mod:`repro.language.compiler`); ``None`` for scenarios
        #: built directly through the Python API.
        self.compiled_fingerprint: Optional[str] = None
        #: The :class:`~repro.language.CompiledScenario` itself, when the
        #: scenario came out of the compiler — lets pruning fetch the
        #: artifact's cached static-analysis bounds without a cache lookup.
        self.compiled_artifact: Optional[Any] = None

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def from_source(cls, source: str, fresh: bool = True, **scenario_options: Any) -> "Scenario":
        """Compile Scenic *source* into a scenario via the artifact cache.

        A convenience front door to :func:`repro.language.compile_scenario`:
        warm compiles skip the lexer and parser (and, with ``fresh=False``,
        the interpreter too — returning the artifact's shared scenario; see
        the sharing caveat on
        :meth:`repro.language.CompiledScenario.scenario`).
        """
        from ..language.compiler import compile_scenario  # language builds on core

        return compile_scenario(source).scenario(fresh=fresh, **scenario_options)

    @classmethod
    def from_context(cls, context: ScenarioContext, workspace: Optional[Workspace] = None) -> "Scenario":
        if context.ego is None:
            raise InvalidScenarioError("the scenario never assigned the ego object")
        return cls(
            objects=context.objects,
            ego=context.ego,
            params=context.params,
            requirements=context.requirements,
            workspace=workspace or context.workspace or Workspace(),
        )

    # -- sampling ---------------------------------------------------------------

    def generate(
        self,
        max_iterations: int = 2000,
        rng: Optional[_random.Random] = None,
        seed: Optional[int] = None,
        strategy: Union[str, Any] = "rejection",
        **strategy_options: Any,
    ) -> Scene:
        """Sample one scene satisfying all requirements.

        A thin wrapper over :class:`repro.sampling.SamplerEngine`: *strategy*
        selects a registered sampling strategy (``"rejection"`` — the
        default, draw-for-draw identical to the historical behaviour —
        ``"pruning"``, ``"batch"`` or ``"parallel"``) and *strategy_options*
        are forwarded to it.  Engines are cached per (strategy, options), so
        bind-time analysis (the pruning pass, the dependency graph) runs
        once per scenario rather than once per call.  Raises
        :class:`RejectionError` if no valid scene is found within
        *max_iterations* candidate samples.  Statistics about the run are
        stored in :attr:`last_stats`.

        .. warning:: ``strategy="pruning"`` rewrites the prunable objects'
           sampling regions *in place* (sound — only volume that can never
           yield a valid scene is removed, see Sec. 5.2).  Compile a fresh
           scenario if you need an unpruned baseline of the same program.
        """
        engine = self._engine_for(strategy, strategy_options)
        try:
            return engine.sample(max_iterations=max_iterations, rng=rng, seed=seed)
        finally:
            if engine.last_stats is not None:
                self.last_stats = engine.last_stats

    def generate_batch(
        self,
        count: int,
        max_iterations: int = 2000,
        rng: Optional[_random.Random] = None,
        seed: Optional[int] = None,
        strategy: Union[str, Any] = "vectorized",
        **strategy_options: Any,
    ) -> List[Scene]:
        """Sample *count* independent scenes.

        Returns a :class:`repro.sampling.SceneBatch` — a ``list`` of scenes
        whose ``stats`` attribute aggregates the :class:`GenerationStats` of
        the *whole* batch; :attr:`last_stats` is set to the batch-wide total
        (not just the final scene's stats), also when a draw fails mid-batch.

        The default strategy is ``"vectorized"``: batch generation is where
        block-drawing candidates and rejecting them in bulk through the
        geometry kernel pays off most (single ``generate`` calls keep plain
        ``"rejection"`` as the reference semantics).  Pass
        ``strategy="rejection"`` for draw-for-draw parity with ``generate``.
        """
        engine = self._engine_for(strategy, strategy_options)
        try:
            return engine.sample_batch(count, max_iterations=max_iterations, rng=rng, seed=seed)
        finally:
            if engine.last_stats is not None:
                self.last_stats = engine.last_stats

    def _engine_for(self, strategy: Union[str, Any], strategy_options: Dict[str, Any]):
        """A cached :class:`~repro.sampling.SamplerEngine` for this scenario.

        Caching (by strategy name and options) preserves the engine's
        amortisation of bind-time analysis across repeated ``generate``
        calls.  Strategy *instances* and unhashable options are not cached —
        the caller manages those lifetimes.
        """
        from ..sampling import SamplerEngine  # local import: sampling builds on core

        if isinstance(strategy, str):
            try:
                key = (strategy, tuple(sorted(strategy_options.items())))
                hash(key)
            except TypeError:
                key = None
            if key is not None:
                engine = self._engine_cache.get(key)
                if engine is None:
                    engine = SamplerEngine(self, strategy=strategy, **strategy_options)
                    self._engine_cache[key] = engine
                return engine
        return SamplerEngine(self, strategy=strategy, **strategy_options)

    def _sample_candidate(self, rng: _random.Random, stats: GenerationStats) -> Optional[Scene]:
        """Draw one candidate scene; return it if valid, ``None`` if rejected."""
        from ..sampling import draw_candidate

        return draw_candidate(self, rng, stats)

    # -- misc -------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"Scenario({len(self.objects)} objects, {len(self.requirements)} requirements, "
            f"params={sorted(self.params)})"
        )


class ScenarioBuilder:
    """Python-level front end for constructing scenarios.

    Usage::

        with ScenarioBuilder(workspace=road_workspace) as builder:
            ego = Car(...)
            builder.set_ego(ego)
            Car(LeftOf(spot, by=0.5))
            builder.require(can_see(ego, other))
        scenario = builder.scenario()
    """

    def __init__(self, workspace: Optional[Workspace] = None):
        self._workspace = workspace
        self._context: Optional[ScenarioContext] = None
        self._finished_context: Optional[ScenarioContext] = None

    # -- context management ------------------------------------------------------

    def __enter__(self) -> "ScenarioBuilder":
        self._context = push_context()
        if self._workspace is not None:
            self._context.workspace = self._workspace
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self._finished_context = pop_context()
        self._context = None

    def _active(self) -> ScenarioContext:
        if self._context is None:
            raise InvalidScenarioError("the builder must be used inside a 'with' block")
        return self._context

    # -- recording ----------------------------------------------------------------

    def set_ego(self, scenic_object: Object) -> Object:
        self._active().set_ego(scenic_object)
        return scenic_object

    def require(
        self,
        condition: Union[Any, Callable],
        probability: float = 1.0,
        name: Optional[str] = None,
    ) -> Requirement:
        requirement = Requirement(condition, probability, name)
        self._active().add_requirement(requirement)
        return requirement

    def param(self, name: str, value: Any) -> None:
        self._active().set_param(name, value)

    def mutate(self, *objects: Object, scale: float = 1.0) -> None:
        """Enable mutation for the given objects (or all objects so far)."""
        context = self._active()
        targets = list(objects) if objects else list(context.objects)
        for target in targets:
            target._assign_property("mutationScale", scale)

    # -- output -------------------------------------------------------------------

    def scenario(self) -> Scenario:
        context = self._finished_context or self._context
        if context is None:
            raise InvalidScenarioError("no scenario has been built yet")
        return Scenario.from_context(context, workspace=self._workspace)


__all__ = ["Scenario", "ScenarioBuilder", "GenerationStats"]

"""Specifiers and the dependency-resolution algorithm (Sec. 4.3, Alg. 1).

An object is created from a class plus a list of *specifiers*, each a
function from some properties it depends on (its *dependencies*) to values
for the properties it specifies, some of them only *optionally* (another
specifier may override them).  ``resolve_specifiers`` implements Algorithm 1
of the paper: it pairs every property of the new object with a unique
specifier (preferring non-optional over optional over class defaults),
builds the dependency graph, rejects cycles, and returns the specifiers in a
valid evaluation order.

The second half of this module provides factory functions for every built-in
specifier of Tables 3 and 4, e.g. :func:`LeftOf`, :func:`Beyond`, :func:`On`,
:func:`Facing`, together with the generic :func:`With`.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .context import current_ego
from .distributions import (
    Distribution,
    FunctionDistribution,
    distribution_function,
    needs_sampling,
)
from .errors import (
    AmbiguousSpecifierError,
    CyclicDependencyError,
    MissingPropertyError,
)
from .lazy import DelayedArgument, required_properties_of, value_in_context
from .operators import (
    beyond_from,
    heading_of,
    position_of,
    visible_region_of,
)
from .regions import PointInRegionDistribution, Region
from .utils import normalize_angle
from .vectors import Vector, VectorLike


class Specifier:
    """A named bundle of property values, some of which may be optional.

    ``properties`` maps property names to values; values may be plain Python
    values, :class:`Distribution` nodes, or :class:`DelayedArgument` closures
    over properties of the object being constructed (the specifier's
    dependencies).
    """

    def __init__(self, name: str, properties: Dict[str, Any], optional: Iterable[str] = ()):
        self.name = name
        self._values = dict(properties)
        self.optional_targets: FrozenSet[str] = frozenset(optional)
        unknown_optional = self.optional_targets - set(self._values)
        if unknown_optional:
            raise ValueError(f"optional properties {unknown_optional} not specified by {name}")
        self.required_targets: FrozenSet[str] = frozenset(self._values) - self.optional_targets
        dependencies: set = set()
        for value in self._values.values():
            dependencies |= required_properties_of(value)
        self.dependencies: FrozenSet[str] = frozenset(dependencies)

    @property
    def all_targets(self) -> FrozenSet[str]:
        return self.required_targets | self.optional_targets

    def evaluate(self, context: Any) -> Dict[str, Any]:
        """Resolve all delayed values against the partially-built object."""
        return {prop: value_in_context(value, context) for prop, value in self._values.items()}

    def __repr__(self) -> str:
        return f"Specifier({self.name!r}, targets={sorted(self.all_targets)})"


ResolvedSpecifiers = List[Tuple[Specifier, List[str]]]


def resolve_specifiers(property_defaults: Dict[str, Any], specifiers: Sequence[Specifier]) -> ResolvedSpecifiers:
    """Algorithm 1 (``resolveSpecifiers``) from the paper.

    *property_defaults* maps property names to zero-argument factories
    producing the default-value expression for that property (evaluated
    afresh for each object, so random defaults are independent across
    instances).  Returns ``[(specifier, properties_it_assigns), ...]`` in a
    dependency-respecting evaluation order.
    """
    specifier_for_property: Dict[str, Specifier] = {}
    optional_specifiers: Dict[str, List[Specifier]] = defaultdict(list)

    # Gather all specified properties.
    for specifier in specifiers:
        for prop in specifier.required_targets:
            if prop in specifier_for_property:
                raise AmbiguousSpecifierError(
                    f"property '{prop}' is specified twice "
                    f"(by {specifier_for_property[prop].name} and {specifier.name})"
                )
            specifier_for_property[prop] = specifier
        for prop in specifier.optional_targets:
            optional_specifiers[prop].append(specifier)

    # Filter optional specifications: non-optional wins; two optionals clash.
    for prop, candidates in optional_specifiers.items():
        if prop in specifier_for_property:
            continue
        if len(candidates) > 1:
            raise AmbiguousSpecifierError(
                f"property '{prop}' is optionally specified by multiple specifiers: "
                + ", ".join(candidate.name for candidate in candidates)
            )
        specifier_for_property[prop] = candidates[0]

    # Add default-value specifiers for everything still unspecified.
    for prop, factory in property_defaults.items():
        if prop not in specifier_for_property:
            default_specifier = Specifier(f"default({prop})", {prop: factory()})
            specifier_for_property[prop] = default_specifier

    # Build the dependency graph over specifiers.
    chosen_specifiers = list(dict.fromkeys(specifier_for_property.values()))
    edges: Dict[Specifier, set] = {specifier: set() for specifier in chosen_specifiers}
    for specifier in chosen_specifiers:
        for dependency in specifier.dependencies:
            if dependency not in specifier_for_property:
                raise MissingPropertyError(
                    f"specifier {specifier.name} depends on property '{dependency}', "
                    "which is not specified and has no default"
                )
            provider = specifier_for_property[dependency]
            if provider is not specifier:
                edges[specifier].add(provider)
            else:
                raise CyclicDependencyError(
                    f"specifier {specifier.name} depends on a property it itself specifies"
                )

    # Topological sort (Kahn's algorithm); a leftover node means a cycle.
    in_degree = {specifier: len(deps) for specifier, deps in edges.items()}
    dependents: Dict[Specifier, List[Specifier]] = defaultdict(list)
    for specifier, deps in edges.items():
        for provider in deps:
            dependents[provider].append(specifier)
    ready = [specifier for specifier, degree in in_degree.items() if degree == 0]
    ordered: List[Specifier] = []
    while ready:
        specifier = ready.pop()
        ordered.append(specifier)
        for dependent in dependents[specifier]:
            in_degree[dependent] -= 1
            if in_degree[dependent] == 0:
                ready.append(dependent)
    if len(ordered) != len(chosen_specifiers):
        unresolved = [s.name for s in chosen_specifiers if s not in ordered]
        raise CyclicDependencyError(
            "specifiers have cyclic dependencies: " + ", ".join(unresolved)
        )

    assignments: ResolvedSpecifiers = []
    for specifier in ordered:
        assigned = [prop for prop, provider in specifier_for_property.items() if provider is specifier]
        assignments.append((specifier, assigned))
    return assignments


# ---------------------------------------------------------------------------
# Helper distributions used by sampling specifiers
# ---------------------------------------------------------------------------


class PointInVisibleRegionDistribution(Distribution):
    """A uniformly random point visible from a (possibly random) viewer."""

    def __init__(self, viewer: Any):
        super().__init__(viewer)

    def sample_given(self, dependency_values, rng):
        (viewer,) = dependency_values
        return visible_region_of(viewer).uniform_point(rng)


class PointInRegionVisibleFromDistribution(Distribution):
    """A uniformly random point of *region* that is visible from *viewer*."""

    def __init__(self, region: Any, viewer: Any):
        super().__init__(region, viewer)

    def sample_given(self, dependency_values, rng):
        region, viewer = dependency_values
        return region.intersect(visible_region_of(viewer)).uniform_point(rng)


# ---------------------------------------------------------------------------
# Concrete geometry for edge-relative placement
# ---------------------------------------------------------------------------


def _edge_offset_from_vector(base: Vector, heading: float, local_offset: Vector) -> Vector:
    return Vector.from_any(base).offset_rotated(float(heading), local_offset)


_edge_offset_from_vector = distribution_function(_edge_offset_from_vector)


def _edge_offset_from_op(oriented_point: Any, local_offset: Vector) -> Vector:
    position = Vector.from_any(oriented_point.position if hasattr(oriented_point, "position") else oriented_point)
    heading = float(oriented_point.heading) if hasattr(oriented_point, "heading") else 0.0
    return position.offset_rotated(heading, local_offset)


_edge_offset_from_op_lifted = distribution_function(_edge_offset_from_op)


def _local_offset(x: Any, y: Any) -> Any:
    if needs_sampling(x) or needs_sampling(y):
        return FunctionDistribution(lambda a, b: Vector(a, b), (x, y))
    return Vector(x, y)


# ---------------------------------------------------------------------------
# Position specifiers (Table 3)
# ---------------------------------------------------------------------------


def At(position: Any) -> Specifier:
    """``at vector`` — absolute position."""
    return Specifier("at", {"position": _as_position(position)})


def OffsetBy(offset: Any, ego: Any = None) -> Specifier:
    """``offset by vector`` — offset in the ego's local coordinate system.

    Note: Appendix C formalises this as a global offset from ``ego.position``;
    the prose (Sec. 3, "20–40 m ahead of the camera") and the reference
    implementation treat the offset as being in the ego's local frame, which
    is what we implement.
    """
    ego_object = ego if ego is not None else current_ego()
    position = _edge_offset_from_op_lifted(ego_object, _as_position(offset))
    return Specifier("offset by", {"position": position})


def OffsetAlong(direction: Any, offset: Any, ego: Any = None) -> Specifier:
    """``offset along (H | F) by vector`` — offset in the frame of an explicit heading."""
    from .operators import vector_offset_along_direction

    ego_object = ego if ego is not None else current_ego()
    position = vector_offset_along_direction(position_of(ego_object), direction, _as_position(offset))
    return Specifier("offset along", {"position": position})


def _side_of_vector(side: str, vector: Any, by: Any = 0) -> Specifier:
    """Common implementation of left/right/ahead/behind a plain vector."""
    dimension = "width" if side in ("left", "right") else "height"
    sign = -1.0 if side in ("left", "behind") else 1.0

    def evaluator(obj: Any) -> Any:
        extent = getattr(obj, dimension)
        magnitude = extent / 2 + by
        if side in ("left", "right"):
            local = _local_offset(sign * magnitude, 0)
        else:
            local = _local_offset(0, sign * magnitude)
        return _edge_offset_from_vector(_as_position(vector), obj.heading, local)

    value = DelayedArgument({dimension, "heading"}, evaluator)
    return Specifier(f"{side} of (vector)", {"position": value})


def LeftOfVector(vector: Any, by: Any = 0) -> Specifier:
    return _side_of_vector("left", vector, by)


def RightOfVector(vector: Any, by: Any = 0) -> Specifier:
    return _side_of_vector("right", vector, by)


def AheadOfVector(vector: Any, by: Any = 0) -> Specifier:
    return _side_of_vector("ahead", vector, by)


def BehindVector(vector: Any, by: Any = 0) -> Specifier:
    return _side_of_vector("behind", vector, by)


def _side_of_oriented_point(side: str, oriented_point: Any, by: Any = 0) -> Specifier:
    """left/right/ahead of/behind an OrientedPoint (optionally specifying heading)."""
    dimension = "width" if side in ("left", "right") else "height"
    sign = -1.0 if side in ("left", "behind") else 1.0

    def evaluator(obj: Any) -> Any:
        extent = getattr(obj, dimension)
        magnitude = extent / 2 + by
        if side in ("left", "right"):
            local = _local_offset(sign * magnitude, 0)
        else:
            local = _local_offset(0, sign * magnitude)
        return _edge_offset_from_op_lifted(oriented_point, local)

    position = DelayedArgument({dimension}, evaluator)
    heading = heading_of(oriented_point)
    return Specifier(
        f"{side} of (OrientedPoint)",
        {"position": position, "heading": heading},
        optional=("heading",),
    )


def _side_of_object(side: str, scenic_object: Any, by: Any = 0) -> Specifier:
    """left/right/ahead of/behind an Object: measured from the matching edge."""
    from .operators import back_of, front_of, left_edge_of, right_edge_of

    edge_function = {
        "left": left_edge_of,
        "right": right_edge_of,
        "ahead": front_of,
        "behind": back_of,
    }[side]
    return _side_of_oriented_point(side, edge_function(scenic_object), by)


def LeftOf(reference: Any, by: Any = 0) -> Specifier:
    """``left of X [by D]`` dispatching on the reference type (Table 3)."""
    return _directional("left", reference, by)


def RightOf(reference: Any, by: Any = 0) -> Specifier:
    return _directional("right", reference, by)


def AheadOf(reference: Any, by: Any = 0) -> Specifier:
    return _directional("ahead", reference, by)


def Behind(reference: Any, by: Any = 0) -> Specifier:
    return _directional("behind", reference, by)


def _directional(side: str, reference: Any, by: Any) -> Specifier:
    from .objects import Object, OrientedPoint

    if isinstance(reference, Object):
        return _side_of_object(side, reference, by)
    if isinstance(reference, OrientedPoint) or (
        isinstance(reference, Distribution) and not isinstance(reference, (PointInRegionDistribution,))
        and hasattr(reference, "heading")
    ):
        return _side_of_oriented_point(side, reference, by)
    if isinstance(reference, Distribution):
        # A random value: assume it concretises to an OrientedPoint-like value.
        return _side_of_oriented_point(side, reference, by)
    return _side_of_vector(side, reference, by)


def Beyond(base: Any, offset: Any, from_point: Any = None) -> Specifier:
    """``beyond A by O [from B]`` (B defaults to the ego)."""
    viewer = from_point if from_point is not None else current_ego()
    offset_value = _as_position_or_scalar_ahead(offset)
    position = beyond_from(position_of(base), offset_value, position_of(viewer))
    return Specifier("beyond", {"position": position})


def Visible(viewer: Any = None) -> Specifier:
    """``visible [from (Point | OrientedPoint)]`` — uniform over the visible region."""
    viewing_object = viewer if viewer is not None else current_ego()
    return Specifier("visible", {"position": PointInVisibleRegionDistribution(viewing_object)})


def In(region: Any) -> Specifier:
    """``(in | on) region`` — uniform in the region, orientation optional.

    If the region has a preferred orientation, the specifier optionally
    specifies ``heading`` as the orientation at the sampled position.
    """
    position = PointInRegionDistribution(region) if not isinstance(region, Distribution) else PointInRegionDistribution(region)
    properties: Dict[str, Any] = {"position": position}
    optional: Tuple[str, ...] = ()
    orientation = getattr(region, "orientation", None)
    if isinstance(region, Distribution):
        # The region itself is random (e.g. ``visible road``): defer the
        # orientation lookup to sampling time.
        properties["heading"] = FunctionDistribution(_orientation_at, (region, position))
        optional = ("heading",)
    elif orientation is not None:
        properties["heading"] = orientation.at(position)
        optional = ("heading",)
    return Specifier("on", properties, optional=optional)


On = In


def _orientation_at(region: Any, position: Any) -> float:
    orientation = getattr(region, "orientation", None)
    if orientation is None:
        return 0.0
    return orientation.value_at(position)


def VisibleFromRegion(region: Any, viewer: Any = None) -> Specifier:
    """``on visible region`` — uniform over the part of *region* the viewer sees."""
    viewing_object = viewer if viewer is not None else current_ego()
    position = PointInRegionVisibleFromDistribution(region, viewing_object)
    properties: Dict[str, Any] = {"position": position}
    optional: Tuple[str, ...] = ()
    orientation = getattr(region, "orientation", None)
    if orientation is not None:
        properties["heading"] = orientation.at(position)
        optional = ("heading",)
    return Specifier("on visible", properties, optional=optional)


def Following(field: Any, distance: Any, from_point: Any = None) -> Specifier:
    """``following vectorField [from vector] for scalar``."""
    from .operators import follow_field

    start = from_point if from_point is not None else current_ego()
    oriented_point = follow_field(field, position_of(start), distance)
    return Specifier(
        "following",
        {
            "position": position_of(oriented_point),
            "heading": heading_of(oriented_point),
        },
        optional=("heading",),
    )


# ---------------------------------------------------------------------------
# Heading specifiers (Table 4)
# ---------------------------------------------------------------------------


def Facing(heading_or_field: Any) -> Specifier:
    """``facing H`` or ``facing vectorField``."""
    from .vectorfields import VectorField

    if isinstance(heading_or_field, VectorField):
        field = heading_or_field
        value = DelayedArgument({"position"}, lambda obj: field.at(obj.position))
        return Specifier("facing (field)", {"heading": value})
    if isinstance(heading_or_field, DelayedArgument):
        return Specifier("facing", {"heading": heading_or_field})
    return Specifier("facing", {"heading": heading_of(heading_or_field)})


def FacingToward(target: Any) -> Specifier:
    """``facing toward vector`` — depends on the object's own position."""
    from .operators import angle_between

    value = DelayedArgument({"position"}, lambda obj: angle_between(obj.position, position_of(target)))
    return Specifier("facing toward", {"heading": value})


def FacingAwayFrom(target: Any) -> Specifier:
    """``facing away from vector``."""
    from .operators import angle_between

    value = DelayedArgument({"position"}, lambda obj: angle_between(position_of(target), obj.position))
    return Specifier("facing away from", {"heading": value})


def ApparentlyFacing(heading: Any, from_point: Any = None) -> Specifier:
    """``apparently facing H [from V]`` — heading relative to the line of sight."""
    from .lazy import required_properties_of, value_in_context
    from .operators import angle_between

    viewer = from_point if from_point is not None else current_ego()

    def evaluator(obj: Any) -> Any:
        # H may itself be lazy (e.g. ``H relative to field``): resolve it
        # against the object under construction before coercing to a heading.
        resolved = value_in_context(heading, obj)
        return heading_of(resolved) + angle_between(position_of(viewer), obj.position)

    requirements = {"position"} | required_properties_of(heading)
    return Specifier("apparently facing", {"heading": DelayedArgument(requirements, evaluator)})


# ---------------------------------------------------------------------------
# The generic specifier
# ---------------------------------------------------------------------------


def With(property_name: str, value: Any) -> Specifier:
    """``with property value`` — set any property, built-in or user-defined."""
    return Specifier(f"with {property_name}", {property_name: value})


# ---------------------------------------------------------------------------
# small coercion helpers
# ---------------------------------------------------------------------------


def _as_position(value: Any) -> Any:
    """Coerce to a (possibly random) vector."""
    if isinstance(value, (Distribution, DelayedArgument)):
        return value
    if isinstance(value, Vector):
        return value
    if hasattr(value, "position"):
        return value.position
    if isinstance(value, (tuple, list)) and len(value) == 2:
        if needs_sampling(value):
            return FunctionDistribution(lambda a, b: Vector(a, b), tuple(value))
        return Vector(value[0], value[1])
    return value


def _as_position_or_scalar_ahead(value: Any) -> Any:
    """``beyond A by O``: a scalar O means "O metres further along the line of sight"."""
    if isinstance(value, (int, float)):
        return Vector(0.0, float(value))
    return _as_position(value)


__all__ = [
    "Specifier",
    "resolve_specifiers",
    "At",
    "OffsetBy",
    "OffsetAlong",
    "LeftOf",
    "RightOf",
    "AheadOf",
    "Behind",
    "LeftOfVector",
    "RightOfVector",
    "AheadOfVector",
    "BehindVector",
    "Beyond",
    "Visible",
    "VisibleFromRegion",
    "In",
    "On",
    "Following",
    "Facing",
    "FacingToward",
    "FacingAwayFrom",
    "ApparentlyFacing",
    "With",
    "PointInVisibleRegionDistribution",
    "PointInRegionVisibleFromDistribution",
]

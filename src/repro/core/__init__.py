"""The core Scenic runtime: distributions, geometry values, objects, specifiers,
requirements, scenarios and the rejection sampler.

This package is usable on its own as an embedded Python API (see
``examples/quickstart.py``); the :mod:`repro.language` package compiles
Scenic-syntax programs down to the same primitives.
"""

from .vectors import Vector, rotate, heading_of_segment, heading_to_direction
from .distributions import (
    Range,
    Normal,
    TruncatedNormal,
    Uniform,
    Discrete,
    Options,
    resample,
    needs_sampling,
    concretize,
    Sample,
    Distribution,
)
from .regions import (
    Region,
    CircularRegion,
    SectorRegion,
    RectangularRegion,
    PolygonalRegion,
    PolylineRegion,
    PointSetRegion,
    everywhere,
    nowhere,
)
from .vectorfields import VectorField, ConstantVectorField, PolygonalVectorField, PolylineVectorField
from .objects import Point, OrientedPoint, Object
from .specifiers import (
    Specifier,
    At,
    OffsetBy,
    OffsetAlong,
    LeftOf,
    RightOf,
    AheadOf,
    Behind,
    Beyond,
    Visible,
    VisibleFromRegion,
    In,
    On,
    Following,
    Facing,
    FacingToward,
    FacingAwayFrom,
    ApparentlyFacing,
    With,
)
from .operators import (
    can_see,
    is_in_region,
    distance_between,
    angle_between,
    relative_heading,
    apparent_heading,
    front_of,
    back_of,
    left_edge_of,
    right_edge_of,
    front_left_of,
    front_right_of,
    back_left_of,
    back_right_of,
    follow_field,
    visible_region_of,
)
from .requirements import Requirement
from .workspace import Workspace
from .scene import Scene
from .scenario import Scenario, ScenarioBuilder, GenerationStats
from .pruning import prune_scenario, PruningReport
from .errors import (
    ScenicError,
    ScenicSyntaxError,
    SpecifierError,
    InvalidScenarioError,
    InfeasibleScenarioError,
    RejectionError,
)

__all__ = [
    # values
    "Vector", "rotate", "heading_of_segment", "heading_to_direction",
    # distributions
    "Range", "Normal", "TruncatedNormal", "Uniform", "Discrete", "Options",
    "resample", "needs_sampling", "concretize", "Sample", "Distribution",
    # regions and fields
    "Region", "CircularRegion", "SectorRegion", "RectangularRegion",
    "PolygonalRegion", "PolylineRegion", "PointSetRegion", "everywhere", "nowhere",
    "VectorField", "ConstantVectorField", "PolygonalVectorField", "PolylineVectorField",
    # objects
    "Point", "OrientedPoint", "Object",
    # specifiers
    "Specifier", "At", "OffsetBy", "OffsetAlong", "LeftOf", "RightOf", "AheadOf",
    "Behind", "Beyond", "Visible", "VisibleFromRegion", "In", "On", "Following",
    "Facing", "FacingToward", "FacingAwayFrom", "ApparentlyFacing", "With",
    # operators
    "can_see", "is_in_region", "distance_between", "angle_between",
    "relative_heading", "apparent_heading", "front_of", "back_of",
    "left_edge_of", "right_edge_of", "front_left_of", "front_right_of",
    "back_left_of", "back_right_of", "follow_field", "visible_region_of",
    # scenario machinery
    "Requirement", "Workspace", "Scene", "Scenario", "ScenarioBuilder",
    "GenerationStats", "prune_scenario", "PruningReport",
    # errors
    "ScenicError", "ScenicSyntaxError", "SpecifierError", "InvalidScenarioError",
    "InfeasibleScenarioError", "RejectionError",
]

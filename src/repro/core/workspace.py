"""Workspaces: the region all objects of a scene must be contained in."""

from __future__ import annotations

from typing import Any, Optional

from .regions import EverywhereRegion, Region, everywhere


class Workspace:
    """A wrapper around the region objects must stay inside.

    World libraries (e.g. the GTA-like road map, the Mars rover arena)
    provide a workspace; the default workspace is the whole plane, in which
    case the containment requirement is vacuous.
    """

    def __init__(self, region: Optional[Region] = None, name: str = "workspace"):
        self.region = region if region is not None else everywhere
        self.name = name

    @property
    def is_unbounded(self) -> bool:
        return isinstance(self.region, EverywhereRegion)

    def contains_object(self, scenic_object: Any) -> bool:
        return self.region.contains_object(scenic_object)

    def contains_point(self, point: Any) -> bool:
        return self.region.contains_point(point)

    def bounding_box(self):
        return self.region.bounding_box()

    def __repr__(self) -> str:
        return f"Workspace({self.region!r})"


__all__ = ["Workspace"]

"""Scenic's object model: ``Point``, ``OrientedPoint`` and ``Object`` (Sec. 4.1).

Objects are constructed from specifiers (see :mod:`repro.core.specifiers`);
their properties may hold random values (distributions) which are resolved
per scene by :meth:`Constructible._concretize`.  Classes declare *default
value expressions* for their properties through the ``_scenic_properties``
class attribute: a mapping from property name to a zero-argument factory
returning the default-value expression.  Factories are called once per
instance, so random defaults (e.g. a car's model) are independent across
objects, exactly as required by the paper ("Default value expressions are
evaluated each time an object is created").

Table 2's built-in properties and defaults are reproduced verbatim.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..geometry.polygon import Polygon
from .context import register_object
from .distributions import Sample, concretize, needs_sampling
from .errors import ScenicError
from .specifiers import Specifier, With, resolve_specifiers
from .utils import normalize_angle
from .vectors import Vector

PropertyFactory = Callable[[], Any]


class Constructible:
    """Base class providing the default-property and specifier machinery."""

    #: Default-value factories for the properties introduced by this class.
    _scenic_properties: Dict[str, PropertyFactory] = {}

    # -- class-level helpers ----------------------------------------------------

    @classmethod
    def _property_defaults(cls) -> Dict[str, PropertyFactory]:
        """Defaults for all properties, with subclasses overriding superclasses."""
        defaults: Dict[str, PropertyFactory] = {}
        for klass in reversed(cls.__mro__):
            class_defaults = klass.__dict__.get("_scenic_properties")
            if class_defaults:
                defaults.update(class_defaults)
        return defaults

    @classmethod
    def _make(cls, **properties: Any) -> "Constructible":
        """Build an instance directly from property values, bypassing specifiers.

        Used internally for sampled copies and for intermediate
        OrientedPoints produced by operators such as ``front of``.
        """
        instance = cls.__new__(cls)
        instance.properties = dict(properties)
        for name, value in properties.items():
            object.__setattr__(instance, name, value)
        instance._registered = False
        return instance

    # -- construction -----------------------------------------------------------

    def __init__(self, *specifiers: Specifier, **extra_properties: Any):
        specifier_list: List[Specifier] = list(specifiers)
        for name, value in extra_properties.items():
            specifier_list.append(With(name, value))
        assignments = resolve_specifiers(type(self)._property_defaults(), specifier_list)
        self.properties: Dict[str, Any] = {}
        for specifier, assigned in assignments:
            values = specifier.evaluate(self)
            for prop in assigned:
                if prop not in values:
                    raise ScenicError(
                        f"specifier {specifier.name} did not produce a value for '{prop}'"
                    )
                self._assign_property(prop, values[prop])
        self._registered = False
        self._validate()
        self._register_if_physical()

    def _assign_property(self, name: str, value: Any) -> None:
        self.properties[name] = value
        object.__setattr__(self, name, value)

    def _validate(self) -> None:
        """Subclasses may check property consistency here."""

    def _register_if_physical(self) -> None:
        """Physical objects (Object subclasses) register with the active context."""

    # -- sampling ---------------------------------------------------------------

    def _needs_sampling(self) -> bool:
        return any(needs_sampling(value) for value in self.properties.values())

    def _concretize(self, sample: Sample) -> "Constructible":
        """Return a copy of this object with all properties made concrete.

        Copies are memoised per :class:`Sample`, so an object referenced from
        several places (e.g. by requirements and by other objects' specifiers)
        has a single concrete incarnation per scene.
        """
        if sample.has_value_for(self):
            return sample.value_for(self)
        concrete_properties = {
            name: concretize(value, sample) for name, value in self.properties.items()
        }
        concrete = type(self)._make(**concrete_properties)
        concrete._source_object = self
        sample.set_value_for(self, concrete)
        concrete._apply_mutation(sample)
        return concrete

    def _apply_mutation(self, sample: Sample) -> None:
        """Hook: ``Object`` adds Gaussian noise when mutation is enabled."""

    # -- convenience ------------------------------------------------------------

    def to_vector(self) -> Vector:
        return Vector.from_any(self.position)

    def distance_to(self, other: Any) -> float:
        return Vector.from_any(self.position).distance_to(other)

    def __repr__(self) -> str:
        interesting = {
            name: value
            for name, value in self.properties.items()
            if name in ("position", "heading", "width", "height")
        }
        summary = ", ".join(f"{name}={value!r}" for name, value in interesting.items())
        return f"{type(self).__name__}({summary})"


class Point(Constructible):
    """A position in space, together with visibility and mutation parameters.

    Properties (Table 2): ``position``, ``viewDistance``, ``mutationScale``,
    ``positionStdDev``.
    """

    _scenic_properties = {
        "position": lambda: Vector(0.0, 0.0),
        "viewDistance": lambda: 50.0,
        "mutationScale": lambda: 0.0,
        "positionStdDev": lambda: 1.0,
        # Points have no extent; Object overrides these with a real bounding
        # box.  Giving them defaults here lets edge-relative specifiers
        # (``left of X by D``) apply to Points and OrientedPoints too.
        "width": lambda: 0.0,
        "height": lambda: 0.0,
    }

    @property
    def visible_region(self):
        from .operators import visible_region_of

        return visible_region_of(self)

    def can_see(self, other: Any) -> Any:
        from .operators import can_see

        return can_see(self, other)


class OrientedPoint(Point):
    """A position plus a heading, defining a local coordinate system.

    Adds ``heading``, ``viewAngle`` and ``headingStdDev`` (Table 2).
    """

    _scenic_properties = {
        "heading": lambda: 0.0,
        "viewAngle": lambda: math.tau,
        "headingStdDev": lambda: math.radians(5.0),
    }

    def relativize(self, offset: Any) -> Any:
        """``offset relative to self`` — an OrientedPoint offset in our local frame."""
        from .operators import oriented_point_relative_to

        return oriented_point_relative_to(offset, self)

    def to_heading(self) -> Any:
        return self.heading


class Object(OrientedPoint):
    """A physical object with a bounding box; the things scenes are made of.

    Adds ``width``, ``height``, ``allowCollisions`` and ``requireVisible``
    (Table 2).  Creating an ``Object`` registers it with the active scenario
    context, which is the side effect through which Scenic programs build up
    their scenes.
    """

    _scenic_properties = {
        "width": lambda: 1.0,
        "height": lambda: 1.0,
        "allowCollisions": lambda: False,
        "requireVisible": lambda: True,
    }

    def _register_if_physical(self) -> None:
        register_object(self)
        self._registered = True

    # -- geometry (meaningful on concrete objects) ------------------------------

    @property
    def corners(self) -> List[Vector]:
        """The four corners of the bounding box (front-right first, anticlockwise)."""
        position = Vector.from_any(self.position)
        heading = float(self.heading)
        half_w = float(self.width) / 2.0
        half_h = float(self.height) / 2.0
        offsets = [
            Vector(half_w, half_h),
            Vector(-half_w, half_h),
            Vector(-half_w, -half_h),
            Vector(half_w, -half_h),
        ]
        return [position + offset.rotated_by(heading) for offset in offsets]

    @property
    def bounding_polygon(self) -> Polygon:
        return Polygon(self.corners)

    @property
    def min_radius(self) -> float:
        """Lower bound on centre-to-bounding-box distance (used by pruning)."""
        return min(float(self.width), float(self.height)) / 2.0

    @property
    def max_radius(self) -> float:
        """Circumradius of the bounding box."""
        return math.hypot(float(self.width) / 2.0, float(self.height) / 2.0)

    def intersects(self, other: "Object") -> bool:
        return self.bounding_polygon.intersects(other.bounding_polygon)

    def contains_point(self, point: Any) -> bool:
        return self.bounding_polygon.contains_point(point)

    # -- mutation ---------------------------------------------------------------

    def _apply_mutation(self, sample: Sample) -> None:
        """Add Gaussian noise to position and heading when mutation is enabled.

        Matches the paper's "Termination, Step 1": the noise standard
        deviations are ``positionStdDev`` and ``headingStdDev`` scaled by
        ``mutationScale``.
        """
        scale = float(self.properties.get("mutationScale", 0.0) or 0.0)
        if scale == 0.0:
            return
        rng = sample.rng
        position_std = scale * float(self.properties.get("positionStdDev", 1.0))
        heading_std = scale * float(self.properties.get("headingStdDev", math.radians(5.0)))
        position = Vector.from_any(self.position)
        noisy_position = position + Vector(rng.gauss(0.0, position_std), rng.gauss(0.0, position_std))
        noisy_heading = normalize_angle(float(self.heading) + rng.gauss(0.0, heading_std))
        self._assign_property("position", noisy_position)
        self._assign_property("heading", noisy_heading)


__all__ = ["Constructible", "Point", "OrientedPoint", "Object"]

"""The probabilistic core: random values and derived expressions over them.

A Scenic program is an imperative prior over scenes (Sec. 5.1).  Evaluating
the program does *not* draw samples immediately; instead, every random
primitive (Table 1: uniform interval, ``Uniform``, ``Discrete``, ``Normal``)
evaluates to a :class:`Distribution` node, and operations on such nodes
produce *derived* distributions (:class:`OperatorDistribution`,
:class:`FunctionDistribution`).  A scenario therefore holds a DAG of
samplable values; the rejection sampler (``Scenario.generate``) draws a
consistent joint sample of the whole DAG for each candidate scene.

The key entry points are:

* :func:`needs_sampling` — does a value contain randomness?
* :class:`Sample` — one joint assignment of concrete values to the DAG,
  memoised so shared sub-expressions are sampled once per scene.
* :func:`concretize` — map any value (distribution, container, object with a
  ``_concretize`` hook) to its concrete value under a :class:`Sample`.
* :func:`distribution_function` — lift a plain function so it builds a
  derived distribution when any argument is random.
"""

from __future__ import annotations

import math
import random as _random
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .errors import ScenicError
from .utils import cumulative_weights
from .vectors import Vector


class Sample:
    """One joint sample of the random DAG: an RNG plus a memo table.

    Distributions are keyed by identity so that a distribution reachable
    through several expressions receives a single concrete value per scene,
    matching the paper's semantics where ``x = (0, 1); y = x @ x`` puts ``y``
    on the diagonal of the unit square rather than spreading it uniformly.
    """

    def __init__(self, rng: Optional[_random.Random] = None):
        self.rng = rng if rng is not None else _random.Random()
        self._values: Dict[int, Any] = {}
        self._keep_alive: List[Any] = []

    def has_value_for(self, node: Any) -> bool:
        return id(node) in self._values

    def value_for(self, node: Any) -> Any:
        return self._values[id(node)]

    def set_value_for(self, node: Any, value: Any) -> None:
        self._values[id(node)] = value
        # Keep a reference so id() keys cannot be recycled mid-sample.
        self._keep_alive.append(node)

    def forget_value_for(self, node: Any) -> None:
        """Drop the memoised value of *node* so it is redrawn on next access.

        Used by the sampling engine to partially resample an independent
        sub-tree of the DAG after a local rejection.
        """
        self._values.pop(id(node), None)


def needs_sampling(value: Any) -> bool:
    """True iff *value* contains randomness that must be resolved per scene."""
    if isinstance(value, Distribution):
        return True
    if hasattr(value, "_needs_sampling"):
        return bool(value._needs_sampling())
    if isinstance(value, (tuple, list)):
        return any(needs_sampling(item) for item in value)
    if isinstance(value, dict):
        return any(needs_sampling(v) for v in value.values())
    return False


def concretize(value: Any, sample: Sample) -> Any:
    """Resolve *value* to a concrete (non-random) value under *sample*."""
    if isinstance(value, Distribution):
        return value.sample_in(sample)
    if hasattr(value, "_concretize"):
        return value._concretize(sample)
    if isinstance(value, tuple):
        return tuple(concretize(item, sample) for item in value)
    if isinstance(value, list):
        return [concretize(item, sample) for item in value]
    if isinstance(value, dict):
        return {key: concretize(item, sample) for key, item in value.items()}
    return value


def supporting_interval(value: Any) -> Tuple[Optional[float], Optional[float]]:
    """Best-effort (lower, upper) bounds on a scalar value; ``None`` = unbounded.

    Used by the pruning machinery (Sec. 5.2) to extract bounds such as the
    maximum distance between two objects from the scenario's distributions
    without sampling.
    """
    if isinstance(value, Distribution):
        return value.support_interval()
    if isinstance(value, (int, float)):
        return (float(value), float(value))
    return (None, None)


class Distribution:
    """Base class for every random value in the DAG."""

    def __init__(self, *dependencies: Any):
        self._dependencies: Tuple[Any, ...] = tuple(dependencies)

    # -- sampling --------------------------------------------------------------

    def sample_in(self, sample: Sample) -> Any:
        if sample.has_value_for(self):
            return sample.value_for(self)
        dependency_values = [concretize(dep, sample) for dep in self._dependencies]
        value = self.sample_given(dependency_values, sample.rng)
        sample.set_value_for(self, value)
        return value

    def sample_given(self, dependency_values: Sequence[Any], rng: _random.Random) -> Any:
        raise NotImplementedError

    def sample(self, rng: Optional[_random.Random] = None) -> Any:
        """Draw a single independent sample (convenience for tests and examples)."""
        return self.sample_in(Sample(rng))

    # -- analysis --------------------------------------------------------------

    def support_interval(self) -> Tuple[Optional[float], Optional[float]]:
        return (None, None)

    def dependencies(self) -> Tuple[Any, ...]:
        return self._dependencies

    def clone(self) -> "Distribution":
        """Independent copy drawing fresh samples (used by ``resample``)."""
        raise NotImplementedError(f"{type(self).__name__} does not support resample")

    # -- operator overloading builds derived distributions ---------------------

    def __add__(self, other):
        return OperatorDistribution("+", self, other)

    def __radd__(self, other):
        return OperatorDistribution("+", other, self)

    def __sub__(self, other):
        return OperatorDistribution("-", self, other)

    def __rsub__(self, other):
        return OperatorDistribution("-", other, self)

    def __mul__(self, other):
        return OperatorDistribution("*", self, other)

    def __rmul__(self, other):
        return OperatorDistribution("*", other, self)

    def __truediv__(self, other):
        return OperatorDistribution("/", self, other)

    def __rtruediv__(self, other):
        return OperatorDistribution("/", other, self)

    def __floordiv__(self, other):
        return OperatorDistribution("//", self, other)

    def __mod__(self, other):
        return OperatorDistribution("%", self, other)

    def __pow__(self, other):
        return OperatorDistribution("**", self, other)

    def __neg__(self):
        return OperatorDistribution("neg", self)

    def __abs__(self):
        return OperatorDistribution("abs", self)

    # Comparisons build random booleans.  (Equality is intentionally left as
    # identity so distributions remain usable in sets and as dict keys.)

    def __lt__(self, other):
        return OperatorDistribution("<", self, other)

    def __le__(self, other):
        return OperatorDistribution("<=", self, other)

    def __gt__(self, other):
        return OperatorDistribution(">", self, other)

    def __ge__(self, other):
        return OperatorDistribution(">=", self, other)

    def __getitem__(self, index):
        return OperatorDistribution("getitem", self, index)

    #: Attribute names that must *not* be turned into lazy attribute accesses,
    #: because other code uses them for duck typing (``hasattr`` probes).
    _PLAIN_ATTRIBUTES = frozenset(
        {"to_vector", "to_tuple", "position", "heading", "sample_given", "clone"}
    )

    def __getattr__(self, name):
        # Only called when normal lookup fails; build an attribute access node
        # for property-style access on random objects (e.g. ``car.model.width``).
        if name.startswith("_") or name in Distribution._PLAIN_ATTRIBUTES:
            raise AttributeError(name)
        return AttributeDistribution(self, name)

    def __bool__(self):
        raise ScenicError(
            "cannot branch on a random value: Scenic forbids conditional control flow "
            "depending on distributions (Sec. 4)"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({', '.join(map(repr, self._dependencies))})"


_BINARY_OPERATIONS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "//": lambda a, b: a // b,
    "%": lambda a, b: a % b,
    "**": lambda a, b: a ** b,
    "getitem": lambda a, b: a[b],
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "and": lambda a, b: a and b,
    "or": lambda a, b: a or b,
}

_UNARY_OPERATIONS: Dict[str, Callable[[Any], Any]] = {
    "neg": lambda a: -a,
    "abs": abs,
    "not": lambda a: not a,
}


class OperatorDistribution(Distribution):
    """A unary or binary operation applied to (possibly random) operands."""

    def __init__(self, operator: str, *operands: Any):
        super().__init__(*operands)
        self.operator = operator

    def sample_given(self, dependency_values, rng):
        if self.operator in _UNARY_OPERATIONS:
            return _UNARY_OPERATIONS[self.operator](dependency_values[0])
        return _BINARY_OPERATIONS[self.operator](dependency_values[0], dependency_values[1])

    def support_interval(self):
        if self.operator in ("+", "-", "*"):
            left_low, left_high = supporting_interval(self._dependencies[0])
            right_low, right_high = supporting_interval(self._dependencies[1])
            if None in (left_low, left_high, right_low, right_high):
                return (None, None)
            if self.operator == "+":
                return (left_low + right_low, left_high + right_high)
            if self.operator == "-":
                return (left_low - right_high, left_high - right_low)
            products = [
                left_low * right_low,
                left_low * right_high,
                left_high * right_low,
                left_high * right_high,
            ]
            return (min(products), max(products))
        if self.operator == "neg":
            low, high = supporting_interval(self._dependencies[0])
            if None in (low, high):
                return (None, None)
            return (-high, -low)
        if self.operator == "abs":
            low, high = supporting_interval(self._dependencies[0])
            if None in (low, high):
                return (None, None)
            if low >= 0:
                return (low, high)
            if high <= 0:
                return (-high, -low)
            return (0.0, max(-low, high))
        return (None, None)


class AttributeDistribution(Distribution):
    """Attribute access on a random value (e.g. ``model.width`` where model is random)."""

    def __init__(self, target: Any, attribute: str):
        super().__init__(target)
        self.attribute = attribute

    def sample_given(self, dependency_values, rng):
        return getattr(dependency_values[0], self.attribute)

    def __call__(self, *args, **kwargs):
        return MethodCallDistribution(self._dependencies[0], self.attribute, args, kwargs)


class MethodCallDistribution(Distribution):
    """A method call on a random value, with possibly random arguments."""

    def __init__(self, target: Any, method: str, args: Sequence[Any], kwargs: Dict[str, Any]):
        super().__init__(target, tuple(args), dict(kwargs))
        self.method = method

    def sample_given(self, dependency_values, rng):
        target, args, kwargs = dependency_values
        return getattr(target, self.method)(*args, **kwargs)


class FunctionDistribution(Distribution):
    """A plain function applied to (possibly random) arguments."""

    def __init__(self, function: Callable, args: Sequence[Any], kwargs: Optional[Dict[str, Any]] = None):
        super().__init__(tuple(args), dict(kwargs or {}))
        self.function = function

    def sample_given(self, dependency_values, rng):
        args, kwargs = dependency_values
        return self.function(*args, **kwargs)

    def __repr__(self) -> str:
        name = getattr(self.function, "__name__", repr(self.function))
        return f"FunctionDistribution({name}, {self._dependencies[0]!r})"


def distribution_function(function: Callable) -> Callable:
    """Lift *function* so it defers evaluation when any argument is random."""

    def wrapper(*args, **kwargs):
        if needs_sampling(args) or needs_sampling(kwargs):
            return FunctionDistribution(function, args, kwargs)
        return function(*args, **kwargs)

    wrapper.__name__ = getattr(function, "__name__", "wrapped")
    wrapper.__doc__ = function.__doc__
    wrapper.__wrapped__ = function
    return wrapper


def make_random_vector(x: Any, y: Any):
    """Build the vector ``x @ y`` where either coordinate may be random."""
    if needs_sampling(x) or needs_sampling(y):
        return VectorDistribution(x, y)
    return Vector(x, y)


class VectorDistribution(Distribution):
    """A vector whose coordinates are (possibly) random scalars."""

    def __init__(self, x: Any, y: Any):
        super().__init__(x, y)

    def sample_given(self, dependency_values, rng):
        x, y = dependency_values
        return Vector(x, y)

    @property
    def x(self):
        return OperatorDistribution("getitem", self, 0)

    @property
    def y(self):
        return OperatorDistribution("getitem", self, 1)


# ---------------------------------------------------------------------------
# Primitive distributions (Table 1)
# ---------------------------------------------------------------------------


class Range(Distribution):
    """Uniform distribution on an interval — the paper's ``(low, high)`` syntax."""

    def __init__(self, low: Any, high: Any):
        super().__init__(low, high)
        self.low = low
        self.high = high

    def sample_given(self, dependency_values, rng):
        low, high = dependency_values
        if low > high:
            raise ScenicError(f"uniform interval ({low}, {high}) is empty")
        return rng.uniform(low, high)

    def support_interval(self):
        low_bounds = supporting_interval(self.low)
        high_bounds = supporting_interval(self.high)
        return (low_bounds[0], high_bounds[1])

    def clone(self):
        return Range(self.low, self.high)


class Normal(Distribution):
    """Gaussian with the given mean and standard deviation."""

    def __init__(self, mean: Any, std_dev: Any):
        super().__init__(mean, std_dev)
        self.mean = mean
        self.std_dev = std_dev

    def sample_given(self, dependency_values, rng):
        mean, std_dev = dependency_values
        if std_dev < 0:
            raise ScenicError(f"Normal standard deviation must be non-negative, got {std_dev}")
        return rng.gauss(mean, std_dev)

    def clone(self):
        return Normal(self.mean, self.std_dev)


class Options(Distribution):
    """Uniform or weighted choice over a finite set of (possibly random) values.

    Covers both ``Uniform(value, ...)`` and ``Discrete({value: weight, ...})``
    from Table 1.
    """

    def __init__(self, options: Any):
        if isinstance(options, dict):
            if not options:
                raise ScenicError("Discrete distribution needs at least one option")
            values = list(options.keys())
            weights = [float(w) for w in options.values()]
        else:
            values = list(options)
            if not values:
                raise ScenicError("Uniform distribution needs at least one option")
            weights = [1.0] * len(values)
        super().__init__(tuple(values))
        self.option_values = values
        self.weights = weights
        self._cumulative = cumulative_weights(weights)

    def sample_given(self, dependency_values, rng):
        (values,) = dependency_values
        target = rng.random() * self._cumulative[-1]
        for value, threshold in zip(values, self._cumulative):
            if target <= threshold:
                return value
        return values[-1]

    def support_interval(self):
        bounds = [supporting_interval(value) for value in self.option_values]
        lows = [b[0] for b in bounds]
        highs = [b[1] for b in bounds]
        if any(b is None for b in lows) or any(b is None for b in highs):
            return (None, None)
        return (min(lows), max(highs))

    def clone(self):
        if all(weight == 1.0 for weight in self.weights):
            return Options(list(self.option_values))
        return Options(dict(zip(self.option_values, self.weights)))


def Uniform(*options: Any) -> Options:
    """Uniform choice over the given values (``Uniform(value, ...)`` in Table 1)."""
    return Options(list(options))


def Discrete(weighted_options: Dict[Any, float]) -> Options:
    """Weighted discrete choice (``Discrete({value: weight, ...})`` in Table 1)."""
    return Options(dict(weighted_options))


class TruncatedNormal(Distribution):
    """Gaussian restricted to an interval (used by some world libraries)."""

    def __init__(self, mean: Any, std_dev: Any, low: Any, high: Any):
        super().__init__(mean, std_dev, low, high)

    def sample_given(self, dependency_values, rng):
        mean, std_dev, low, high = dependency_values
        if low > high:
            raise ScenicError(f"TruncatedNormal interval ({low}, {high}) is empty")
        for _ in range(1000):
            value = rng.gauss(mean, std_dev)
            if low <= value <= high:
                return value
        return min(max(rng.gauss(mean, std_dev), low), high)

    def support_interval(self):
        return (supporting_interval(self._dependencies[2])[0], supporting_interval(self._dependencies[3])[1])

    def clone(self):
        return TruncatedNormal(*self._dependencies)


def resample(distribution: Any) -> Any:
    """Independent re-draw from the same primitive distribution (Sec. 4.2).

    Conditioned on the distribution's parameters, the clone shares them but
    draws its own value; resampling a non-random value returns it unchanged.
    """
    if isinstance(distribution, Distribution):
        return distribution.clone()
    return distribution


__all__ = [
    "Sample",
    "Distribution",
    "OperatorDistribution",
    "AttributeDistribution",
    "MethodCallDistribution",
    "FunctionDistribution",
    "VectorDistribution",
    "Range",
    "Normal",
    "TruncatedNormal",
    "Options",
    "Uniform",
    "Discrete",
    "resample",
    "needs_sampling",
    "concretize",
    "supporting_interval",
    "distribution_function",
    "make_random_vector",
]

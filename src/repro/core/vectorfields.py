"""Vector fields: an orientation associated to each point in space.

The case study's ``roadDirection`` (the prevailing traffic direction) is the
canonical example.  Vector fields are used

* by the ``facing vectorField`` heading specifier,
* by the ``on region`` specifier when a region has a preferred orientation,
* by the ``follow F [from V] for S`` operator (forward-Euler integration,
  Appendix C), and
* by orientation-based pruning, which needs fields that are *piecewise
  constant over polygons* (:class:`PolygonalVectorField`).
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..geometry.polygon import Polygon
from .distributions import FunctionDistribution, needs_sampling
from .utils import normalize_angle
from .vectors import Vector, VectorLike


class VectorField:
    """A heading-valued function of position."""

    def __init__(self, name: str, value_function: Callable[[Vector], float],
                 default_heading: float = 0.0):
        self.name = name
        self._value_function = value_function
        self.default_heading = default_heading

    def value_at(self, position: VectorLike) -> float:
        """Heading of the field at a concrete position."""
        return normalize_angle(self._value_function(Vector.from_any(position)))

    def at(self, position: Any) -> Any:
        """The ``F at X`` operator; defers evaluation if *position* is random."""
        if needs_sampling(position):
            return FunctionDistribution(self.value_at, (position,))
        return self.value_at(position)

    __getitem__ = at

    def follow_from(self, start: Any, distance: Any, steps: int = 4) -> Any:
        """Forward-Euler integration of the field (the ``follow`` operator).

        Matches Appendix C's ``forwardEuler``: starting at *start*, take
        *steps* equal steps of length ``distance / steps`` along the field.
        Returns the final position (a random value if the inputs are random).
        """
        if needs_sampling(start) or needs_sampling(distance):
            return FunctionDistribution(self._follow_concrete, (start, distance, steps))
        return self._follow_concrete(start, distance, steps)

    def _follow_concrete(self, start: VectorLike, distance: float, steps: int = 4) -> Vector:
        position = Vector.from_any(start)
        step_length = distance / steps
        for _ in range(steps):
            heading = self.value_at(position)
            position = position.offset_rotated(heading, Vector(0.0, step_length))
        return position

    def __repr__(self) -> str:
        return f"VectorField({self.name!r})"


class ConstantVectorField(VectorField):
    """A field with the same heading everywhere (useful in tests and examples)."""

    def __init__(self, heading: float, name: str = "constant"):
        super().__init__(name, lambda _position: heading, default_heading=heading)
        self.heading = heading


class PolygonalVectorField(VectorField):
    """A field that is constant within each polygon of a decomposition.

    This is the structure exploited by orientation-based pruning (Sec. 5.2):
    the GTA-like road map decomposes the road into convex cells, each carrying
    the local traffic direction.
    """

    #: Decompositions with at least this many cells index their bounding
    #: boxes in a :class:`~repro.geometry.spatial_index.SpatialGrid`, so the
    #: per-lookup cost is the few cells near the query point rather than a
    #: linear scan over the whole map.
    _GRID_MIN_CELLS = 8

    # Class-level fallbacks: instances unpickled from artifacts written
    # before the index existed have no such keys in their __dict__.
    _boxes = None
    _grid = None

    def __init__(self, name: str, cells: Sequence[Tuple[Polygon, float]],
                 default_heading: float = 0.0):
        self.cells: List[Tuple[Polygon, float]] = [
            (polygon, normalize_angle(heading)) for polygon, heading in cells
        ]
        self._boxes = None  # lazy (N, 4) cell bounds, see _tables()
        self._grid = None
        super().__init__(name, self._heading_at, default_heading=default_heading)

    def _tables(self):
        """Lazily built cell bounding boxes and (for large maps) a grid index.

        The boxes are padded so the scalar containment test's boundary
        tolerance cannot cross a box edge: any cell the linear scan could
        accept is also a grid candidate, keeping results bit-identical.
        """
        if self._boxes is None:
            import numpy as np

            boxes = np.empty((len(self.cells), 4), dtype=float)
            for index, (polygon, _heading) in enumerate(self.cells):
                box = polygon.bounding_box()
                boxes[index] = (box.min_x, box.min_y, box.max_x, box.max_y)
            boxes += np.array([-1e-6, -1e-6, 1e-6, 1e-6])
            if len(self.cells) >= self._GRID_MIN_CELLS:
                from ..geometry.spatial_index import SpatialGrid

                self._grid = SpatialGrid(boxes)
            self._boxes = boxes
        return self._boxes, self._grid

    def _heading_at(self, position: Vector) -> float:
        cell = self.cell_at(position)
        if cell is not None:
            return cell[1]
        # Outside every cell: fall back to the nearest cell's heading so the
        # field is total (mirrors the reference implementation's behaviour of
        # extending the road direction beyond the road).
        nearest = self.nearest_cell(position)
        return nearest[1] if nearest is not None else self.default_heading

    def cell_at(self, position: VectorLike) -> Optional[Tuple[Polygon, float]]:
        position = Vector.from_any(position)
        if len(self.cells) >= self._GRID_MIN_CELLS:
            _boxes, grid = self._tables()
            if grid is not None:
                # Bucket indices are ascending, so the first containing
                # candidate is the same cell the full scan would return.
                for index in grid.bucket_for_point(position.x, position.y):
                    polygon, heading = self.cells[index]
                    if polygon.contains_point(position):
                        return polygon, heading
                return None
        for polygon, heading in self.cells:
            if polygon.contains_point(position):
                return polygon, heading
        return None

    def nearest_cell(self, position: VectorLike) -> Optional[Tuple[Polygon, float]]:
        position = Vector.from_any(position)
        if not self.cells:
            return None
        if len(self.cells) >= self._GRID_MIN_CELLS:
            return self._nearest_cell_pruned(position)
        return min(self.cells, key=lambda cell: cell[0].distance_to_point(position))

    def _nearest_cell_pruned(self, position: Vector) -> Tuple[Polygon, float]:
        """Nearest cell via bounding-box lower bounds, identical to the scan.

        Exact point-to-polygon distance is only computed for cells whose
        box distance (a lower bound on the true distance) does not already
        exceed the best exact distance seen; every cell tied for the
        minimum has a lower bound <= that minimum, so none is skipped, and
        ties resolve to the lowest cell index — exactly ``min()``'s
        first-minimal-in-list-order behaviour.
        """
        import numpy as np

        boxes, _grid = self._tables()
        dx = np.maximum(np.maximum(boxes[:, 0] - position.x, position.x - boxes[:, 2]), 0.0)
        dy = np.maximum(np.maximum(boxes[:, 1] - position.y, position.y - boxes[:, 3]), 0.0)
        lower_bounds = np.hypot(dx, dy)
        best_distance = math.inf
        best_index = -1
        for index in np.argsort(lower_bounds, kind="stable"):
            if lower_bounds[index] > best_distance:
                break
            distance = self.cells[index][0].distance_to_point(position)
            if distance < best_distance or (distance == best_distance and index < best_index):
                best_distance = distance
                best_index = int(index)
        return self.cells[best_index]

    def heading_of_cell(self, polygon: Polygon) -> Optional[float]:
        for cell_polygon, heading in self.cells:
            if cell_polygon is polygon or cell_polygon == polygon:
                return heading
        return None


class PolylineVectorField(VectorField):
    """Heading follows the nearest segment of a polyline (used for curbs)."""

    def __init__(self, name: str, polyline_region):
        self.polyline = polyline_region
        super().__init__(name, polyline_region.orientation_at)


def field_sum(first: VectorField, second: VectorField, name: Optional[str] = None) -> VectorField:
    """Pointwise sum of two fields (the ``F1 relative to F2`` operator)."""
    return VectorField(
        name or f"({first.name} + {second.name})",
        lambda position: first.value_at(position) + second.value_at(position),
    )


def field_offset(field: VectorField, offset: float, name: Optional[str] = None) -> VectorField:
    """A field rotated everywhere by a constant *offset* heading."""
    return VectorField(
        name or f"({field.name} + {offset:g})",
        lambda position: field.value_at(position) + offset,
    )


__all__ = [
    "VectorField",
    "ConstantVectorField",
    "PolygonalVectorField",
    "PolylineVectorField",
    "field_sum",
    "field_offset",
]

"""Vector fields: an orientation associated to each point in space.

The case study's ``roadDirection`` (the prevailing traffic direction) is the
canonical example.  Vector fields are used

* by the ``facing vectorField`` heading specifier,
* by the ``on region`` specifier when a region has a preferred orientation,
* by the ``follow F [from V] for S`` operator (forward-Euler integration,
  Appendix C), and
* by orientation-based pruning, which needs fields that are *piecewise
  constant over polygons* (:class:`PolygonalVectorField`).
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..geometry.polygon import Polygon
from .distributions import FunctionDistribution, needs_sampling
from .utils import normalize_angle
from .vectors import Vector, VectorLike


class VectorField:
    """A heading-valued function of position."""

    def __init__(self, name: str, value_function: Callable[[Vector], float],
                 default_heading: float = 0.0):
        self.name = name
        self._value_function = value_function
        self.default_heading = default_heading

    def value_at(self, position: VectorLike) -> float:
        """Heading of the field at a concrete position."""
        return normalize_angle(self._value_function(Vector.from_any(position)))

    def at(self, position: Any) -> Any:
        """The ``F at X`` operator; defers evaluation if *position* is random."""
        if needs_sampling(position):
            return FunctionDistribution(self.value_at, (position,))
        return self.value_at(position)

    __getitem__ = at

    def follow_from(self, start: Any, distance: Any, steps: int = 4) -> Any:
        """Forward-Euler integration of the field (the ``follow`` operator).

        Matches Appendix C's ``forwardEuler``: starting at *start*, take
        *steps* equal steps of length ``distance / steps`` along the field.
        Returns the final position (a random value if the inputs are random).
        """
        if needs_sampling(start) or needs_sampling(distance):
            return FunctionDistribution(self._follow_concrete, (start, distance, steps))
        return self._follow_concrete(start, distance, steps)

    def _follow_concrete(self, start: VectorLike, distance: float, steps: int = 4) -> Vector:
        position = Vector.from_any(start)
        step_length = distance / steps
        for _ in range(steps):
            heading = self.value_at(position)
            position = position.offset_rotated(heading, Vector(0.0, step_length))
        return position

    def __repr__(self) -> str:
        return f"VectorField({self.name!r})"


class ConstantVectorField(VectorField):
    """A field with the same heading everywhere (useful in tests and examples)."""

    def __init__(self, heading: float, name: str = "constant"):
        super().__init__(name, lambda _position: heading, default_heading=heading)
        self.heading = heading


class PolygonalVectorField(VectorField):
    """A field that is constant within each polygon of a decomposition.

    This is the structure exploited by orientation-based pruning (Sec. 5.2):
    the GTA-like road map decomposes the road into convex cells, each carrying
    the local traffic direction.
    """

    def __init__(self, name: str, cells: Sequence[Tuple[Polygon, float]],
                 default_heading: float = 0.0):
        self.cells: List[Tuple[Polygon, float]] = [
            (polygon, normalize_angle(heading)) for polygon, heading in cells
        ]
        super().__init__(name, self._heading_at, default_heading=default_heading)

    def _heading_at(self, position: Vector) -> float:
        cell = self.cell_at(position)
        if cell is not None:
            return cell[1]
        # Outside every cell: fall back to the nearest cell's heading so the
        # field is total (mirrors the reference implementation's behaviour of
        # extending the road direction beyond the road).
        nearest = self.nearest_cell(position)
        return nearest[1] if nearest is not None else self.default_heading

    def cell_at(self, position: VectorLike) -> Optional[Tuple[Polygon, float]]:
        position = Vector.from_any(position)
        for polygon, heading in self.cells:
            if polygon.contains_point(position):
                return polygon, heading
        return None

    def nearest_cell(self, position: VectorLike) -> Optional[Tuple[Polygon, float]]:
        position = Vector.from_any(position)
        if not self.cells:
            return None
        return min(self.cells, key=lambda cell: cell[0].distance_to_point(position))

    def heading_of_cell(self, polygon: Polygon) -> Optional[float]:
        for cell_polygon, heading in self.cells:
            if cell_polygon is polygon or cell_polygon == polygon:
                return heading
        return None


class PolylineVectorField(VectorField):
    """Heading follows the nearest segment of a polyline (used for curbs)."""

    def __init__(self, name: str, polyline_region):
        self.polyline = polyline_region
        super().__init__(name, polyline_region.orientation_at)


def field_sum(first: VectorField, second: VectorField, name: Optional[str] = None) -> VectorField:
    """Pointwise sum of two fields (the ``F1 relative to F2`` operator)."""
    return VectorField(
        name or f"({first.name} + {second.name})",
        lambda position: first.value_at(position) + second.value_at(position),
    )


def field_offset(field: VectorField, offset: float, name: Optional[str] = None) -> VectorField:
    """A field rotated everywhere by a constant *offset* heading."""
    return VectorField(
        name or f"({field.name} + {offset:g})",
        lambda position: field.value_at(position) + offset,
    )


__all__ = [
    "VectorField",
    "ConstantVectorField",
    "PolygonalVectorField",
    "PolylineVectorField",
    "field_sum",
    "field_offset",
]

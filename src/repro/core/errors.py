"""Exception hierarchy shared by the Scenic reproduction.

The paper distinguishes three failure modes that we mirror here:

* static, syntax-level problems in a scenario (``ScenicSyntaxError``),
* problems discovered while constructing objects from specifiers, such as
  cyclic dependencies or doubly-specified properties
  (``SpecifierError`` and its subclasses), and
* failures of the rejection sampler to produce a valid scene within its
  iteration budget (``RejectionError``).
"""

from __future__ import annotations


class ScenicError(Exception):
    """Base class for all errors raised by the reproduction."""


class ScenicSyntaxError(ScenicError):
    """A scenario is statically ill-formed (lexing, parsing, or translation)."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(message + location)


class SpecifierError(ScenicError):
    """A set of specifiers cannot be resolved into a complete object."""


class AmbiguousSpecifierError(SpecifierError):
    """The same property is specified (non-optionally) by two specifiers."""


class CyclicDependencyError(SpecifierError):
    """The specifier dependency graph contains a cycle."""


class MissingPropertyError(SpecifierError):
    """A specifier depends on a property that no specifier or default provides."""


class InvalidScenarioError(ScenicError):
    """A scenario is semantically invalid (e.g. no ego object was defined)."""


class InfeasibleScenarioError(InvalidScenarioError):
    """Pruning proved the scenario statically infeasible.

    A sound pruning step only ever removes positions that cannot appear in
    any valid scene, so a region pruning to *empty* means no scene can
    satisfy the requirements — raised instead of silently entering a
    zero-acceptance sampling loop.
    """


class RejectionError(ScenicError):
    """The rejection sampler exhausted its iteration budget."""

    def __init__(self, iterations: int, reason: str = "requirements unsatisfied"):
        self.iterations = iterations
        self.reason = reason
        super().__init__(
            f"failed to generate a valid scene within {iterations} iterations ({reason})"
        )


class RejectSample(ScenicError):
    """Internal control-flow exception: the current sample violates a requirement.

    Raised while evaluating a candidate scene; caught by the rejection
    sampler, which then retries.  Never escapes ``Scenario.generate``.
    """

    def __init__(self, reason: str = "requirement violated"):
        self.reason = reason
        super().__init__(reason)


class InterpreterError(ScenicError):
    """A runtime error raised while interpreting a Scenic program."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        location = f" (line {line})" if line is not None else ""
        super().__init__(message + location)

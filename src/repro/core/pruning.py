"""Domain-specific pruning of the sample space (Sec. 5.2, Algorithms 2–3).

Rejection sampling can waste many candidate scenes on object positions that
can never satisfy the requirements.  The paper prunes the sample space of
objects whose position is uniform over a *polygonal* region using three
techniques, all of which restrict that region to a smaller one while keeping
every valid position (soundness):

* **containment** — if the object must fit inside a region ``C``, its centre
  must lie in ``erode(C, minRadius)``;
* **orientation** — if the relative heading between two field-aligned objects
  is constrained and their distance is at most ``M``, only map cells whose
  field headings are compatible (and within ``M`` of each other) can host
  them (Algorithm 2);
* **size** — map cells narrower than the configuration's minimum width can
  only host an object if another cell lies within ``M`` (Algorithm 3).

``prune_scenario`` applies containment pruning automatically and the other
two when the caller provides the bounds (the experiment harness extracts
them from the scenario, mirroring the paper's static analysis of ``offset
by`` specifiers and visibility constraints).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..geometry.morphology import dilate_polygon, erode_polygon, minimum_width
from ..geometry.polygon import Polygon, clip_polygon, polygons_intersect
from ..geometry.spatial_index import SpatialGrid
from .distributions import needs_sampling
from .objects import Object
from .regions import PointInRegionDistribution, PolygonalRegion, Region
from .scenario import Scenario
from .utils import normalize_angle
from .vectorfields import PolygonalVectorField


@dataclass
class PruningReport:
    """What pruning did to a scenario (for logging and the pruning benchmark)."""

    objects_pruned: int = 0
    area_before: float = 0.0
    area_after: float = 0.0
    techniques: Tuple[str, ...] = ()

    @property
    def area_ratio(self) -> float:
        if self.area_before <= 0:
            return 1.0
        return self.area_after / self.area_before


# ---------------------------------------------------------------------------
# Algorithm 2: pruneByHeading
# ---------------------------------------------------------------------------


def prune_by_orientation(
    cells: Sequence[Tuple[Polygon, float]],
    allowed_relative_heading: Tuple[float, float],
    max_distance: float,
    deviation_bound: float,
) -> List[Polygon]:
    """Restrict field cells to those compatible with a relative-heading constraint.

    *cells* are ``(polygon, field heading)`` pairs; *allowed_relative_heading*
    is the closed interval ``A`` of permitted relative headings between the
    two objects (it may straddle ±π, e.g. an oncoming-traffic constraint
    around π); *max_distance* is ``M``; *deviation_bound* is ``δ``, the
    maximum deviation of each object from the field direction.

    Note that a constraint interval containing 0 never prunes anything on its
    own: every cell is a compatible partner for itself (both objects may lie
    in the same cell).  The technique pays off for constraints like
    "roughly facing each other", exactly as in the paper's examples.
    """
    low, high = allowed_relative_heading
    center = (low + high) / 2.0
    half_width = abs(high - low) / 2.0
    pruned: List[Polygon] = []
    dilated_cells = [dilate_polygon(polygon, max_distance) for polygon, _heading in cells]
    partner_index = _pair_pruner(dilated_cells)
    for polygon, heading in cells:
        for other_index in partner_index(polygon):
            other_polygon, other_heading = cells[other_index]
            dilated = dilated_cells[other_index]
            if not polygons_intersect(polygon, dilated):
                continue
            relative = normalize_angle(other_heading - heading)
            # Compatible iff the relative heading, slackened by 2δ, can fall
            # inside A (angles compared on the circle, so A may wrap ±π).
            distance_to_center = abs(normalize_angle(relative - center))
            if distance_to_center <= half_width + 2 * deviation_bound + 1e-12:
                piece = clip_polygon(polygon, dilated)
                if piece is not None:
                    pruned.append(piece)
    return _merge_pieces(pruned)


# ---------------------------------------------------------------------------
# Algorithm 3: pruneByWidth
# ---------------------------------------------------------------------------


def prune_by_size(
    cells: Sequence[Tuple[Polygon, float]],
    max_distance: float,
    min_width: float,
) -> List[Polygon]:
    """Restrict narrow field cells to the parts near some other (reachable) cell."""
    polygons = [polygon for polygon, _heading in cells]
    narrow = [polygon for polygon in polygons if minimum_width(polygon) < min_width]
    narrow_ids = {id(polygon) for polygon in narrow}
    pruned: List[Polygon] = [polygon for polygon in polygons if id(polygon) not in narrow_ids]
    if not narrow:
        return _merge_pieces(pruned)
    dilated_polygons = [dilate_polygon(polygon, max_distance) for polygon in polygons]
    partner_index = _pair_pruner(dilated_polygons)
    for polygon in narrow:
        for other_index in partner_index(polygon):
            other = polygons[other_index]
            if other is polygon:
                continue
            dilated = dilated_polygons[other_index]
            if not polygons_intersect(polygon, dilated):
                continue
            piece = clip_polygon(polygon, dilated)
            if piece is not None:
                pruned.append(piece)
    return _merge_pieces(pruned)


# ---------------------------------------------------------------------------
# Containment pruning
# ---------------------------------------------------------------------------


def prune_by_containment(
    region_polygons: Sequence[Polygon],
    container_polygons: Sequence[Polygon],
    min_radius: float,
) -> List[Polygon]:
    """Restrict a sampling region to the erosion of its container.

    For every (region, container) polygon pair, keep the part of the region
    polygon inside the container eroded by *min_radius*.  Erosion is exact
    for convex containers and a sound no-op otherwise.
    """
    pruned: List[Polygon] = []
    region_pruner = _pair_pruner(list(region_polygons))
    for container in container_polygons:
        eroded = erode_polygon(container, min_radius)
        if eroded is None:
            continue
        for polygon_index in region_pruner(eroded):
            polygon = region_polygons[polygon_index]
            if not polygons_intersect(polygon, eroded):
                continue
            if eroded.is_convex():
                piece = clip_polygon(polygon, eroded)
            else:
                piece = polygon
            if piece is not None:
                pruned.append(piece)
    return _merge_pieces(pruned)


# ---------------------------------------------------------------------------
# Scenario-level driver
# ---------------------------------------------------------------------------


def prune_scenario(
    scenario: Scenario,
    relative_heading_bound: Optional[float] = None,
    relative_heading_center: float = 0.0,
    max_distance: Optional[float] = None,
    deviation_bound: float = 0.0,
    min_configuration_width: Optional[float] = None,
) -> PruningReport:
    """Apply the pruning techniques to every prunable object of *scenario*.

    An object is prunable when its ``position`` is a
    :class:`PointInRegionDistribution` over a :class:`PolygonalRegion`.  The
    workspace region acts as the container for containment pruning.  When
    *relative_heading_bound* (radians) and *max_distance* are given and the
    region carries a :class:`PolygonalVectorField` orientation, Algorithm 2
    is applied; when *min_configuration_width* and *max_distance* are given,
    Algorithm 3 is applied.  The object's sampling region is replaced in
    place, so subsequent ``generate`` calls benefit.
    """
    report = PruningReport()
    techniques: List[str] = []
    workspace_region = scenario.workspace.region
    container_polygons = _polygons_of_region(workspace_region)

    for scenic_object in scenario.objects:
        position = scenic_object.properties.get("position")
        if not isinstance(position, PointInRegionDistribution):
            continue
        region = position.region
        if not isinstance(region, PolygonalRegion):
            continue
        report.area_before += region.area()
        polygons: List[Polygon] = list(region.polygons)
        orientation = region.orientation

        # Containment (uses a lower bound on the object's half-extent).
        min_radius = _static_min_radius(scenic_object)
        if container_polygons and min_radius > 0:
            restricted = prune_by_containment(polygons, container_polygons, min_radius)
            if restricted:
                polygons = restricted
                if "containment" not in techniques:
                    techniques.append("containment")

        cells = _cells_for_polygons(polygons, orientation)

        # Orientation (Algorithm 2).
        if (
            relative_heading_bound is not None
            and max_distance is not None
            and isinstance(orientation, PolygonalVectorField)
        ):
            restricted = prune_by_orientation(
                cells,
                (
                    relative_heading_center - relative_heading_bound,
                    relative_heading_center + relative_heading_bound,
                ),
                max_distance,
                deviation_bound,
            )
            if restricted:
                polygons = restricted
                cells = _cells_for_polygons(polygons, orientation)
                if "orientation" not in techniques:
                    techniques.append("orientation")

        # Size (Algorithm 3).
        if min_configuration_width is not None and max_distance is not None:
            restricted = prune_by_size(cells, max_distance, min_configuration_width)
            if restricted:
                polygons = restricted
                if "size" not in techniques:
                    techniques.append("size")

        # The pruned pieces may overlap each other (a cell can pair with
        # several dilated neighbours); overlapping pieces would both inflate
        # the area and bias uniform sampling toward the overlaps, so we only
        # adopt the pruned region when it is a genuine reduction.
        try:
            pruned_region = PolygonalRegion(
                polygons, name=f"{region.name}|pruned", orientation=orientation
            )
        except Exception:  # zero-area fragments and similar degeneracies
            pruned_region = None
        if pruned_region is not None and pruned_region.area() < region.area():
            position.region = pruned_region
            position._dependencies = (pruned_region,)
            report.area_after += pruned_region.area()
        else:
            report.area_after += region.area()
        report.objects_pruned += 1

    report.techniques = tuple(techniques)
    return report


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


#: Cell counts below this skip the spatial index: scanning every candidate is
#: cheaper than building the grid.
_GRID_MIN_ITEMS = 12


def _pair_pruner(targets: Sequence[Polygon]):
    """A function mapping a query polygon to candidate indices into *targets*.

    For small target sets it returns all indices (ascending, preserving the
    historical enumeration order); larger sets are indexed in a
    :class:`SpatialGrid` over their bounding boxes, so each query only visits
    targets whose bounds can intersect the query's — the exact
    ``polygons_intersect`` test still runs on every surviving candidate, so
    results are unchanged.
    """
    if len(targets) < _GRID_MIN_ITEMS:
        all_indices = list(range(len(targets)))

        def scan(_query: Polygon) -> Sequence[int]:
            return all_indices

        return scan
    grid = SpatialGrid.from_polygons(targets)

    def query(query_polygon: Polygon) -> Sequence[int]:
        return [int(index) for index in grid.query_box(query_polygon.bounding_box())]

    return query


def _static_min_radius(scenic_object: Object) -> float:
    """A lower bound on the object's centre-to-edge distance, if statically known."""
    width = scenic_object.properties.get("width")
    height = scenic_object.properties.get("height")
    if needs_sampling(width) or needs_sampling(height):
        from .distributions import supporting_interval

        width_low, _ = supporting_interval(width)
        height_low, _ = supporting_interval(height)
        if width_low is None or height_low is None:
            return 0.0
        return min(width_low, height_low) / 2.0
    try:
        return min(float(width), float(height)) / 2.0
    except (TypeError, ValueError):
        return 0.0


def _polygons_of_region(region: Region) -> List[Polygon]:
    if isinstance(region, PolygonalRegion):
        return list(region.polygons)
    bounding_box = region.bounding_box() if region is not None else None
    if bounding_box is None:
        return []
    return [bounding_box.to_polygon()]


def _cells_for_polygons(polygons: Sequence[Polygon], orientation) -> List[Tuple[Polygon, float]]:
    cells: List[Tuple[Polygon, float]] = []
    for polygon in polygons:
        heading = 0.0
        if isinstance(orientation, PolygonalVectorField):
            heading = orientation.value_at(polygon.centroid)
        elif orientation is not None:
            heading = orientation.value_at(polygon.centroid)
        cells.append((polygon, heading))
    return cells


def _merge_pieces(polygons: Sequence[Polygon]) -> List[Polygon]:
    """Drop exact duplicates and zero-area fragments."""
    unique: List[Polygon] = []
    seen = set()
    for polygon in polygons:
        key = tuple(sorted((round(v.x, 6), round(v.y, 6)) for v in polygon.vertices))
        if key in seen or polygon.area < 1e-9:
            continue
        seen.add(key)
        unique.append(polygon)
    return unique


def _interval_intersects(a_low: float, a_high: float, b_low: float, b_high: float) -> bool:
    return a_low <= b_high and b_low <= a_high


__all__ = [
    "PruningReport",
    "prune_by_orientation",
    "prune_by_size",
    "prune_by_containment",
    "prune_scenario",
]

"""Domain-specific pruning of the sample space (Sec. 5.2, Algorithms 2–3).

Rejection sampling can waste many candidate scenes on object positions that
can never satisfy the requirements.  The paper prunes the sample space of
objects whose position is uniform over a *polygonal* region using three
techniques, all of which restrict that region to a smaller one while keeping
every valid position (soundness):

* **containment** — if the object must fit inside a region ``C``, its centre
  must lie in ``erode(C, minRadius)``;
* **orientation** — if the relative heading between two field-aligned objects
  is constrained and their distance is at most ``M``, only map cells whose
  field headings are compatible (and within ``M`` of each other) can host
  them (Algorithm 2);
* **size** — map cells narrower than the configuration's minimum width can
  only host an object if another cell lies within ``M`` (Algorithm 3).

``prune_scenario`` derives the bounds these techniques need *automatically*:
when the scenario came from a compiled artifact, the static requirement
analysis of :mod:`repro.analysis` supplies a
:class:`~repro.analysis.PruneBounds` (relative-heading arcs, distance
bounds ``M``, minimum-fit radii) and all three techniques run without the
caller providing anything.  Explicit bounds (or the legacy keyword
arguments) are still accepted and applied on top.

Soundness guard-rails baked into the driver:

* objects with mutation enabled are skipped entirely — mutation displaces
  the sampled position *after* the draw, so no region shrink is sound;
* a region polygon that is close to more than one workspace piece is kept
  whole during containment pruning — eroding each piece separately would
  wrongly exclude centres of objects straddling two pieces;
* partner-based techniques (Algorithms 2–3) only run when the partner
  object's possible positions provably lie on the orientation field's
  cells (same-region check, or an exact coverage proof of the workspace);
* a region that prunes to *empty* raises
  :class:`~repro.core.errors.InfeasibleScenarioError` instead of leaving a
  silent zero-acceptance sampling loop behind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.bounds import ObjectBounds, PruneBounds
from ..analysis.intervals import CircularInterval
from ..geometry.morphology import dilate_polygon, erode_polygon, minimum_width
from ..geometry.polygon import Polygon, clip_polygon, polygons_intersect
from ..geometry.spatial_index import SpatialGrid
from .distributions import needs_sampling
from .errors import InfeasibleScenarioError
from .objects import Object
from .regions import PointInRegionDistribution, PolygonalRegion, Region
from .scenario import Scenario
from .vectorfields import PolygonalVectorField


@dataclass
class PruningReport:
    """What pruning did to a scenario (for logging and the pruning benchmark)."""

    objects_pruned: int = 0
    objects_skipped_mutation: int = 0
    area_before: float = 0.0
    area_after: float = 0.0
    techniques: Tuple[str, ...] = ()
    #: Per-technique area bookkeeping: technique name -> [area entering the
    #: stage, area leaving it], summed over every object it applied to.
    stage_areas: Dict[str, List[float]] = field(default_factory=dict)
    #: Summary of the static bounds that drove the pass (None = no bounds).
    bounds_summary: Optional[Dict[str, int]] = None
    notes: Tuple[str, ...] = ()

    @property
    def applied(self) -> bool:
        """Whether any technique actually restricted a region."""
        return bool(self.techniques)

    @property
    def area_ratio(self) -> float:
        """Pruned / original sampling area.

        1.0 when pruning did not apply (no prunable objects, or nothing was
        restricted) — check :attr:`applied` to tell "no reduction" apart
        from "nothing to prune".  A statically infeasible scenario never
        produces a report at all: ``prune_scenario`` raises
        :class:`~repro.core.errors.InfeasibleScenarioError` instead of
        reporting a zero area.
        """
        if self.area_before <= 0:
            return 1.0
        return self.area_after / self.area_before

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe summary (the shape the eval scorecards publish)."""
        return {
            "applied": self.applied,
            "objects_pruned": self.objects_pruned,
            "objects_skipped_mutation": self.objects_skipped_mutation,
            "area_before": self.area_before,
            "area_after": self.area_after,
            "area_ratio": self.area_ratio,
            "techniques": list(self.techniques),
            "technique_ratios": self.technique_ratios(),
            "notes": list(self.notes),
        }

    def technique_ratios(self) -> Dict[str, float]:
        """Area kept by each technique (area-out / area-in, per stage)."""
        ratios: Dict[str, float] = {}
        for technique, (before, after) in self.stage_areas.items():
            ratios[technique] = (after / before) if before > 0 else 1.0
        return ratios

    def _record_stage(self, technique: str, before: float, after: float) -> None:
        entry = self.stage_areas.setdefault(technique, [0.0, 0.0])
        entry[0] += before
        entry[1] += after
        if technique not in self.techniques:
            self.techniques = self.techniques + (technique,)


# ---------------------------------------------------------------------------
# Algorithm 2: pruneByHeading
# ---------------------------------------------------------------------------


def prune_by_orientation(
    cells: Sequence[Tuple[Polygon, float]],
    allowed_relative_heading: Tuple[float, float],
    max_distance: float,
    deviation_bound: float,
    partner_cells: Optional[Sequence[Tuple[Polygon, float]]] = None,
    total_deviation: Optional[float] = None,
) -> List[Polygon]:
    """Restrict field cells to those compatible with a relative-heading constraint.

    *cells* are ``(polygon, field heading)`` pairs; *allowed_relative_heading*
    is the arc ``A`` of permitted relative headings between the two objects,
    given as the sweep **anticlockwise from low to high** — an oncoming
    constraint around π may be written ``(pi - 0.1, pi + 0.1)`` or with
    normalized endpoints ``(pi - 0.1, -(pi - 0.1))``; either way the arc is
    the short one through π, never its complement (intervals straddling the
    ±π branch cut must not collapse to empty or full circles).
    *max_distance* is ``M``.  The heading slack is ``2 * deviation_bound``
    (the historical per-object ``δ`` form) unless *total_deviation* is given,
    which is used verbatim (the analyzer passes ``δ_self + δ_partner``).

    *partner_cells* are the cells the **other** object may occupy; they
    default to *cells* (both objects range over the same region).  Passing
    the orientation field's full cell list is always sound when the partner
    provably lies on the field.

    Note that a constraint arc containing 0 never prunes anything when the
    pruned cells are among the partner cells: every cell is a compatible
    partner for itself.  The technique pays off for constraints like
    "roughly facing each other" or "crossing traffic", exactly as in the
    paper's examples.
    """
    # Wrap-safe arc: sweep anticlockwise from low to high (the same
    # representation the analyzer uses, so the branch-cut handling cannot
    # drift between the two layers).
    arc = CircularInterval.from_sweep(*allowed_relative_heading)
    slack = total_deviation if total_deviation is not None else 2.0 * deviation_bound
    partners = list(partner_cells) if partner_cells is not None else list(cells)
    pruned: List[Polygon] = []
    dilated_partners = [dilate_polygon(polygon, max_distance) for polygon, _heading in partners]
    partner_index = _pair_pruner(dilated_partners)
    for polygon, heading in cells:
        for other_index in partner_index(polygon):
            other_heading = partners[other_index][1]
            dilated = dilated_partners[other_index]
            if not polygons_intersect(polygon, dilated):
                continue
            # Compatible iff the relative heading, slackened by the total
            # deviation, can fall inside A (compared on the circle).
            if arc.contains(other_heading - heading, slack=slack + 1e-12):
                piece = clip_polygon(polygon, dilated)
                if piece is not None:
                    pruned.append(piece)
    return _merge_pieces(pruned)


# ---------------------------------------------------------------------------
# Algorithm 3: pruneByWidth
# ---------------------------------------------------------------------------


def prune_by_size(
    cells: Sequence[Tuple[Polygon, float]],
    max_distance: float,
    min_width: float,
) -> List[Polygon]:
    """Restrict narrow field cells to the parts near some other (reachable) cell."""
    polygons = [polygon for polygon, _heading in cells]
    narrow = [polygon for polygon in polygons if minimum_width(polygon) < min_width]
    narrow_ids = {id(polygon) for polygon in narrow}
    pruned: List[Polygon] = [polygon for polygon in polygons if id(polygon) not in narrow_ids]
    if not narrow:
        return _merge_pieces(pruned)
    dilated_polygons = [dilate_polygon(polygon, max_distance) for polygon in polygons]
    partner_index = _pair_pruner(dilated_polygons)
    for polygon in narrow:
        for other_index in partner_index(polygon):
            other = polygons[other_index]
            if other is polygon:
                continue
            dilated = dilated_polygons[other_index]
            if not polygons_intersect(polygon, dilated):
                continue
            piece = clip_polygon(polygon, dilated)
            if piece is not None:
                pruned.append(piece)
    return _merge_pieces(pruned)


# ---------------------------------------------------------------------------
# Containment pruning
# ---------------------------------------------------------------------------


def prune_by_containment(
    region_polygons: Sequence[Polygon],
    container_polygons: Sequence[Polygon],
    min_radius: float,
) -> List[Polygon]:
    """Restrict a sampling region to the erosion of its container.

    An object of inradius at least *min_radius* contained in the container
    *union* has its centre at least *min_radius* from the union's boundary.
    Per region polygon:

    * polygons that touch no container piece are dropped (the centre always
      lies inside the union);
    * polygons within *min_radius* of **more than one** container piece are
      kept whole — near a shared boundary the union's erosion is strictly
      larger than any single piece's erosion, so clipping against per-piece
      erosions would wrongly exclude centres of objects straddling two
      pieces (the polygon-cell boundary soundness fix);
    * polygons near exactly one piece are clipped against that piece's
      erosion (exact for convex pieces, a sound no-op otherwise).

    Returns the restricted polygon list; an empty list means no valid
    centre exists at all.
    """
    if min_radius <= 0 or not container_polygons:
        return _merge_pieces(list(region_polygons))
    eroded = [erode_polygon(container, min_radius) for container in container_polygons]
    dilated = [dilate_polygon(container, min_radius) for container in container_polygons]
    container_pruner = _pair_pruner(dilated)
    pruned: List[Polygon] = []
    for polygon in region_polygons:
        touching: List[int] = []
        near: List[int] = []
        for index in container_pruner(polygon):
            if polygons_intersect(polygon, dilated[index]):
                near.append(index)
                if polygons_intersect(polygon, container_polygons[index]):
                    touching.append(index)
        if not touching:
            continue  # the centre cannot lie in the container union here
        if len(near) > 1:
            pruned.append(polygon)  # straddling zone: erosion per piece is unsound
            continue
        container_index = touching[0]
        container_eroded = eroded[container_index]
        if container_eroded is None:
            continue  # the single nearby piece cannot fit the object at all
        if container_eroded.is_convex():
            piece = clip_polygon(polygon, container_eroded)
        else:
            piece = polygon
        if piece is not None:
            pruned.append(piece)
    return _merge_pieces(pruned)


# ---------------------------------------------------------------------------
# Scenario-level driver
# ---------------------------------------------------------------------------


def bounds_for_scenario(scenario: Scenario) -> Optional[PruneBounds]:
    """The static-analysis bounds for *scenario*, if it has a compiled artifact.

    Scenarios produced by :mod:`repro.language.compiler` carry a reference
    to their :class:`~repro.language.CompiledScenario`; the artifact caches
    the analysis result (and ships it through the artifact cache's pickle
    layer), so repeated pruning passes — e.g. service workers binding the
    ``pruning`` strategy for every shard — pay for the analysis once per
    program, not once per request.
    """
    artifact = getattr(scenario, "compiled_artifact", None)
    if artifact is None:
        fingerprint = getattr(scenario, "compiled_fingerprint", None)
        if fingerprint is not None:
            from ..language.compiler import get_default_cache

            artifact = get_default_cache().lookup_fingerprint(fingerprint)
    if artifact is None:
        return None
    return artifact.prune_bounds()


def prune_scenario(
    scenario: Scenario,
    bounds: Optional[PruneBounds] = None,
    *,
    analyze: bool = True,
    relative_heading_bound: Optional[float] = None,
    relative_heading_center: float = 0.0,
    max_distance: Optional[float] = None,
    deviation_bound: float = 0.0,
    min_configuration_width: Optional[float] = None,
) -> PruningReport:
    """Apply the pruning techniques to every prunable object of *scenario*.

    An object is prunable when its ``position`` is a
    :class:`PointInRegionDistribution` over a :class:`PolygonalRegion` and
    mutation is disabled for it.  The workspace region acts as the container
    for containment pruning.  Orientation (Algorithm 2) and size
    (Algorithm 3) pruning run automatically from *bounds* — resolved via
    :func:`bounds_for_scenario` when not passed and *analyze* is true — and
    additionally from the legacy keyword arguments, which apply one global
    relative-heading constraint to every prunable object (the historical
    caller-supplied interface).  The object's sampling region is replaced in
    place, so subsequent ``generate`` calls benefit.

    Raises :class:`~repro.core.errors.InfeasibleScenarioError` when any
    region prunes to empty: soundness means an empty pruned region proves no
    scene can satisfy the requirements.
    """
    if bounds is None and analyze:
        bounds = bounds_for_scenario(scenario)
    report = PruningReport()
    if bounds is not None:
        report.bounds_summary = bounds.summary()
    notes: List[str] = list(bounds.notes) if bounds is not None else []
    workspace_region = scenario.workspace.region
    container_polygons = (
        [] if scenario.workspace.is_unbounded else _polygons_of_region(workspace_region)
    )

    # Snapshot every prunable object's *original* region before any in-place
    # rewrite: partner-based reasoning must see pre-pruning geometry.
    snapshots: Dict[int, Tuple[PolygonalRegion, List[Polygon]]] = {}
    for index, scenic_object in enumerate(scenario.objects):
        position = scenic_object.properties.get("position")
        if isinstance(position, PointInRegionDistribution) and isinstance(
            position.region, PolygonalRegion
        ):
            snapshots[index] = (position.region, list(position.region.polygons))
    coverage_cache: Dict[Tuple[int, int], bool] = {}

    for index, scenic_object in enumerate(scenario.objects):
        if index not in snapshots:
            continue
        if _mutation_enabled(scenic_object):
            # Mutation adds noise to the position *after* the draw; any
            # region shrink would be unsound for such objects.
            report.objects_skipped_mutation += 1
            notes.append(f"object {index}: skipped (mutation enabled)")
            continue
        position = scenic_object.properties["position"]
        region, original_polygons = snapshots[index]
        polygons: List[Polygon] = list(original_polygons)
        orientation = region.orientation
        object_bounds = bounds.for_object(index) if bounds is not None else None
        report.area_before += region.area()

        def stage(technique: str, restricted: Optional[List[Polygon]], current: List[Polygon]):
            """Fold one technique's output into the running polygon set."""
            if restricted is None:
                return current
            before = _total_area(current)
            after = _total_area(restricted)
            if not restricted:
                raise InfeasibleScenarioError(
                    f"{technique} pruning emptied the sampling region of object "
                    f"{index} ({type(scenic_object).__name__}): the scenario's "
                    "requirements are statically unsatisfiable"
                )
            if after < before:
                report._record_stage(technique, before, after)
                return restricted
            return current

        # Size (Algorithm 3) — before containment: its narrow-cell isolation
        # argument needs the partner's full (unclipped) cell set.
        size_inputs: List[Tuple[float, float]] = []
        if object_bounds is not None and object_bounds.min_configuration_width is not None:
            if _partner_reasoning_allowed(
                scenario, region, workspace_region, coverage_cache, notes, index
            ):
                size_inputs.append(
                    (object_bounds.narrowness_distance, object_bounds.min_configuration_width)
                )
        if min_configuration_width is not None and max_distance is not None:
            size_inputs.append((max_distance, min_configuration_width))
        for distance_bound, width_bound in size_inputs:
            cells = _cells_for_polygons(polygons, orientation)
            polygons = stage("size", prune_by_size(cells, distance_bound, width_bound), polygons)

        # Orientation (Algorithm 2).
        if (
            object_bounds is not None
            and object_bounds.heading_constraints
            and isinstance(orientation, PolygonalVectorField)
        ):
            for constraint in object_bounds.heading_constraints:
                if constraint.is_empty:
                    raise InfeasibleScenarioError(
                        f"the relative-heading requirements on object {index} "
                        f"admit no heading at all ({constraint.source})"
                    )
                partner_cells = _partner_cells(
                    scenario,
                    snapshots,
                    constraint.partner,
                    orientation,
                    workspace_region,
                    coverage_cache,
                    notes,
                )
                if partner_cells is None:
                    notes.append(
                        f"object {index}: orientation constraint vs object "
                        f"{constraint.partner} skipped (partner not provably on-field)"
                    )
                    continue
                cells = _cells_for_polygons(polygons, orientation)
                restricted = prune_by_orientation(
                    cells,
                    (
                        constraint.center - constraint.half_width,
                        constraint.center + constraint.half_width,
                    ),
                    constraint.max_distance,
                    0.0,
                    partner_cells=partner_cells,
                    total_deviation=constraint.deviation,
                )
                polygons = stage("orientation", restricted, polygons)
        if (
            relative_heading_bound is not None
            and max_distance is not None
            and isinstance(orientation, PolygonalVectorField)
        ):
            cells = _cells_for_polygons(polygons, orientation)
            restricted = prune_by_orientation(
                cells,
                (
                    relative_heading_center - relative_heading_bound,
                    relative_heading_center + relative_heading_bound,
                ),
                max_distance,
                deviation_bound,
            )
            polygons = stage("orientation", restricted, polygons)

        # Containment (uses a lower bound on the object's half-extent).
        min_radius = _static_min_radius(scenic_object)
        if object_bounds is not None:
            min_radius = max(min_radius, object_bounds.min_radius)
        if container_polygons and min_radius > 0:
            restricted = prune_by_containment(polygons, container_polygons, min_radius)
            polygons = stage("containment", restricted, polygons)

        # The pruned pieces may overlap each other (a cell can pair with
        # several dilated neighbours); overlapping pieces would both inflate
        # the area and bias uniform sampling toward the overlaps, so we only
        # adopt the pruned region when it is a genuine reduction.
        try:
            pruned_region = PolygonalRegion(
                polygons, name=f"{region.name}|pruned", orientation=orientation
            )
        except Exception:  # zero-area fragments and similar degeneracies
            pruned_region = None
        if pruned_region is not None and pruned_region.area() < region.area():
            position.region = pruned_region
            position._dependencies = (pruned_region,)
            report.area_after += pruned_region.area()
        else:
            report.area_after += region.area()
        report.objects_pruned += 1

    report.notes = tuple(notes)
    return report


# ---------------------------------------------------------------------------
# Partner soundness checks
# ---------------------------------------------------------------------------


def _partner_cells(
    scenario: Scenario,
    snapshots: Dict[int, Tuple[PolygonalRegion, List[Polygon]]],
    partner_index: int,
    orientation: PolygonalVectorField,
    workspace_region: Region,
    coverage_cache: Dict[Tuple[int, int], bool],
    notes: List[str],
) -> Optional[List[Tuple[Polygon, float]]]:
    """Cells the partner object can occupy, or ``None`` when unprovable.

    Sound cases:

    * the partner's own sampling region carries the same orientation field
      and each of its (original) polygons is exactly one of the field's
      cells — its positions and headings range over exactly those cells;
    * the partner is any workspace-contained object and the workspace is
      provably covered by the field's cells — then wherever the partner
      ends up, it sits in some cell at distance zero.

    Mutation on the partner invalidates its heading bound, so it rules both
    cases out.
    """
    if not (0 <= partner_index < len(scenario.objects)):
        return None
    partner = scenario.objects[partner_index]
    if _mutation_enabled(partner):
        return None
    snapshot = snapshots.get(partner_index)
    if snapshot is not None and snapshot[0].orientation is orientation:
        cells: List[Tuple[Polygon, float]] = []
        for polygon in snapshot[1]:
            heading = orientation.heading_of_cell(polygon)
            if heading is None:
                cells = []
                break
            cells.append((polygon, heading))
        if cells:
            return cells
    if scenario.workspace.is_unbounded:
        return None
    if _workspace_covered_by_cells(workspace_region, orientation, coverage_cache, notes):
        return list(orientation.cells)
    return None


def _partner_reasoning_allowed(
    scenario: Scenario,
    region: PolygonalRegion,
    workspace_region: Region,
    coverage_cache: Dict[Tuple[int, int], bool],
    notes: List[str],
    index: int,
) -> bool:
    """Whether Algorithm 3's isolation argument holds for this object's region.

    The argument ("a narrow cell with no other cell within M cannot host the
    configuration") needs every workspace position near the object to lie on
    the region's own cells; we require the workspace to be exactly covered
    by them.
    """
    if scenario.workspace.is_unbounded:
        return False
    covered = _polygons_cover(
        _polygons_of_region(workspace_region), list(region.polygons), coverage_cache, key=(id(workspace_region), id(region))
    )
    if not covered:
        notes.append(
            f"object {index}: size pruning skipped (workspace not provably "
            "covered by the region's cells)"
        )
    return covered


def _workspace_covered_by_cells(
    workspace_region: Region,
    orientation: PolygonalVectorField,
    coverage_cache: Dict[Tuple[int, int], bool],
    notes: List[str],
) -> bool:
    covered = _polygons_cover(
        _polygons_of_region(workspace_region),
        [polygon for polygon, _heading in orientation.cells],
        coverage_cache,
        key=(id(workspace_region), id(orientation)),
    )
    if not covered:
        notes.append("workspace not provably covered by the orientation field's cells")
    return covered


def _polygons_cover(
    targets: Sequence[Polygon],
    cells: Sequence[Polygon],
    cache: Dict[Tuple[int, int], bool],
    key: Tuple[int, int],
) -> bool:
    """Prove ``union(cells) ⊇ union(targets)`` by area arithmetic.

    Uses the depth-2 Bonferroni lower bound ``|T ∩ ∪cᵢ| ≥ Σ|T∩cᵢ| −
    Σᵢ<ⱼ|T∩cᵢ∩cⱼ|``, which is exact for convex pieces via polygon clipping;
    non-convex inputs make the bound unprovable and the check conservatively
    fails (pruning then skips the partner-based techniques).
    """
    cached = cache.get(key)
    if cached is not None:
        return cached

    def compute() -> bool:
        if not targets or not cells:
            return False
        if any(not cell.is_convex() for cell in cells):
            return False
        for target in targets:
            if not target.is_convex():
                return False
            target_area = target.area
            if target_area <= 0:
                continue
            box = target.bounding_box()
            pieces: List[Polygon] = []
            for cell in cells:
                if not box.intersects(cell.bounding_box()):
                    continue
                piece = clip_polygon(target, cell)
                if piece is not None:
                    pieces.append(piece)
            total = sum(piece.area for piece in pieces)
            overlap = 0.0
            for i in range(len(pieces)):
                box_i = pieces[i].bounding_box()
                for j in range(i + 1, len(pieces)):
                    if not box_i.intersects(pieces[j].bounding_box()):
                        continue
                    shared = clip_polygon(pieces[i], pieces[j])
                    if shared is not None:
                        overlap += shared.area
            if total - overlap < target_area * (1.0 - 1e-6):
                return False
        return True

    result = compute()
    cache[key] = result
    return result


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


#: Cell counts below this skip the spatial index: scanning every candidate is
#: cheaper than building the grid.
_GRID_MIN_ITEMS = 12


def _pair_pruner(targets: Sequence[Polygon]):
    """A function mapping a query polygon to candidate indices into *targets*.

    For small target sets it returns all indices (ascending, preserving the
    historical enumeration order); larger sets are indexed in a
    :class:`SpatialGrid` over their bounding boxes, so each query only visits
    targets whose bounds can intersect the query's — the exact
    ``polygons_intersect`` test still runs on every surviving candidate, so
    results are unchanged.
    """
    if len(targets) < _GRID_MIN_ITEMS:
        all_indices = list(range(len(targets)))

        def scan(_query: Polygon) -> Sequence[int]:
            return all_indices

        return scan
    grid = SpatialGrid.from_polygons(targets)

    def query(query_polygon: Polygon) -> Sequence[int]:
        return [int(index) for index in grid.query_box(query_polygon.bounding_box())]

    return query


def _total_area(polygons: Sequence[Polygon]) -> float:
    return sum(polygon.area for polygon in polygons)


def _mutation_enabled(scenic_object: Object) -> bool:
    """Whether mutation noise may displace this object after sampling."""
    from .lazy import is_lazy

    scale = scenic_object.properties.get("mutationScale", 0.0)
    if scale is None:
        return False
    if needs_sampling(scale) or is_lazy(scale):
        return True
    try:
        return float(scale) != 0.0
    except (TypeError, ValueError):
        return True


def _static_min_radius(scenic_object: Object) -> float:
    """A lower bound on the object's centre-to-edge distance, if statically known."""
    width = scenic_object.properties.get("width")
    height = scenic_object.properties.get("height")
    if needs_sampling(width) or needs_sampling(height):
        from .distributions import supporting_interval

        width_low, _ = supporting_interval(width)
        height_low, _ = supporting_interval(height)
        if width_low is None or height_low is None:
            return 0.0
        return min(width_low, height_low) / 2.0
    try:
        return min(float(width), float(height)) / 2.0
    except (TypeError, ValueError):
        return 0.0


def _polygons_of_region(region: Region) -> List[Polygon]:
    if isinstance(region, PolygonalRegion):
        return list(region.polygons)
    bounding_box = region.bounding_box() if region is not None else None
    if bounding_box is None:
        return []
    return [bounding_box.to_polygon()]


def _cells_for_polygons(polygons: Sequence[Polygon], orientation) -> List[Tuple[Polygon, float]]:
    cells: List[Tuple[Polygon, float]] = []
    for polygon in polygons:
        heading = 0.0
        if isinstance(orientation, PolygonalVectorField):
            exact = orientation.heading_of_cell(polygon)
            heading = exact if exact is not None else orientation.value_at(polygon.centroid)
        elif orientation is not None:
            heading = orientation.value_at(polygon.centroid)
        cells.append((polygon, heading))
    return cells


def _merge_pieces(polygons: Sequence[Polygon]) -> List[Polygon]:
    """Drop exact duplicates and zero-area fragments."""
    unique: List[Polygon] = []
    seen = set()
    for polygon in polygons:
        key = tuple(sorted((round(v.x, 6), round(v.y, 6)) for v in polygon.vertices))
        if key in seen or polygon.area < 1e-9:
            continue
        seen.add(key)
        unique.append(polygon)
    return unique


__all__ = [
    "PruningReport",
    "bounds_for_scenario",
    "prune_by_orientation",
    "prune_by_size",
    "prune_by_containment",
    "prune_scenario",
]

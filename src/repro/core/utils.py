"""Small numeric helpers used across the geometry and core layers."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

TWO_PI = 2 * math.pi


def normalize_angle(angle: float) -> float:
    """Wrap *angle* (radians) into the half-open interval ``(-pi, pi]``.

    Headings in the reproduction follow the paper's convention: radians,
    measured anticlockwise from North (the positive y axis).
    """
    angle = angle % TWO_PI
    if angle > math.pi:
        angle -= TWO_PI
    return angle


def angle_difference(a: float, b: float) -> float:
    """Signed smallest rotation taking heading *b* to heading *a*."""
    return normalize_angle(a - b)


def degrees_to_radians(deg: float) -> float:
    return deg * math.pi / 180.0


def radians_to_degrees(rad: float) -> float:
    return rad * 180.0 / math.pi


def clamp(value: float, low: float, high: float) -> float:
    """Restrict *value* to the closed interval ``[low, high]``."""
    if low > high:
        raise ValueError(f"clamp interval is empty: [{low}, {high}]")
    return min(max(value, low), high)


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def cumulative_weights(weights: Iterable[float]) -> list[float]:
    """Return the running totals of *weights* (used by discrete sampling)."""
    totals: list[float] = []
    running = 0.0
    for w in weights:
        if w < 0:
            raise ValueError("weights must be non-negative")
        running += w
        totals.append(running)
    if not totals or totals[-1] <= 0:
        raise ValueError("weights must sum to a positive value")
    return totals


def argmax(values: Sequence[float]) -> int:
    """Index of the largest element (first occurrence on ties)."""
    if not values:
        raise ValueError("argmax of empty sequence")
    best, best_index = values[0], 0
    for index, value in enumerate(values):
        if value > best:
            best, best_index = value, index
    return best_index


def pairwise(items: Sequence) -> Iterable[tuple]:
    """Yield consecutive pairs ``(items[i], items[i+1])``."""
    for i in range(len(items) - 1):
        yield items[i], items[i + 1]


def close_enough(a: float, b: float, tolerance: float = 1e-9) -> bool:
    """Absolute/relative float comparison tolerant to both small and large values."""
    return math.isclose(a, b, rel_tol=tolerance, abs_tol=tolerance)

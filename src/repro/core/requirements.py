"""Hard and soft requirements (the declarative part of a scenario).

``require B`` conditions the scenario's distribution on ``B`` holding
(equivalent to an "observation" in other PPLs); ``require[p] B`` is a soft
requirement enforced with probability ``p`` per candidate scene, which
guarantees ``B`` holds with probability at least ``p`` in the induced
distribution (Sec. 5.1).

A requirement's condition can be given in two forms:

* a *value* — typically a random boolean built from lifted operators, which
  is concretised against the scene's joint sample; this is what the DSL
  interpreter produces;
* a *callable* — convenient for the Python builder API; it receives a
  :class:`SampleResolver` that maps any random value or scenario object to
  its concrete incarnation in the candidate scene.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Union

from .distributions import Sample, concretize
from .errors import ScenicError


class SampleResolver:
    """Gives requirement callables access to the candidate scene's values."""

    def __init__(self, sample: Sample):
        self._sample = sample

    def value(self, thing: Any) -> Any:
        """Concrete value of a distribution or scenario object in this scene."""
        return concretize(thing, self._sample)

    __call__ = value


class Requirement:
    """One ``require`` statement: a condition plus an enforcement probability."""

    def __init__(
        self,
        condition: Union[Any, Callable[[SampleResolver], Any]],
        probability: float = 1.0,
        name: Optional[str] = None,
        line: Optional[int] = None,
    ):
        if not (0.0 <= probability <= 1.0):
            raise ScenicError(f"requirement probability must be in [0, 1], got {probability}")
        self.condition = condition
        self.probability = float(probability)
        self.name = name or ("require" if probability >= 1.0 else f"require[{probability}]")
        self.line = line

    @property
    def is_soft(self) -> bool:
        return self.probability < 1.0

    def should_enforce(self, rng) -> bool:
        """Decide (per candidate scene) whether a soft requirement is checked."""
        if not self.is_soft:
            return True
        return rng.random() < self.probability

    def holds_in(self, sample: Sample) -> bool:
        """Evaluate the condition against the candidate scene's joint sample."""
        if callable(self.condition) and not hasattr(self.condition, "sample_in"):
            result = self.condition(SampleResolver(sample))
        else:
            result = concretize(self.condition, sample)
        return bool(result)

    def __repr__(self) -> str:
        return f"Requirement({self.name!r}, p={self.probability:g})"


__all__ = ["Requirement", "SampleResolver"]

"""The active scenario-construction context.

Evaluating a Scenic program (whether written in the DSL or through the
Python builder API) has the side effect of creating objects, assigning the
ego, declaring requirements and setting global parameters.  This module holds
the mutable state those side effects act on: a stack of
:class:`ScenarioContext` objects, pushed by ``ScenarioBuilder`` /
the DSL interpreter and popped when scenario construction finishes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .errors import InvalidScenarioError


class ScenarioContext:
    """Collects the side effects of evaluating one Scenic scenario."""

    def __init__(self):
        self.objects: List[Any] = []
        self.ego: Optional[Any] = None
        self.params: Dict[str, Any] = {}
        self.requirements: List[Any] = []
        self.workspace = None

    def register_object(self, scenic_object: Any) -> None:
        self.objects.append(scenic_object)

    def set_ego(self, scenic_object: Any) -> None:
        self.ego = scenic_object

    def add_requirement(self, requirement: Any) -> None:
        self.requirements.append(requirement)

    def set_param(self, name: str, value: Any) -> None:
        self.params[name] = value


_context_stack: List[ScenarioContext] = []


def push_context(context: Optional[ScenarioContext] = None) -> ScenarioContext:
    """Make *context* (or a fresh one) the active construction context."""
    if context is None:
        context = ScenarioContext()
    _context_stack.append(context)
    return context


def pop_context() -> ScenarioContext:
    if not _context_stack:
        raise InvalidScenarioError("no active scenario context to pop")
    return _context_stack.pop()


def active_context() -> Optional[ScenarioContext]:
    """The innermost active context, or ``None`` outside scenario construction."""
    return _context_stack[-1] if _context_stack else None


def require_context() -> ScenarioContext:
    context = active_context()
    if context is None:
        raise InvalidScenarioError(
            "this operation may only be used while constructing a scenario "
            "(inside a ScenarioBuilder block or a Scenic program)"
        )
    return context


def current_ego() -> Any:
    """The ego object of the active context (used by ego-relative specifiers)."""
    context = require_context()
    if context.ego is None:
        raise InvalidScenarioError(
            "the ego object must be defined before using ego-relative syntax "
            "(e.g. 'offset by', 'visible', 'beyond ... by ...')"
        )
    return context.ego


def register_object(scenic_object: Any) -> None:
    """Add a newly constructed physical object to the active context, if any.

    Constructing objects outside a context is allowed (useful in tests), in
    which case they are simply not registered anywhere.
    """
    context = active_context()
    if context is not None:
        context.register_object(scenic_object)


__all__ = [
    "ScenarioContext",
    "push_context",
    "pop_context",
    "active_context",
    "require_context",
    "current_ego",
    "register_object",
]

"""Scenic's geometric operator library (Fig. 7 and Appendix C).

Every operator here follows the same recipe: a concrete implementation over
plain values, lifted with :func:`distribution_function` so that applying it
to random values produces a derived distribution, and (where required by the
specifier semantics) additionally lifted with :func:`lazy_function` so that
applying it to values depending on the object under construction produces a
:class:`DelayedArgument`.

The operators are grouped by result type to match Fig. 7: scalar operators,
boolean operators (predicates), heading operators, vector operators, region
operators and OrientedPoint operators.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Tuple

from .distributions import (
    AttributeDistribution,
    Distribution,
    FunctionDistribution,
    distribution_function,
    needs_sampling,
)
from .lazy import lazy_function, make_delayed_function
from .regions import CircularRegion, Region, SectorRegion
from .utils import normalize_angle
from .vectors import Vector, VectorLike


# ---------------------------------------------------------------------------
# Coercions
# ---------------------------------------------------------------------------


def _coerce_position(value: Any) -> Vector:
    """Concrete coercion: a vector, or anything with a ``position``."""
    if isinstance(value, Vector):
        return value
    if hasattr(value, "position"):
        return Vector.from_any(value.position)
    return Vector.from_any(value)


def _coerce_heading(value: Any) -> float:
    """Concrete coercion: a scalar heading, or anything with a ``heading``."""
    if isinstance(value, (int, float)):
        return float(value)
    if hasattr(value, "heading"):
        return float(value.heading)
    raise TypeError(f"cannot interpret {value!r} as a heading")


def position_of(value: Any) -> Any:
    """Interpret *value* as a vector (Point/OrientedPoint/Object → its position).

    For random values the coercion is deferred to sampling time, since only
    then is it known whether the sample is a bare vector or an oriented point.
    """
    if isinstance(value, Distribution):
        return FunctionDistribution(_coerce_position, (value,))
    if isinstance(value, Vector):
        return value
    if hasattr(value, "position"):
        return value.position
    return Vector.from_any(value)


def heading_of(value: Any) -> Any:
    """Interpret *value* as a heading (OrientedPoint/Object → its heading)."""
    if isinstance(value, Distribution):
        if _is_scalar_like(value):
            return value
        return FunctionDistribution(_coerce_heading, (value,))
    if isinstance(value, (int, float)):
        return float(value)
    if hasattr(value, "heading"):
        return value.heading
    raise TypeError(f"cannot interpret {value!r} as a heading")


def _is_scalar_like(value: Distribution) -> bool:
    """Heuristic: primitive scalar distributions are headings, not objects."""
    from .distributions import Normal, Options, Range, OperatorDistribution

    return isinstance(value, (Range, Normal, OperatorDistribution))


# ---------------------------------------------------------------------------
# Concrete implementations
# ---------------------------------------------------------------------------


def _concrete_vector(value: Any) -> Vector:
    if hasattr(value, "position") and not isinstance(value, Vector):
        return Vector.from_any(value.position)
    return Vector.from_any(value)


def _concrete_heading(value: Any) -> float:
    if isinstance(value, (int, float)):
        return float(value)
    if hasattr(value, "heading"):
        return float(value.heading)
    raise TypeError(f"cannot interpret {value!r} as a heading")


def _offset_local(origin: Any, heading: Any, offset: Any) -> Vector:
    """``offsetLocal`` from Appendix C over concrete values."""
    return _concrete_vector(origin).offset_rotated(float(heading), _concrete_vector(offset))


# -- scalar operators --------------------------------------------------------


def _relative_heading(of_heading: Any, from_heading: Any) -> float:
    return normalize_angle(_concrete_heading(of_heading) - _concrete_heading(from_heading))


def _apparent_heading(oriented_point: Any, from_position: Any) -> float:
    position = _concrete_vector(oriented_point)
    heading = _concrete_heading(oriented_point)
    return normalize_angle(heading - position.angle_from(_concrete_vector(from_position)))


def _distance(from_position: Any, to_position: Any) -> float:
    return _concrete_vector(from_position).distance_to(_concrete_vector(to_position))


def _angle(from_position: Any, to_position: Any) -> float:
    return _concrete_vector(to_position).angle_from(_concrete_vector(from_position))


relative_heading = distribution_function(_relative_heading)
apparent_heading = distribution_function(_apparent_heading)
distance_between = distribution_function(_distance)
angle_between = distribution_function(_angle)


# -- boolean operators (predicates) -------------------------------------------


def visible_region_of(viewer: Any) -> Region:
    """The region a concrete Point/OrientedPoint/Object can see (Fig. 26)."""
    position = _concrete_vector(viewer)
    view_distance = float(getattr(viewer, "viewDistance", 50.0))
    view_angle = getattr(viewer, "viewAngle", None)
    heading = getattr(viewer, "heading", None)
    if view_angle is None or heading is None or view_angle >= 2 * math.pi - 1e-9:
        return CircularRegion(position, view_distance, name="visible")
    return SectorRegion(position, view_distance, float(heading), float(view_angle), name="visible")


def _can_see(viewer: Any, target: Any) -> bool:
    """``X can see Y``: target point in view region, or object bounding box visible.

    For objects we test the centre and the four bounding-box corners, which
    matches the paper's "an Object is visible iff its bounding box is" up to
    the (conservative) polygon-versus-sector approximation.
    """
    region = visible_region_of(viewer)
    corners = getattr(target, "corners", None)
    if corners is None:
        return region.contains_point(_concrete_vector(target))
    if region.contains_point(_concrete_vector(target)):
        return True
    return any(region.contains_point(corner) for corner in corners)


def _is_in_region(value: Any, region: Region) -> bool:
    """``X is in region``: point containment, or full bounding-box containment."""
    if hasattr(value, "corners"):
        return region.contains_object(value)
    return region.contains_point(_concrete_vector(value))


can_see = distribution_function(_can_see)
is_in_region = distribution_function(_is_in_region)


# -- heading operators ---------------------------------------------------------


def _heading_relative_to(first: Any, second: Any) -> float:
    return normalize_angle(_concrete_heading(first) + _concrete_heading(second))


heading_relative_to = distribution_function(_heading_relative_to)


def field_at(field, position: Any) -> Any:
    """``F at X`` (delegates to the field, which handles random positions)."""
    return field.at(position)


# -- vector operators ----------------------------------------------------------


def _vector_offset_by(base: Any, offset: Any) -> Vector:
    return _concrete_vector(base) + _concrete_vector(offset)


def _vector_relative_to(offset: Any, base: Any) -> Vector:
    return _concrete_vector(base) + _concrete_vector(offset)


def _vector_offset_along(base: Any, heading: Any, offset: Any) -> Vector:
    return _offset_local(base, heading, offset)


vector_offset_by = distribution_function(_vector_offset_by)
vector_relative_to = distribution_function(_vector_relative_to)
vector_offset_along = distribution_function(_vector_offset_along)


def vector_offset_along_direction(base: Any, direction: Any, offset: Any) -> Any:
    """``V1 offset along (H | F) by V2`` — fields are evaluated at the base point.

    *base* must already be a (possibly random) vector value.
    """
    from .vectorfields import VectorField

    if isinstance(direction, VectorField):
        heading = direction.at(base)
    else:
        heading = heading_of(direction)
    return vector_offset_along(base, heading, offset)


# -- region operators ----------------------------------------------------------


def _region_visible_from(region: Region, viewer: Any) -> Region:
    """``R visible from X`` (and ``visible R`` with the ego as viewer)."""
    return region.intersect(visible_region_of(viewer))


#: Lifted form: with a random viewer (the usual case — the ego's position is
#: random) this evaluates to a region-valued distribution, resolved per scene.
region_visible_from = distribution_function(_region_visible_from)


# -- OrientedPoint operators ---------------------------------------------------


def _make_oriented_point(position: Vector, heading: float):
    # Imported lazily to avoid a circular import at module load time.
    from .objects import OrientedPoint

    return OrientedPoint._make(position=position, heading=normalize_angle(heading))


def _op_relative_to(offset: Any, base: Any):
    """``V relative to OP`` / ``OP offset by V`` → an OrientedPoint (Fig. 35)."""
    heading = _concrete_heading(base)
    position = _offset_local(base, heading, offset)
    return _make_oriented_point(position, heading)


def _op_follow(field, start: Any, distance: Any):
    end = field._follow_concrete(_concrete_vector(start), float(distance))
    return _make_oriented_point(end, field.value_at(end))


def _edge_point(scenic_object: Any, local_offset: Tuple[float, float]):
    heading = _concrete_heading(scenic_object)
    position = _offset_local(scenic_object, heading, Vector(*local_offset))
    return _make_oriented_point(position, heading)


def _front_of(obj: Any):
    return _edge_point(obj, (0.0, float(obj.height) / 2.0))


def _back_of(obj: Any):
    return _edge_point(obj, (0.0, -float(obj.height) / 2.0))


def _left_edge_of(obj: Any):
    return _edge_point(obj, (-float(obj.width) / 2.0, 0.0))


def _right_edge_of(obj: Any):
    return _edge_point(obj, (float(obj.width) / 2.0, 0.0))


def _front_left_of(obj: Any):
    return _edge_point(obj, (-float(obj.width) / 2.0, float(obj.height) / 2.0))


def _front_right_of(obj: Any):
    return _edge_point(obj, (float(obj.width) / 2.0, float(obj.height) / 2.0))


def _back_left_of(obj: Any):
    return _edge_point(obj, (-float(obj.width) / 2.0, -float(obj.height) / 2.0))


def _back_right_of(obj: Any):
    return _edge_point(obj, (float(obj.width) / 2.0, -float(obj.height) / 2.0))


oriented_point_relative_to = distribution_function(_op_relative_to)
follow_field = distribution_function(_op_follow)
front_of = distribution_function(_front_of)
back_of = distribution_function(_back_of)
left_edge_of = distribution_function(_left_edge_of)
right_edge_of = distribution_function(_right_edge_of)
front_left_of = distribution_function(_front_left_of)
front_right_of = distribution_function(_front_right_of)
back_left_of = distribution_function(_back_left_of)
back_right_of = distribution_function(_back_right_of)


# -- beyond --------------------------------------------------------------------


def _beyond(base: Any, offset: Any, from_position: Any) -> Vector:
    """``beyond A by O from B``: O in the local frame of the line of sight B→A."""
    base_vector = _concrete_vector(base)
    line_of_sight = base_vector.angle_from(_concrete_vector(from_position))
    return base_vector.offset_rotated(line_of_sight, _concrete_vector(offset))


beyond_from = distribution_function(_beyond)


__all__ = [
    "position_of",
    "heading_of",
    "relative_heading",
    "apparent_heading",
    "distance_between",
    "angle_between",
    "can_see",
    "is_in_region",
    "visible_region_of",
    "heading_relative_to",
    "field_at",
    "vector_offset_by",
    "vector_relative_to",
    "vector_offset_along",
    "vector_offset_along_direction",
    "region_visible_from",
    "oriented_point_relative_to",
    "follow_field",
    "front_of",
    "back_of",
    "left_edge_of",
    "right_edge_of",
    "front_left_of",
    "front_right_of",
    "back_left_of",
    "back_right_of",
    "beyond_from",
]

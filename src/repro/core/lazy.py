"""Lazy values whose meaning depends on the object being constructed.

Several Scenic constructs cannot be evaluated until part of the object they
help define is known.  The canonical example from the paper is

    Car offset by (-10, 10) @ (20, 40), facing (-5, 5) deg relative to roadDirection

where the heading expression depends on the *position* of the very car being
created.  Such expressions evaluate to a :class:`DelayedArgument`: a closure
plus the set of properties it needs.  Specifiers carry their delayed
dependencies, the dependency-resolution algorithm (Alg. 1) orders specifiers
so those properties are assigned first, and the delayed argument is then
evaluated against the partially-constructed object.
"""

from __future__ import annotations

from typing import Any, Callable, FrozenSet, Iterable, Set

from .distributions import Distribution, needs_sampling


class LazilyEvaluable:
    """A value that needs (some properties of) the object under construction."""

    def __init__(self, required_properties: Iterable[str]):
        self._required_properties: FrozenSet[str] = frozenset(required_properties)

    @property
    def required_properties(self) -> FrozenSet[str]:
        return self._required_properties

    def evaluate_in(self, context: Any) -> Any:
        """Evaluate against *context*, an object providing the required properties."""
        raise NotImplementedError


class DelayedArgument(LazilyEvaluable):
    """A deferred computation over properties of the object being specified."""

    def __init__(self, required_properties: Iterable[str], evaluator: Callable[[Any], Any]):
        super().__init__(required_properties)
        self._evaluator = evaluator

    def evaluate_in(self, context: Any) -> Any:
        value = self._evaluator(context)
        # The evaluator may itself produce another delayed argument (nested
        # lazy constructs); keep evaluating until we reach a plain value.
        while isinstance(value, DelayedArgument):
            value = value.evaluate_in(context)
        return value

    # Arithmetic on delayed arguments stays delayed.

    def _binary(self, other: Any, operation: Callable[[Any, Any], Any]) -> "DelayedArgument":
        requirements = set(self.required_properties) | required_properties_of(other)
        return DelayedArgument(
            requirements,
            lambda context: operation(self.evaluate_in(context), value_in_context(other, context)),
        )

    def __add__(self, other):
        return self._binary(other, lambda a, b: a + b)

    def __radd__(self, other):
        return self._binary(other, lambda a, b: b + a)

    def __sub__(self, other):
        return self._binary(other, lambda a, b: a - b)

    def __rsub__(self, other):
        return self._binary(other, lambda a, b: b - a)

    def __mul__(self, other):
        return self._binary(other, lambda a, b: a * b)

    def __rmul__(self, other):
        return self._binary(other, lambda a, b: b * a)

    def __truediv__(self, other):
        return self._binary(other, lambda a, b: a / b)

    def __neg__(self):
        return DelayedArgument(self.required_properties, lambda context: -self.evaluate_in(context))

    def __repr__(self) -> str:
        return f"DelayedArgument({sorted(self.required_properties)})"


def is_lazy(value: Any) -> bool:
    """True iff *value* (possibly nested in containers) needs the object context."""
    if isinstance(value, LazilyEvaluable):
        return True
    if isinstance(value, (tuple, list)):
        return any(is_lazy(item) for item in value)
    return False


def required_properties_of(value: Any) -> Set[str]:
    """All object properties *value* needs before it can be evaluated."""
    if isinstance(value, LazilyEvaluable):
        return set(value.required_properties)
    if isinstance(value, (tuple, list)):
        requirements: Set[str] = set()
        for item in value:
            requirements |= required_properties_of(item)
        return requirements
    return set()


def value_in_context(value: Any, context: Any) -> Any:
    """Resolve any delayed arguments in *value* against *context*."""
    if isinstance(value, LazilyEvaluable):
        return value.evaluate_in(context)
    if isinstance(value, tuple):
        return tuple(value_in_context(item, context) for item in value)
    if isinstance(value, list):
        return [value_in_context(item, context) for item in value]
    return value


def make_delayed_function(function: Callable, *args: Any, **kwargs: Any) -> Any:
    """Apply *function*, deferring the call if any argument is delayed.

    This is the lazy analogue of
    :func:`repro.core.distributions.distribution_function`: if any argument
    needs the object under construction, the whole call becomes a
    :class:`DelayedArgument`; otherwise the function is applied immediately
    (and may still build a derived distribution if arguments are random).
    """
    all_values = list(args) + list(kwargs.values())
    if not any(is_lazy(value) for value in all_values):
        return function(*args, **kwargs)
    requirements: Set[str] = set()
    for value in all_values:
        requirements |= required_properties_of(value)

    def evaluator(context: Any) -> Any:
        concrete_args = [value_in_context(arg, context) for arg in args]
        concrete_kwargs = {key: value_in_context(val, context) for key, val in kwargs.items()}
        return function(*concrete_args, **concrete_kwargs)

    return DelayedArgument(requirements, evaluator)


def lazy_function(function: Callable) -> Callable:
    """Decorator form of :func:`make_delayed_function`."""

    def wrapper(*args: Any, **kwargs: Any) -> Any:
        return make_delayed_function(function, *args, **kwargs)

    wrapper.__name__ = getattr(function, "__name__", "lazy_wrapped")
    wrapper.__doc__ = function.__doc__
    wrapper.__wrapped__ = function
    return wrapper


__all__ = [
    "LazilyEvaluable",
    "DelayedArgument",
    "is_lazy",
    "required_properties_of",
    "value_in_context",
    "make_delayed_function",
    "lazy_function",
]

"""Per-scenario engine scoring: the measurement core of the eval harness.

For one corpus scenario, :func:`score_scenario` draws a fixed-seed
ground-truth batch under the *reference* strategy (rejection — the paper's
semantics) and one batch per scored strategy, then reports per strategy:

* **acceptance rate** and honest **candidates drawn**
  (:meth:`AggregateStats.as_eval_metrics` — the same counters the service
  ships per shard);
* **wall time** for the whole batch (informational — never gated, CI
  runners differ);
* **distributional coverage** vs the reference batch: per-property
  total-variation histogram distance, normalized EMD and KS over the
  object x/y/heading + pairwise-distance marginals
  (:mod:`repro.evals.metrics`);
* a **status**: ``ok``, ``budget_exhausted`` (the iteration budget ran out
  before the batch filled) or ``error:<Type>``.

Scenario-level, it also runs the automatic pruning pass once and records
the :class:`~repro.core.pruning.PruningReport` area ratio — the paper's
pruned/original sampling-area number.

Determinism: per-scene seeds are ``derive_seed(base ^ crc32(strategy), i)``
(the fuzzer's splitmix64 derivation), so every metric except wall time is a
pure function of ``(scenario, strategy, seed, samples, max_iterations)``.
A failed draw consumes exactly its own derived seed — later scenes are
unaffected, so two runs disagree on nothing but timing.

``via_service=True`` scores through the generation service instead
(inline workers): the same derived request runs through
:func:`repro.service.service.generate_sync` and coverage is computed from
the JSON scene records the service returns — an end-to-end check that the
serving path preserves the engine's output distribution.
"""

from __future__ import annotations

import time
import zlib
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..core.errors import InfeasibleScenarioError, RejectionError, ScenicError
from ..core.vectors import Vector
from ..core.utils import normalize_angle
from ..fuzz.runner import derive_seed
from ..sampling import SamplerEngine
from ..sampling.stats import AggregateStats
from .metrics import coverage_summary, feature_columns

#: Default strategy set scored against the rejection reference: the
#: block-vectorized workhorse and the constructive synthesis path (with
#: fallback, so scenarios without a constructive plan still score).
DEFAULT_STRATEGIES = ("vectorized", "pruned-vectorized", "direct-fallback")
REFERENCE_STRATEGY = "rejection"

DEFAULT_SAMPLES = 40
DEFAULT_MAX_ITERATIONS = 3000

#: A strategy batch with fewer than this fraction of the target scenes is
#: not compared distributionally (too few samples to mean anything).
MIN_COVERAGE_FRACTION = 0.5


def strategy_salt(strategy: str) -> int:
    """A stable per-strategy seed offset (crc32 of the registry name)."""
    return zlib.crc32(strategy.encode("utf-8"))


def _batch_seeds(base_seed: int, strategy: str, samples: int) -> List[int]:
    salted = base_seed ^ strategy_salt(strategy)
    return [derive_seed(salted, index) for index in range(samples)]


# ---------------------------------------------------------------------------
# Engine-path scoring
# ---------------------------------------------------------------------------


def _run_engine_batch(
    artifact: Any,
    strategy: str,
    seeds: Sequence[int],
    max_iterations: int,
    strategy_factory: Optional[Callable[[str], Any]] = None,
) -> Dict[str, Any]:
    """Draw one scene per seed; returns scenes + metric dict + status."""
    instance = strategy_factory(strategy) if strategy_factory is not None else strategy
    start = time.perf_counter()
    try:
        engine = SamplerEngine(artifact, strategy=instance)
    except ScenicError as error:
        return {
            "scenes": [],
            "status": f"error:{type(error).__name__}",
            "metrics": AggregateStats().as_eval_metrics(),
            "wall_seconds": time.perf_counter() - start,
        }
    scenes = []
    failures = 0
    status = "ok"
    for seed in seeds:
        try:
            scenes.append(engine.sample(max_iterations=max_iterations, seed=seed))
        except RejectionError:
            failures += 1
            status = "budget_exhausted"
        except InfeasibleScenarioError as error:
            # Pruning proved the scenario empty — that is a scoring verdict
            # (and, for a corpus program known feasible, a soundness bug).
            status = f"error:{type(error).__name__}"
            break
        except ScenicError as error:
            status = f"error:{type(error).__name__}"
            break
    wall = time.perf_counter() - start
    metrics = engine.aggregate.as_eval_metrics()
    metrics["failed_draws"] = failures
    return {"scenes": scenes, "status": status, "metrics": metrics, "wall_seconds": wall}


# ---------------------------------------------------------------------------
# Service-path scoring
# ---------------------------------------------------------------------------


def _record_feature_columns(records: Sequence[Dict[str, Any]]) -> Dict[str, List[float]]:
    """Feature columns from the service's JSON scene records."""
    columns: Dict[str, List[float]] = {}
    for record in records:
        positions = [Vector(obj["position"][0], obj["position"][1]) for obj in record["objects"]]
        for index, (obj, point) in enumerate(zip(record["objects"], positions)):
            columns.setdefault(f"object{index}.x", []).append(point.x)
            columns.setdefault(f"object{index}.y", []).append(point.y)
            columns.setdefault(f"object{index}.heading", []).append(
                normalize_angle(float(obj["heading"]))
            )
        for i in range(len(positions)):
            for j in range(i + 1, len(positions)):
                columns.setdefault(f"distance({i},{j})", []).append(
                    positions[i].distance_to(positions[j])
                )
    return columns


def _run_service_batch(
    source: str, strategy: str, base_seed: int, samples: int, max_iterations: int
) -> Dict[str, Any]:
    """Score one strategy batch through the generation service (inline)."""
    from ..service.service import GenerationFailedError, generate_sync

    start = time.perf_counter()
    try:
        response = generate_sync(
            source,
            n=samples,
            seed=base_seed ^ strategy_salt(strategy),
            strategy=strategy,
            workers=0,
            max_iterations=max_iterations,
        )
    except (GenerationFailedError, ScenicError) as error:
        return {
            "columns": {},
            "status": f"error:{type(error).__name__}",
            "metrics": AggregateStats().as_eval_metrics(),
            "wall_seconds": time.perf_counter() - start,
        }
    wall = time.perf_counter() - start
    stats = response.stats
    iterations = int(stats.get("iterations", 0))
    scenes = int(stats.get("scenes", 0))
    metrics = {
        "scenes": scenes,
        "draws": int(stats.get("draws", scenes)),
        "iterations": iterations,
        "candidates": int(stats.get("candidates", iterations)),
        "acceptance_rate": (scenes / iterations) if iterations else 0.0,
        "sampling_seconds": float(stats.get("sampling_seconds", 0.0)),
        "rejections": stats.get("rejections", {}),
        "mean_importance_weight": stats.get("mean_importance_weight"),
        "failed_draws": 0,
    }
    return {
        "columns": _record_feature_columns(response.scenes),
        "status": "ok",
        "metrics": metrics,
        "wall_seconds": wall,
    }


# ---------------------------------------------------------------------------
# Scenario-level scoring
# ---------------------------------------------------------------------------


def pruning_summary(source_like: Any) -> Dict[str, Any]:
    """Run the automatic pruning pass once; JSON-safe report (or error)."""
    from ..core.pruning import prune_scenario
    from ..sampling.engine import resolve_scenario

    try:
        scenario = resolve_scenario(source_like, fresh=True)
        report = prune_scenario(scenario)
    except InfeasibleScenarioError as error:
        return {"applied": False, "error": f"InfeasibleScenarioError: {error}"}
    except ScenicError as error:
        return {"applied": False, "error": f"{type(error).__name__}: {error}"}
    summary = report.as_dict()
    summary["error"] = None
    return summary


def score_scenario(
    source: str,
    *,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    reference: str = REFERENCE_STRATEGY,
    seed: int = 0,
    samples: int = DEFAULT_SAMPLES,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    via_service: bool = False,
    strategy_factory: Optional[Callable[[str], Any]] = None,
) -> Dict[str, Any]:
    """Score the engine on one scenario; see the module docstring.

    *strategy_factory*, when given, maps a strategy name to the strategy
    instance actually run — the hook the planted-regression selfcheck uses
    to smuggle a deliberately biased sampler in under a real name.
    """
    from ..language import compile_scenario

    try:
        artifact = compile_scenario(source)
        artifact.scenario()  # force interpretation: compile errors land here
    except ScenicError as error:
        return {
            "status": f"error:{type(error).__name__}",
            "error": str(error),
            "strategies": {},
            "pruning": {"applied": False, "error": str(error)},
        }

    result: Dict[str, Any] = {
        "status": "ok",
        "samples": samples,
        "seed": seed,
        "max_iterations": max_iterations,
        "reference": reference,
        "via_service": via_service,
        "pruning": pruning_summary(artifact),
        "strategies": {},
    }

    def run(strategy: str) -> Dict[str, Any]:
        if via_service:
            return _run_service_batch(source, strategy, seed, samples, max_iterations)
        outcome = _run_engine_batch(
            artifact,
            strategy,
            _batch_seeds(seed, strategy, samples),
            max_iterations,
            strategy_factory,
        )
        outcome["columns"] = feature_columns(outcome.pop("scenes"))
        return outcome

    reference_outcome = run(reference)
    reference_columns = reference_outcome["columns"]
    reference_scenes = reference_outcome["metrics"]["scenes"]

    def entry(outcome: Dict[str, Any], compare: bool) -> Dict[str, Any]:
        record = {
            "status": outcome["status"],
            "wall_seconds": round(outcome["wall_seconds"], 4),
            **outcome["metrics"],
        }
        scenes = outcome["metrics"]["scenes"]
        enough = (
            reference_scenes >= samples * MIN_COVERAGE_FRACTION
            and scenes >= samples * MIN_COVERAGE_FRACTION
        )
        if compare and enough:
            record["coverage"] = coverage_summary(reference_columns, outcome["columns"])
        elif compare:
            record["coverage"] = None
        return record

    result["strategies"][reference] = entry(reference_outcome, compare=False)
    for strategy in strategies:
        if strategy == reference:
            continue
        result["strategies"][strategy] = entry(run(strategy), compare=True)
    if reference_outcome["status"] != "ok":
        result["status"] = reference_outcome["status"]
    return result


__all__ = [
    "DEFAULT_MAX_ITERATIONS",
    "DEFAULT_SAMPLES",
    "DEFAULT_STRATEGIES",
    "REFERENCE_STRATEGY",
    "pruning_summary",
    "score_scenario",
    "strategy_salt",
]

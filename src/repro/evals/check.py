"""Baseline-relative regression gating: ``python -m repro.evals check``.

``check`` re-scores the stratified CI slice of the corpus with the exact
parameters recorded in the committed scorecard (seed, samples, iteration
budget, strategy set) and compares every deterministic metric against the
baseline within per-metric tolerance bands:

===================  =========================================================
metric               band (see :class:`Tolerances`)
===================  =========================================================
status               must not get *worse* (ok → exhausted/error fails; an
                     entry that was already exhausted/error may stay so)
acceptance rate      ``|cur - base| <= max(abs, rel * base)``
candidates drawn     ``cur <= base * factor + slack`` (more candidates for
                     the same scenes = the pruning/synthesis win regressed)
coverage max-TV      ``cur <= base + margin`` (distributional drift away
                     from rejection ground truth)
pruning area ratio   ``|cur - base| <= abs`` (the static analyzer weakened
                     or over-pruned)
scenes               ``cur >= ceil(base * scene_fraction)``
wall time            never gated (informational only)
===================  =========================================================

Every metric except wall time is a pure function of the recorded seed, so
on the machine that produced the baseline the comparison is exact; the
bands only absorb cross-platform float wiggle — and are calibrated so the
planted-regression selfcheck (:mod:`repro.evals.selfcheck`), which biases a
sampler far beyond any numeric wiggle, demonstrably fails.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence


@dataclass(frozen=True)
class Tolerances:
    """Per-metric tolerance bands for :func:`compare_scorecards`."""

    acceptance_abs: float = 0.02
    acceptance_rel: float = 0.15
    candidates_factor: float = 1.25
    candidates_slack: int = 25
    coverage_tv_margin: float = 0.12
    area_ratio_abs: float = 0.02
    scene_fraction: float = 0.9


DEFAULT_TOLERANCES = Tolerances()

_STATUS_RANK = {"ok": 0, "budget_exhausted": 1}


def _status_rank(status: str) -> int:
    return _STATUS_RANK.get(status, 2)  # any error:* is worst


def compare_strategy_records(
    scenario_id: str,
    strategy: str,
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerances: Tolerances = DEFAULT_TOLERANCES,
) -> List[str]:
    """Tolerance-band comparison of one (scenario, strategy) record."""
    problems: List[str] = []
    where = f"{scenario_id}/{strategy}"

    cur_status = str(current.get("status", "ok"))
    base_status = str(baseline.get("status", "ok"))
    if _status_rank(cur_status) > _status_rank(base_status):
        problems.append(f"{where}: status regressed {base_status} -> {cur_status}")
        return problems  # metric comparisons are meaningless past this

    base_rate = float(baseline.get("acceptance_rate", 0.0))
    cur_rate = float(current.get("acceptance_rate", 0.0))
    band = max(tolerances.acceptance_abs, tolerances.acceptance_rel * base_rate)
    if abs(cur_rate - base_rate) > band:
        problems.append(
            f"{where}: acceptance rate {cur_rate:.4f} outside ±{band:.4f} "
            f"of baseline {base_rate:.4f}"
        )

    base_candidates = int(baseline.get("candidates", 0))
    cur_candidates = int(current.get("candidates", 0))
    ceiling = base_candidates * tolerances.candidates_factor + tolerances.candidates_slack
    if cur_candidates > ceiling:
        problems.append(
            f"{where}: {cur_candidates} candidates drawn exceeds "
            f"{ceiling:.0f} (baseline {base_candidates} x "
            f"{tolerances.candidates_factor} + {tolerances.candidates_slack})"
        )

    base_scenes = int(baseline.get("scenes", 0))
    cur_scenes = int(current.get("scenes", 0))
    floor = math.ceil(base_scenes * tolerances.scene_fraction)
    if cur_scenes < floor:
        problems.append(
            f"{where}: only {cur_scenes} scenes vs baseline {base_scenes} "
            f"(floor {floor})"
        )

    base_coverage = baseline.get("coverage")
    cur_coverage = current.get("coverage")
    if base_coverage and cur_coverage:
        base_tv = float(base_coverage["max_tv"])
        cur_tv = float(cur_coverage["max_tv"])
        if cur_tv > base_tv + tolerances.coverage_tv_margin:
            problems.append(
                f"{where}: coverage max-TV {cur_tv:.3f} exceeds baseline "
                f"{base_tv:.3f} + {tolerances.coverage_tv_margin}"
            )
    elif base_coverage and not cur_coverage:
        problems.append(f"{where}: coverage was measured in the baseline but not now")
    return problems


def compare_scorecards(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerances: Tolerances = DEFAULT_TOLERANCES,
    scenario_ids: Optional[Sequence[str]] = None,
) -> List[str]:
    """All tolerance-band violations of *current* against *baseline*.

    Compares every scenario present in *current* (or just *scenario_ids*);
    scenarios only in the baseline are ignored — the CI slice is a subset
    of the full committed run by design.  A scenario in *current* that the
    baseline has never scored is an error (the manifest and scorecard must
    move together).
    """
    problems: List[str] = []
    for key in ("seed", "samples", "max_iterations", "reference"):
        if current.get(key) != baseline.get(key):
            problems.append(
                f"parameter mismatch: {key} = {current.get(key)!r} here but "
                f"{baseline.get(key)!r} in the baseline (rerun with the "
                f"baseline's parameters)"
            )
    wanted = set(scenario_ids) if scenario_ids is not None else None
    for scenario_id, result in sorted(current.get("scenarios", {}).items()):
        if wanted is not None and scenario_id not in wanted:
            continue
        base_result = baseline.get("scenarios", {}).get(scenario_id)
        if base_result is None:
            problems.append(
                f"{scenario_id}: not in the baseline scorecard (regenerate "
                f"the committed scorecard baseline after changing the corpus)"
            )
            continue
        pruning = result.get("pruning", {})
        base_pruning = base_result.get("pruning", {})
        if pruning.get("error") is None and base_pruning.get("error") is None:
            base_ratio = base_pruning.get("area_ratio")
            cur_ratio = pruning.get("area_ratio")
            if base_ratio is not None and cur_ratio is not None:
                if abs(float(cur_ratio) - float(base_ratio)) > tolerances.area_ratio_abs:
                    problems.append(
                        f"{scenario_id}: pruning area ratio {cur_ratio:.4f} vs "
                        f"baseline {base_ratio:.4f} (band ±{tolerances.area_ratio_abs})"
                    )
        elif pruning.get("error") and not base_pruning.get("error"):
            problems.append(
                f"{scenario_id}: pruning now fails ({pruning['error']}) but "
                f"succeeded in the baseline"
            )
        for strategy, record in sorted(result.get("strategies", {}).items()):
            base_record = base_result.get("strategies", {}).get(strategy)
            if base_record is None:
                problems.append(f"{scenario_id}/{strategy}: not in the baseline scorecard")
                continue
            problems.extend(
                compare_strategy_records(scenario_id, strategy, record, base_record, tolerances)
            )
    return problems


__all__ = ["DEFAULT_TOLERANCES", "Tolerances", "compare_scorecards", "compare_strategy_records"]

"""The graded scenario corpus: manifest model, tagging, and subset selection.

The corpus is the set of ``.scenic`` programs the quality-eval harness
scores the engine against.  It is described by a single committed document,
``corpus/manifest.json``::

    {
      "schema": 1,
      "scenarios": [
        {
          "id": "two_cars",
          "path": "examples/scenarios/two_cars.scenic",
          "world": "...",                    # registered world name | inline
          "features": ["facing", "require", ...],
          "difficulty": "medium",            # easy | medium | hard
          "origin": "paper-example",         # paper-example | fuzz-promoted
          "objects": 3,
          "fingerprint": "sha256...",        # content address (dedup key)
          "iterations_per_scene": 12.5       # measured at promotion time
        },
        ...
      ]
    }

Scenario programs live in two places: the hand-written paper gallery under
``examples/scenarios/`` (which also feeds the golden corpus) and the
fuzzer-promoted programs under ``corpus/scenarios/``.  ``path`` is always
relative to the repository root, so the manifest is position-independent.

Difficulty is *measured*, not guessed: the promotion pipeline samples a
small fixed-seed rejection batch and tiers the scenario by mean candidate
iterations per accepted scene (:func:`difficulty_tier`).  The tags drive
the CI subset (:meth:`Manifest.stratified_subset`): cheap tiers run on
every push, the full graded corpus runs in the local ``evals run`` pass
that produces the committed scorecard.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Repository root (src/repro/evals/corpus.py -> three parents up from src/).
REPO_ROOT = Path(__file__).resolve().parents[3]

#: Default manifest + promoted-scenario locations, relative to the repo root.
CORPUS_DIR = REPO_ROOT / "corpus"
MANIFEST_PATH = CORPUS_DIR / "manifest.json"
PROMOTED_DIR = CORPUS_DIR / "scenarios"
EXAMPLES_DIR = REPO_ROOT / "examples" / "scenarios"

MANIFEST_SCHEMA = 1


def _registered_worlds() -> Tuple[str, ...]:
    from ..worlds.registry import registered_worlds

    return registered_worlds()


#: Stratification buckets: every registered world plus ``inline`` (no world
#: imported).  Derived from the world registry, so adding a world extends
#: the corpus schema without touching this module.
WORLDS: Tuple[str, ...] = ("inline",) + _registered_worlds()
DIFFICULTIES = ("easy", "medium", "hard")

#: Tier thresholds on mean rejection iterations per accepted scene.  An
#: ``easy`` scenario accepts almost every candidate; a ``hard`` one burns a
#: three-digit candidate budget per scene (visibility cones, tight
#: clearances) and is what the pruning/synthesis strategies exist for.
EASY_MAX_ITERATIONS_PER_SCENE = 8.0
MEDIUM_MAX_ITERATIONS_PER_SCENE = 60.0

#: Source tokens scanned by :func:`infer_features`; ordered so feature lists
#: are stable across runs.  These mirror the fuzzer's feature labels, so
#: hand-written gallery scenarios and promoted fuzz programs are tagged in
#: the same vocabulary.  World-specific tokens (region names, deviation
#: properties) come from each world's :class:`CorpusProfile` and are
#: appended after these generic ones.
_GENERIC_FEATURE_TOKENS: Tuple[Tuple[str, str], ...] = (
    ("class ", "class"),
    ("def ", "def"),
    ("if ", "if"),
    ("for ", "for"),
    ("while ", "while"),
    ("param ", "param"),
    ("require[", "soft-require"),
    ("require", "require"),
    ("mutate", "mutate"),
    ("at ", "at"),
    ("offset by", "offset by"),
    ("left of", "left of"),
    ("right of", "right of"),
    ("ahead of", "ahead of"),
    ("behind", "behind"),
    ("beyond", "beyond"),
    ("visible", "visible"),
    ("following", "following"),
    ("facing toward", "facing toward"),
    ("facing away from", "facing away from"),
    ("apparently facing", "apparently facing"),
    ("facing", "facing"),
    ("relative to", "relative to"),
    ("with ", "with"),
    ("Range(", "Range"),
    ("Normal(", "Normal"),
    ("TruncatedNormal(", "Normal"),
    ("Uniform(", "Uniform"),
    ("Discrete(", "Discrete"),
    ("resample(", "resample"),
    (" deg", "deg"),
)


def _feature_tokens() -> Tuple[Tuple[str, str], ...]:
    """Generic tokens plus every registered world's corpus tokens."""
    from ..worlds.registry import corpus_feature_tokens

    return _GENERIC_FEATURE_TOKENS + corpus_feature_tokens()


def infer_features(source: str) -> List[str]:
    """Feature tags for *source*, by token scan (stable order, no dups)."""
    found: List[str] = []
    for token, label in _feature_tokens():
        if token in source and label not in found:
            found.append(label)
    return found


def infer_world(source: str) -> str:
    """Which world a program compiles against (``inline`` = none imported).

    Import names are resolved through the world registry's alias map, so
    ``import gta`` tags the same bucket as the canonical library name.
    """
    from ..worlds.registry import resolve_world_name

    for line in source.splitlines():
        stripped = line.strip()
        if stripped.startswith("import "):
            name = stripped.split()[1]
            canonical = resolve_world_name(name)
            if canonical is not None:
                return canonical
    return "inline"


def difficulty_tier(iterations_per_scene: float) -> str:
    """Tier a scenario by measured rejection cost per accepted scene."""
    if iterations_per_scene <= EASY_MAX_ITERATIONS_PER_SCENE:
        return "easy"
    if iterations_per_scene <= MEDIUM_MAX_ITERATIONS_PER_SCENE:
        return "medium"
    return "hard"


@dataclass
class CorpusEntry:
    """One graded scenario of the corpus (see the module docstring)."""

    id: str
    path: str  # relative to the repository root
    world: str
    features: List[str]
    difficulty: str
    origin: str
    objects: int
    fingerprint: str
    iterations_per_scene: float
    #: Promotion provenance for fuzz-promoted entries (campaign derive seed).
    seed: Optional[int] = None

    def source(self, root: Path = REPO_ROOT) -> str:
        return (root / self.path).read_text()

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "id": self.id,
            "path": self.path,
            "world": self.world,
            "features": list(self.features),
            "difficulty": self.difficulty,
            "origin": self.origin,
            "objects": self.objects,
            "fingerprint": self.fingerprint,
            "iterations_per_scene": round(float(self.iterations_per_scene), 3),
        }
        if self.seed is not None:
            record["seed"] = self.seed
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "CorpusEntry":
        return cls(
            id=str(record["id"]),
            path=str(record["path"]),
            world=str(record["world"]),
            features=[str(feature) for feature in record.get("features", [])],
            difficulty=str(record["difficulty"]),
            origin=str(record.get("origin", "unknown")),
            objects=int(record.get("objects", 0)),
            fingerprint=str(record.get("fingerprint", "")),
            iterations_per_scene=float(record.get("iterations_per_scene", 0.0)),
            seed=int(record["seed"]) if record.get("seed") is not None else None,
        )


@dataclass
class Manifest:
    """The corpus manifest: a validated list of :class:`CorpusEntry`."""

    entries: List[CorpusEntry] = field(default_factory=list)

    # -- persistence --------------------------------------------------------------

    @classmethod
    def load(cls, path: Path = MANIFEST_PATH) -> "Manifest":
        document = json.loads(Path(path).read_text())
        if document.get("schema") != MANIFEST_SCHEMA:
            raise ValueError(
                f"unsupported corpus manifest schema {document.get('schema')!r} "
                f"(expected {MANIFEST_SCHEMA})"
            )
        return cls(entries=[CorpusEntry.from_dict(r) for r in document["scenarios"]])

    def save(self, path: Path = MANIFEST_PATH) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "schema": MANIFEST_SCHEMA,
            "scenarios": [entry.as_dict() for entry in sorted(self.entries, key=lambda e: e.id)],
        }
        path.write_text(json.dumps(document, indent=1) + "\n")
        return path

    # -- integrity ----------------------------------------------------------------

    def validate(self, root: Path = REPO_ROOT) -> List[str]:
        """Structural problems with the manifest (empty list = valid)."""
        problems: List[str] = []
        seen_ids: set = set()
        seen_fingerprints: set = set()
        for entry in self.entries:
            if entry.id in seen_ids:
                problems.append(f"duplicate scenario id {entry.id!r}")
            seen_ids.add(entry.id)
            if entry.fingerprint:
                if entry.fingerprint in seen_fingerprints:
                    problems.append(f"{entry.id}: duplicate fingerprint {entry.fingerprint[:12]}…")
                seen_fingerprints.add(entry.fingerprint)
            if entry.world not in WORLDS:
                problems.append(f"{entry.id}: unknown world {entry.world!r}")
            if entry.difficulty not in DIFFICULTIES:
                problems.append(f"{entry.id}: unknown difficulty {entry.difficulty!r}")
            if not entry.features:
                problems.append(f"{entry.id}: no feature tags")
            if not (root / entry.path).is_file():
                problems.append(f"{entry.id}: missing program file {entry.path}")
        return problems

    # -- lookups ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(sorted(self.entries, key=lambda entry: entry.id))

    def ids(self) -> List[str]:
        return sorted(entry.id for entry in self.entries)

    def get(self, scenario_id: str) -> CorpusEntry:
        for entry in self.entries:
            if entry.id == scenario_id:
                return entry
        raise KeyError(scenario_id)

    def fingerprints(self) -> set:
        return {entry.fingerprint for entry in self.entries if entry.fingerprint}

    def by_bucket(self) -> Dict[Tuple[str, str], List[CorpusEntry]]:
        """Entries grouped by ``(world, difficulty)``, each group id-sorted."""
        buckets: Dict[Tuple[str, str], List[CorpusEntry]] = {}
        for entry in sorted(self.entries, key=lambda e: e.id):
            buckets.setdefault((entry.world, entry.difficulty), []).append(entry)
        return buckets

    def feature_coverage(self) -> Dict[str, int]:
        """How many scenarios exercise each feature tag."""
        coverage: Dict[str, int] = {}
        for entry in self.entries:
            for feature in entry.features:
                coverage[feature] = coverage.get(feature, 0) + 1
        return dict(sorted(coverage.items()))

    def stratified_subset(
        self,
        per_bucket: int = 8,
        difficulties: Sequence[str] = ("easy", "medium"),
        include: Iterable[str] = (),
    ) -> List[CorpusEntry]:
        """A difficulty-capped, world-stratified subset (the CI slice).

        Takes up to *per_bucket* id-sorted entries from every
        ``(world, difficulty)`` bucket whose tier is in *difficulties*, plus
        every id in *include* (regardless of tier) — deterministic, so the
        committed scorecard and the CI rerun always pick the same slice.
        """
        wanted = set(include)
        chosen: List[CorpusEntry] = []
        for (_world, difficulty), bucket in sorted(self.by_bucket().items()):
            if difficulty in difficulties:
                chosen.extend(bucket[:per_bucket])
        chosen_ids = {entry.id for entry in chosen}
        for entry in sorted(self.entries, key=lambda e: e.id):
            if entry.id in wanted and entry.id not in chosen_ids:
                chosen.append(entry)
        return sorted(chosen, key=lambda entry: entry.id)


__all__ = [
    "CorpusEntry",
    "Manifest",
    "CORPUS_DIR",
    "EXAMPLES_DIR",
    "MANIFEST_PATH",
    "MANIFEST_SCHEMA",
    "PROMOTED_DIR",
    "REPO_ROOT",
    "DIFFICULTIES",
    "WORLDS",
    "difficulty_tier",
    "infer_features",
    "infer_world",
]

"""Planted-regression selfcheck: prove the gate can actually catch a bias.

A regression gate that has never fired is untested infrastructure.  The
selfcheck plants a known distributional bug — :class:`BiasedStrategy`
draws :data:`BIAS_PICKS` accepted scenes per request and keeps the one
whose first object sits furthest in +x, a classic max-selection bias that
shifts the ``object0.x`` marginal far beyond any numeric tolerance — and
runs the *same* comparison CI runs:

1. score a small scenario slice honestly → ``evals check`` against those
   very results must pass (the bands absorb zero drift);
2. score the same slice with the biased sampler smuggled in under the real
   strategy name (via :func:`score_scenario`'s ``strategy_factory`` hook)
   → ``evals check`` must *fail*, flagging the coverage max-TV band and
   the inflated candidates-drawn count.

``python -m repro.evals selfcheck`` exits non-zero unless both halves hold;
``tests/test_evals_metrics.py`` runs the same routine in-process.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.scenario import GenerationStats
from ..sampling.strategies import SamplingStrategy, make_strategy
from .check import DEFAULT_TOLERANCES, Tolerances, compare_scorecards
from .metrics import scene_features

#: Accepted scenes drawn per request by the biased sampler; 3 picks shift
#: the object0.x marginal by roughly half its spread (TV ≈ 0.4 against a
#: 0.12 band) and triple the candidates drawn (against a 1.25x band).
BIAS_PICKS = 3

#: The marginal the planted bug skews.
BIAS_PROPERTY = "object0.x"


class BiasedStrategy(SamplingStrategy):
    """A deliberately wrong sampler: max-of-N selection on one marginal.

    Wraps a real strategy and, per draw, takes *picks* accepted scenes and
    keeps the one maximizing *prop* — the kind of subtle
    acceptance-ordering bug the coverage metrics exist to catch.  Presents
    the inner strategy's registry name so scorecard records line up.
    """

    def __init__(
        self,
        inner: SamplingStrategy,
        picks: int = BIAS_PICKS,
        prop: str = BIAS_PROPERTY,
    ) -> None:
        self._inner = inner
        self._picks = picks
        self._prop = prop
        self.name = inner.name
        self.mutates_scenario = inner.mutates_scenario
        self.uses_importance_weights = inner.uses_importance_weights

    def bind(self, scenario) -> None:
        self._inner.bind(scenario)

    def sample(self, scenario, max_iterations, rng):
        merged = GenerationStats()
        best: Optional[Tuple[float, Any]] = None
        for _ in range(self._picks):
            scene, stats = self._inner.sample(scenario, max_iterations, rng)
            merged.iterations += stats.iterations
            merged.rejections_containment += stats.rejections_containment
            merged.rejections_collision += stats.rejections_collision
            merged.rejections_visibility += stats.rejections_visibility
            merged.rejections_user += stats.rejections_user
            merged.rejections_sampling += stats.rejections_sampling
            merged.component_redraws += stats.component_redraws
            merged.candidates_drawn += stats.candidates_drawn
            merged.elapsed_seconds += stats.elapsed_seconds
            if scene is None:
                return None, merged
            key = scene_features(scene).get(self._prop, 0.0)
            if best is None or key > best[0]:
                best = (key, scene)
        assert best is not None
        return best[1], merged


def biased_factory(
    picks: int = BIAS_PICKS,
    prop: str = BIAS_PROPERTY,
    only: Optional[Sequence[str]] = None,
) -> Callable[[str], SamplingStrategy]:
    """A ``strategy_factory`` for :func:`score_scenario` planting the bias.

    With *only*, just those strategy names are biased and the rest run
    honestly — the selfcheck uses this to keep the rejection reference
    clean, so the bias shows up as coverage drift instead of cancelling
    out of both sides of the comparison.
    """

    def factory(strategy: str) -> SamplingStrategy:
        inner = make_strategy(strategy)
        if only is not None and strategy not in only:
            return inner
        return BiasedStrategy(inner, picks=picks, prop=prop)

    return factory


def run_selfcheck(
    scenario_ids: Optional[Sequence[str]] = None,
    *,
    seed: int = 4242,
    samples: int = 40,
    max_iterations: int = 3000,
    strategies: Sequence[str] = ("vectorized",),
    tolerances: Tolerances = DEFAULT_TOLERANCES,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run both halves of the planted-regression selfcheck.

    Returns ``{"passed": bool, "honest_problems": [...], "biased_problems":
    [...]}`` — passing means the honest re-run is clean *and* the biased
    run is flagged.
    """
    from .corpus import Manifest
    from .scorecard import build_scorecard

    manifest = Manifest.load()
    if scenario_ids is None:
        entries = [
            entry
            for entry in manifest
            if entry.difficulty == "easy" and entry.objects >= 2
        ][:3]
    else:
        wanted = set(scenario_ids)
        entries = [entry for entry in manifest if entry.id in wanted]
    if not entries:
        raise ValueError("selfcheck found no eligible corpus scenarios")

    def card(factory: Optional[Callable[[str], Any]] = None) -> Dict[str, Any]:
        return build_scorecard(
            manifest,
            entries,
            seed=seed,
            samples=samples,
            max_iterations=max_iterations,
            strategies=strategies,
            strategy_factory=factory,
            progress=progress,
        )

    if progress is not None:
        progress(f"selfcheck slice: {', '.join(entry.id for entry in entries)}")
    baseline = card()
    honest_problems = compare_scorecards(card(), baseline, tolerances)
    biased_problems = compare_scorecards(
        card(biased_factory(only=list(strategies))), baseline, tolerances
    )

    return {
        "passed": not honest_problems and bool(biased_problems),
        "scenarios": [entry.id for entry in entries],
        "honest_problems": honest_problems,
        "biased_problems": biased_problems,
    }


__all__ = [
    "BIAS_PICKS",
    "BIAS_PROPERTY",
    "BiasedStrategy",
    "biased_factory",
    "run_selfcheck",
]

"""Corpus growth: auto-promote interesting fuzzer programs into the corpus.

The fuzzer's grammar walk (:mod:`repro.fuzz.program_gen`) generates far
more well-formed programs than the hand-written gallery — the promotion
pipeline turns the good ones into permanent, graded corpus scenarios:

1. **Enumerate** the same derived-seed stream a fuzz campaign would
   (``derive_seed(master, index)``), so every promoted program is
   reproducible from ``(master seed, index)`` alone.
2. **Filter**: the program must compile and fill a small fixed-seed
   rejection batch within the iteration budget (compile+generate success —
   the acceptance bar every corpus entry must clear).
3. **Dedup** by compiled-artifact fingerprint — the same content address
   the artifact cache and the service use — against everything already in
   the manifest, so re-running promotion never duplicates a scenario.
4. **Stratify**: per-``(world, difficulty)`` bucket caps keep the corpus
   balanced instead of drowning in the easy inline programs the grammar
   emits most often; a program exercising a feature tag the corpus has
   seen fewer than :data:`RARE_FEATURE_COUNT` times is admitted even when
   its bucket is full.
5. **Tag**: world, feature list and measured difficulty tier land in the
   manifest entry (:class:`~repro.evals.corpus.CorpusEntry`).

Promoted programs are written under ``corpus/scenarios/`` as
``fz<seed>.scenic``; :func:`promote_to_examples` graduates the best of
them into ``examples/scenarios/`` (and thus into the golden-corpus replay)
when they prove feasible under every golden strategy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..core.errors import RejectionError, ScenicError
from ..fuzz.program_gen import generate_program
from ..fuzz.runner import derive_seed
from ..sampling import SamplerEngine
from .corpus import (
    CorpusEntry,
    EXAMPLES_DIR,
    Manifest,
    PROMOTED_DIR,
    REPO_ROOT,
    difficulty_tier,
    infer_features,
    infer_world,
)

#: Fixed-seed trial-generation parameters for the promotion filter.
TRIAL_SCENES = 4
TRIAL_MAX_ITERATIONS = 2500
TRIAL_SEED = 0x5EED

#: Per-(world, difficulty) cap on fuzz-promoted entries, as a fraction of
#: the growth target; keeps the corpus stratified (step 4 above).
BUCKET_FRACTION = 0.14

#: A feature tag seen fewer than this many times corpus-wide admits its
#: program past a full bucket.
RARE_FEATURE_COUNT = 3

#: The strategy set a scenario must survive to graduate into the golden
#: corpus (mirrors ``tests/golden/regen.py``).
GOLDEN_STRATEGIES = (
    "rejection",
    "batch",
    "vectorized",
    "pruning",
    "pruned-vectorized",
    "direct",
)
GOLDEN_MAX_ITERATIONS = 50_000


@dataclass
class Measurement:
    fingerprint: str
    objects: int
    iterations_per_scene: float


def measure_source(
    source: str,
    trial_scenes: int = TRIAL_SCENES,
    max_iterations: int = TRIAL_MAX_ITERATIONS,
    seed: int = TRIAL_SEED,
) -> Measurement:
    """Compile + trial-generate *source* under rejection; raise on failure.

    Raises :class:`ScenicError` (compile/interpret problems) or
    :class:`RejectionError` (the budget ran out) — a program that raises
    either is not promoted.
    """
    from ..language import compile_scenario

    artifact = compile_scenario(source)
    scenario = artifact.scenario()
    objects = len(scenario.objects)
    engine = SamplerEngine(artifact, strategy="rejection")
    for index in range(trial_scenes):
        engine.sample(max_iterations=max_iterations, seed=derive_seed(seed, index))
    iterations = engine.aggregate.total_iterations
    return Measurement(
        fingerprint=artifact.fingerprint,
        objects=objects,
        iterations_per_scene=iterations / trial_scenes,
    )


# ---------------------------------------------------------------------------
# Manifest construction
# ---------------------------------------------------------------------------


def ingest_examples(
    manifest: Manifest,
    examples_dir: Path = EXAMPLES_DIR,
    root: Path = REPO_ROOT,
    progress: Optional[Callable[[str], None]] = None,
) -> int:
    """Add every gallery scenario not yet in the manifest (measured + tagged).

    Gallery programs are known feasible (the golden corpus replays them),
    so they get the golden iteration budget rather than the promotion
    filter's tight one.
    """
    known = {entry.id for entry in manifest.entries}
    added = 0
    for path in sorted(examples_dir.glob("*.scenic")):
        if path.stem in known:
            continue
        source = path.read_text()
        measured = measure_source(
            source, trial_scenes=2, max_iterations=GOLDEN_MAX_ITERATIONS
        )
        entry = CorpusEntry(
            id=path.stem,
            path=str(path.relative_to(root)),
            world=infer_world(source),
            features=infer_features(source),
            difficulty=difficulty_tier(measured.iterations_per_scene),
            origin="paper-example",
            objects=measured.objects,
            fingerprint=measured.fingerprint,
            iterations_per_scene=measured.iterations_per_scene,
        )
        manifest.entries.append(entry)
        added += 1
        if progress is not None:
            progress(f"ingested {entry.id} ({entry.world}/{entry.difficulty})")
    return added


def _bucket_counts(manifest: Manifest) -> Dict[Tuple[str, str], int]:
    counts: Dict[Tuple[str, str], int] = {}
    for entry in manifest.entries:
        key = (entry.world, entry.difficulty)
        counts[key] = counts.get(key, 0) + 1
    return counts


def promote_from_fuzzer(
    manifest: Manifest,
    target: int,
    master_seed: int,
    max_programs: int = 10_000,
    promoted_dir: Path = PROMOTED_DIR,
    root: Path = REPO_ROOT,
    world: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> int:
    """Grow *manifest* to *target* scenarios from the fuzzer's seed stream.

    Returns the number of programs promoted.  Deterministic: the same
    ``(manifest state, target, master_seed, world)`` always promotes the
    same programs, because candidates are enumerated in derive-seed order
    and admission depends only on the manifest built so far.  Passing
    *world* pins every candidate to that registered world (or ``inline``),
    which is how a newly added world seeds its corpus strata.
    """
    promoted_dir.mkdir(parents=True, exist_ok=True)
    fingerprints = manifest.fingerprints()
    bucket_cap = max(8, math.ceil(target * BUCKET_FRACTION))
    promoted = 0
    for index in range(max_programs):
        if len(manifest) >= target:
            break
        seed = derive_seed(master_seed, index)
        program = generate_program(seed, world=world)
        scenario_id = f"fz{seed}"
        if any(entry.id == scenario_id for entry in manifest.entries):
            continue
        try:
            measured = measure_source(program.source)
        except (ScenicError, RejectionError):
            continue
        if measured.fingerprint in fingerprints:
            continue
        world = program.world or "inline"
        difficulty = difficulty_tier(measured.iterations_per_scene)
        features = sorted(set(program.features) | set(infer_features(program.source)))
        coverage = manifest.feature_coverage()
        rare = any(coverage.get(feature, 0) < RARE_FEATURE_COUNT for feature in features)
        counts = _bucket_counts(manifest)
        if counts.get((world, difficulty), 0) >= bucket_cap and not rare:
            continue
        path = promoted_dir / f"{scenario_id}.scenic"
        path.write_text(program.source)
        entry = CorpusEntry(
            id=scenario_id,
            path=str(path.relative_to(root)),
            world=world,
            features=features,
            difficulty=difficulty,
            origin="fuzz-promoted",
            objects=measured.objects,
            fingerprint=measured.fingerprint,
            iterations_per_scene=measured.iterations_per_scene,
            seed=seed,
        )
        manifest.entries.append(entry)
        fingerprints.add(measured.fingerprint)
        promoted += 1
        if progress is not None:
            progress(
                f"promoted {scenario_id} ({world}/{difficulty}, "
                f"{measured.iterations_per_scene:.1f} it/scene) "
                f"[{len(manifest)}/{target}]"
            )
    return promoted


# ---------------------------------------------------------------------------
# Golden-corpus graduation
# ---------------------------------------------------------------------------


def survives_golden_strategies(source: str, seed: int = 20260729) -> bool:
    """Whether one scene generates under every golden-pinned strategy."""
    for strategy in GOLDEN_STRATEGIES:
        try:
            engine = SamplerEngine(source, strategy=strategy)
            engine.sample(max_iterations=GOLDEN_MAX_ITERATIONS, seed=seed)
        except (ScenicError, RejectionError):
            return False
    return True


def promote_to_examples(
    manifest: Manifest,
    count: int,
    examples_dir: Path = EXAMPLES_DIR,
    root: Path = REPO_ROOT,
    progress: Optional[Callable[[str], None]] = None,
) -> List[str]:
    """Graduate *count* fuzz-promoted scenarios into the example gallery.

    Moves the ``.scenic`` file into ``examples/scenarios/`` (where the
    golden corpus, the fuzzer's mutation mode and the gallery tests pick it
    up) and repoints the manifest entry.  Candidates are screened with
    :func:`survives_golden_strategies`, preferring world diversity (the
    golden corpus should stress every world, not just the easy inline
    programs).  Returns the graduated scenario ids — run
    ``tests/golden/regen.py`` on them afterwards to pin their streams.
    """
    # Soft requirements are excluded: the gallery pins vectorized ==
    # rejection draw-for-draw, and per-candidate probability rolls are the
    # one thing that legitimately splits those streams.
    candidates = [
        entry
        for entry in manifest
        if entry.origin == "fuzz-promoted"
        and entry.path.startswith("corpus/")
        and "soft-require" not in entry.features
    ]
    # Round-robin the worlds so graduation is not all-inline.
    by_world: Dict[str, List[CorpusEntry]] = {}
    for entry in candidates:
        by_world.setdefault(entry.world, []).append(entry)
    ordered: List[CorpusEntry] = []
    while any(by_world.values()):
        for world in sorted(by_world):
            if by_world[world]:
                ordered.append(by_world[world].pop(0))
    graduated: List[str] = []
    for entry in ordered:
        if len(graduated) >= count:
            break
        source = entry.source(root)
        if not survives_golden_strategies(source):
            continue
        old_path = root / entry.path
        new_path = examples_dir / f"{entry.id}.scenic"
        new_path.write_text(source)
        old_path.unlink()
        entry.path = str(new_path.relative_to(root))
        graduated.append(entry.id)
        if progress is not None:
            progress(f"graduated {entry.id} -> {entry.path}")
    return graduated


__all__ = [
    "GOLDEN_STRATEGIES",
    "Measurement",
    "ingest_examples",
    "measure_source",
    "promote_from_fuzzer",
    "promote_to_examples",
    "survives_golden_strategies",
]

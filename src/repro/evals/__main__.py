"""``python -m repro.evals`` — corpus promotion, scoring, and CI gating.

Subcommands::

    promote    grow the corpus from the fuzzer's seed stream (+ optionally
               graduate scenarios into the golden-corpus gallery)
    run        fixed-seed scoring pass -> results/EVALS_10.{json,md}
    check      re-score the stratified CI slice with the committed
               baseline's parameters and gate within tolerance bands
    selfcheck  plant a biased sampler and prove `check` flags it

Exit status: 0 on success; 1 when `check` finds regressions, `selfcheck`
fails, or `promote` misses its target.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .corpus import Manifest, MANIFEST_PATH
from .scorecard import (
    SCORECARD_JSON,
    SCORECARD_MD,
    build_scorecard,
    load_scorecard,
    write_scorecard,
)
from .scoring import DEFAULT_MAX_ITERATIONS, DEFAULT_SAMPLES, DEFAULT_STRATEGIES

#: The fixed seed behind the committed ``results/EVALS_10.json``.
EVALS_SEED = 20260808

#: Default stratified CI slice: a few scenarios per (world, difficulty)
#: bucket, hard tier excluded — sized to keep the CI evals job well under
#: its five-minute budget.
CI_PER_BUCKET = 2
CI_DIFFICULTIES = ("easy", "medium")


def _progress(quiet: bool):
    if quiet:
        return None
    return lambda message: print(message, flush=True)


def _strategy_list(raw: Optional[str]) -> List[str]:
    if raw is None:
        return list(DEFAULT_STRATEGIES)
    return [name.strip() for name in raw.split(",") if name.strip()]


def _subset_entries(manifest: Manifest, args: argparse.Namespace):
    difficulties = tuple(
        tier.strip() for tier in args.difficulties.split(",") if tier.strip()
    )
    entries = manifest.stratified_subset(
        per_bucket=args.per_bucket, difficulties=difficulties
    )
    description = {
        "per_bucket": args.per_bucket,
        "difficulties": list(difficulties),
        "scenarios": [entry.id for entry in entries],
    }
    return entries, description


def cmd_promote(args: argparse.Namespace) -> int:
    from .promote import ingest_examples, promote_from_fuzzer, promote_to_examples

    progress = _progress(args.quiet)
    manifest = Manifest.load() if MANIFEST_PATH.exists() else Manifest()
    ingested = ingest_examples(manifest, progress=progress)
    promoted = promote_from_fuzzer(
        manifest,
        target=args.target,
        master_seed=args.seed,
        max_programs=args.max_programs,
        world=args.world,
        progress=progress,
    )
    graduated: List[str] = []
    if args.goldens:
        graduated = promote_to_examples(manifest, args.goldens, progress=progress)
    problems = manifest.validate()
    if problems:
        for problem in problems:
            print(f"manifest problem: {problem}", file=sys.stderr)
        return 1
    manifest.save()
    print(
        f"corpus: {len(manifest)} scenarios "
        f"({ingested} ingested, {promoted} promoted, {len(graduated)} graduated) "
        f"-> {MANIFEST_PATH}"
    )
    if graduated:
        print("regen goldens for: " + " ".join(graduated))
    return 0 if len(manifest) >= args.target else 1


def cmd_run(args: argparse.Namespace) -> int:
    manifest = Manifest.load()
    subset = None
    entries = None
    if args.subset == "ci":
        entries, subset = _subset_entries(manifest, args)
    document = build_scorecard(
        manifest,
        entries,
        seed=args.seed,
        samples=args.samples,
        max_iterations=args.max_iterations,
        strategies=_strategy_list(args.strategies),
        via_service=args.via_service,
        subset=subset,
        progress=_progress(args.quiet),
    )
    written = write_scorecard(
        document, json_path=Path(args.out), md_path=None if args.no_md else Path(args.md)
    )
    for path in written:
        print(f"wrote {path}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from .check import compare_scorecards

    baseline = load_scorecard(Path(args.baseline))
    manifest = Manifest.load()
    problems = manifest.validate()
    if problems:
        for problem in problems:
            print(f"manifest problem: {problem}", file=sys.stderr)
        return 1
    entries, subset = _subset_entries(manifest, args)
    # Score with the *baseline's* parameters so every deterministic metric
    # is directly comparable; only the slice is ours.
    current = build_scorecard(
        manifest,
        entries,
        seed=int(baseline["seed"]),
        samples=int(baseline["samples"]),
        max_iterations=int(baseline["max_iterations"]),
        strategies=[s for s in baseline["strategies"]],
        reference=str(baseline["reference"]),
        via_service=bool(baseline.get("via_service", False)),
        subset=subset,
        progress=_progress(args.quiet),
    )
    failures = compare_scorecards(current, baseline)
    if args.report:
        Path(args.report).write_text(json.dumps(current, indent=1, sort_keys=True) + "\n")
    if failures:
        print(f"evals check: {len(failures)} regression(s) vs {args.baseline}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    scored = len(current.get("scenarios", {}))
    print(f"evals check: OK ({scored} scenarios within tolerance of {args.baseline})")
    return 0


def cmd_selfcheck(args: argparse.Namespace) -> int:
    from .selfcheck import run_selfcheck

    outcome = run_selfcheck(
        seed=args.seed, samples=args.samples, progress=_progress(args.quiet)
    )
    print(f"selfcheck slice: {', '.join(outcome['scenarios'])}")
    print(f"honest re-run problems: {len(outcome['honest_problems'])} (want 0)")
    print(f"biased-run problems:    {len(outcome['biased_problems'])} (want > 0)")
    for problem in outcome["biased_problems"]:
        print(f"  flagged: {problem}")
    if outcome["passed"]:
        print("selfcheck: OK — the gate catches the planted bias")
        return 0
    print("selfcheck: FAILED — the regression gate is not doing its job", file=sys.stderr)
    return 1


def _add_subset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--per-bucket",
        type=int,
        default=CI_PER_BUCKET,
        help="scenarios per (world, difficulty) bucket in the CI slice",
    )
    parser.add_argument(
        "--difficulties",
        default=",".join(CI_DIFFICULTIES),
        help="comma-separated difficulty tiers included in the CI slice",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evals",
        description="graded scenario corpus + engine quality evals",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress progress lines")
    commands = parser.add_subparsers(dest="command", required=True)

    promote = commands.add_parser("promote", help="grow the corpus from the fuzzer")
    promote.add_argument("--target", type=int, default=150, help="corpus size to reach")
    promote.add_argument("--seed", type=int, default=EVALS_SEED, help="master seed")
    promote.add_argument(
        "--max-programs", type=int, default=10_000, help="fuzzer programs to consider"
    )
    promote.add_argument(
        "--world",
        help="pin every candidate to one registered world (seeds a new world's strata)",
    )
    promote.add_argument(
        "--goldens",
        type=int,
        default=0,
        help="graduate this many promoted scenarios into examples/scenarios/",
    )
    promote.set_defaults(func=cmd_promote)

    run = commands.add_parser("run", help="score the corpus into a scorecard")
    run.add_argument("--seed", type=int, default=EVALS_SEED)
    run.add_argument("--samples", type=int, default=DEFAULT_SAMPLES)
    run.add_argument("--max-iterations", type=int, default=DEFAULT_MAX_ITERATIONS)
    run.add_argument(
        "--strategies", help="comma-separated strategies scored against the reference"
    )
    run.add_argument(
        "--subset",
        choices=("full", "ci"),
        default="full",
        help="score the whole corpus or the stratified CI slice",
    )
    run.add_argument(
        "--via-service",
        action="store_true",
        help="score through the generation service instead of the engine",
    )
    run.add_argument("--out", default=str(SCORECARD_JSON))
    run.add_argument("--md", default=str(SCORECARD_MD))
    run.add_argument("--no-md", action="store_true", help="skip the markdown rendering")
    _add_subset_arguments(run)
    run.set_defaults(func=cmd_run)

    check = commands.add_parser("check", help="gate the CI slice against the baseline")
    check.add_argument("--baseline", default=str(SCORECARD_JSON))
    check.add_argument(
        "--report", help="also write the freshly scored slice to this JSON path"
    )
    _add_subset_arguments(check)
    check.set_defaults(func=cmd_check)

    selfcheck = commands.add_parser(
        "selfcheck", help="prove `check` flags a planted bias"
    )
    selfcheck.add_argument("--seed", type=int, default=4242)
    selfcheck.add_argument("--samples", type=int, default=40)
    selfcheck.set_defaults(func=cmd_selfcheck)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

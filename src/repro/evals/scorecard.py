"""Scorecard assembly: the committed ``results/EVALS_*.json`` + markdown.

A scorecard is one fixed-seed scoring pass over (a slice of) the graded
corpus, serialized as a machine-diffable JSON document next to the
``BENCH_*.json`` perf trajectory, plus a human-readable markdown rendering.
The JSON document is the CI baseline: ``python -m repro.evals check``
re-scores the stratified CI slice with the parameters recorded *in the
document* and compares within tolerance bands (:mod:`repro.evals.check`).

Document shape (schema 1)::

    {
      "schema": 1,
      "kind": "engine-quality-evals",
      "seed": ..., "samples": ..., "max_iterations": ...,
      "reference": "rejection",
      "strategies": ["vectorized", ...],
      "subset": {"per_bucket": 8, "difficulties": ["easy","medium"]} | null,
      "corpus": {"total": 153, "scored": 153, "by_world": ..., "by_difficulty": ...},
      "scenarios": {id: <score_scenario() result + tags>},
      "aggregates": {strategy: {...means/worst-cases...}}
    }

Floats are rounded before serialization so reruns diff cleanly and the
committed artifact stays reviewable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from .corpus import CorpusEntry, Manifest, REPO_ROOT
from .scoring import (
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_SAMPLES,
    DEFAULT_STRATEGIES,
    REFERENCE_STRATEGY,
    score_scenario,
)

SCORECARD_SCHEMA = 1

#: The committed dashboard artifacts for this PR.
RESULTS_DIR = REPO_ROOT / "results"
SCORECARD_JSON = RESULTS_DIR / "EVALS_10.json"
SCORECARD_MD = RESULTS_DIR / "EVALS_10.md"


def _round_floats(value: Any, digits: int = 6) -> Any:
    if isinstance(value, float):
        return round(value, digits)
    if isinstance(value, dict):
        return {key: _round_floats(item, digits) for key, item in value.items()}
    if isinstance(value, list):
        return [_round_floats(item, digits) for item in value]
    return value


def build_scorecard(
    manifest: Manifest,
    entries: Optional[Sequence[CorpusEntry]] = None,
    *,
    seed: int,
    samples: int = DEFAULT_SAMPLES,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    reference: str = REFERENCE_STRATEGY,
    via_service: bool = False,
    subset: Optional[Dict[str, Any]] = None,
    root: Path = REPO_ROOT,
    strategy_factory: Optional[Callable[[str], Any]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Score *entries* (default: the whole manifest) into a scorecard dict."""
    chosen = list(entries) if entries is not None else list(manifest)
    scenarios: Dict[str, Any] = {}
    for index, entry in enumerate(sorted(chosen, key=lambda e: e.id)):
        result = score_scenario(
            entry.source(root),
            strategies=strategies,
            reference=reference,
            seed=seed,
            samples=samples,
            max_iterations=max_iterations,
            via_service=via_service,
            strategy_factory=strategy_factory,
        )
        result["world"] = entry.world
        result["difficulty"] = entry.difficulty
        scenarios[entry.id] = result
        if progress is not None:
            status = result["status"]
            progress(f"[{index + 1}/{len(chosen)}] {entry.id}: {status}")

    by_world: Dict[str, int] = {}
    by_difficulty: Dict[str, int] = {}
    for entry in manifest:
        by_world[entry.world] = by_world.get(entry.world, 0) + 1
        by_difficulty[entry.difficulty] = by_difficulty.get(entry.difficulty, 0) + 1

    document = {
        "schema": SCORECARD_SCHEMA,
        "kind": "engine-quality-evals",
        "seed": seed,
        "samples": samples,
        "max_iterations": max_iterations,
        "reference": reference,
        "strategies": list(strategies),
        "via_service": via_service,
        "subset": subset,
        "corpus": {
            "total": len(manifest),
            "scored": len(chosen),
            "by_world": dict(sorted(by_world.items())),
            "by_difficulty": dict(sorted(by_difficulty.items())),
            "feature_coverage": manifest.feature_coverage(),
        },
        "scenarios": scenarios,
        "aggregates": aggregate_scores(scenarios, [reference, *strategies]),
    }
    return _round_floats(document)


def aggregate_scores(
    scenarios: Dict[str, Any], strategies: Sequence[str]
) -> Dict[str, Any]:
    """Per-strategy roll-up over every scored scenario."""
    aggregates: Dict[str, Any] = {}
    for strategy in dict.fromkeys(strategies):  # preserve order, drop dups
        acceptance: List[float] = []
        candidates = 0
        scenes = 0
        wall = 0.0
        tv_values: List[float] = []
        worst_tv: Optional[tuple] = None
        ok = 0
        exhausted = 0
        errors = 0
        for scenario_id, result in sorted(scenarios.items()):
            record = result.get("strategies", {}).get(strategy)
            if record is None:
                continue
            status = record.get("status", "ok")
            if status == "ok":
                ok += 1
            elif status == "budget_exhausted":
                exhausted += 1
            else:
                errors += 1
            acceptance.append(float(record.get("acceptance_rate", 0.0)))
            candidates += int(record.get("candidates", 0))
            scenes += int(record.get("scenes", 0))
            wall += float(record.get("wall_seconds", 0.0))
            coverage = record.get("coverage")
            if coverage:
                tv = float(coverage["max_tv"])
                tv_values.append(tv)
                if worst_tv is None or tv > worst_tv[0]:
                    worst_tv = (tv, scenario_id)
        aggregates[strategy] = {
            "scenarios": len(acceptance),
            "ok": ok,
            "budget_exhausted": exhausted,
            "errors": errors,
            "scenes": scenes,
            "candidates": candidates,
            "mean_acceptance_rate": (
                sum(acceptance) / len(acceptance) if acceptance else 0.0
            ),
            "wall_seconds": wall,
        }
        if tv_values:
            aggregates[strategy]["coverage"] = {
                "scenarios": len(tv_values),
                "mean_max_tv": sum(tv_values) / len(tv_values),
                "worst_max_tv": worst_tv[0],
                "worst_scenario": worst_tv[1],
            }
    return aggregates


# ---------------------------------------------------------------------------
# Persistence + markdown rendering
# ---------------------------------------------------------------------------


def write_scorecard(
    document: Dict[str, Any],
    json_path: Path = SCORECARD_JSON,
    md_path: Optional[Path] = SCORECARD_MD,
) -> List[Path]:
    json_path = Path(json_path)
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    written = [json_path]
    if md_path is not None:
        md_path = Path(md_path)
        md_path.write_text(render_markdown(document))
        written.append(md_path)
    return written


def load_scorecard(path: Path = SCORECARD_JSON) -> Dict[str, Any]:
    document = json.loads(Path(path).read_text())
    if document.get("schema") != SCORECARD_SCHEMA:
        raise ValueError(
            f"unsupported scorecard schema {document.get('schema')!r} "
            f"(expected {SCORECARD_SCHEMA})"
        )
    return document


def render_markdown(document: Dict[str, Any]) -> str:
    """A human-readable scorecard next to the JSON artifact."""
    corpus = document["corpus"]
    lines = [
        "# Engine quality scorecard",
        "",
        f"Fixed-seed quality evals over the graded scenario corpus "
        f"(seed {document['seed']}, {document['samples']} scenes per "
        f"scenario/strategy, reference strategy `{document['reference']}`). "
        f"Regenerate with `python -m repro.evals run`; CI gates regressions "
        f"with `python -m repro.evals check` (see docs/evals.md).",
        "",
        "## Corpus",
        "",
        f"- scenarios: **{corpus['total']}** (scored here: {corpus['scored']})",
        f"- by world: "
        + ", ".join(f"{world} = {count}" for world, count in corpus["by_world"].items()),
        f"- by difficulty: "
        + ", ".join(f"{tier} = {count}" for tier, count in corpus["by_difficulty"].items()),
        f"- feature tags covered: {len(corpus['feature_coverage'])}",
        "",
        "## Per-strategy aggregates",
        "",
        "| strategy | scenarios | ok | exhausted | errors | mean acceptance | candidates | mean max-TV | worst max-TV (scenario) |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for strategy, agg in document["aggregates"].items():
        coverage = agg.get("coverage")
        if coverage:
            mean_tv = f"{coverage['mean_max_tv']:.3f}"
            worst = f"{coverage['worst_max_tv']:.3f} ({coverage['worst_scenario']})"
        else:
            mean_tv = "—"
            worst = "—"
        lines.append(
            f"| `{strategy}` | {agg['scenarios']} | {agg['ok']} | "
            f"{agg['budget_exhausted']} | {agg['errors']} | "
            f"{agg['mean_acceptance_rate']:.3f} | {agg['candidates']} | "
            f"{mean_tv} | {worst} |"
        )
    lines += [
        "",
        "## Worst-covered scenarios (gated strategies)",
        "",
        "| scenario | world | difficulty | strategy | max TV | max KS | acceptance |",
        "|---|---|---|---|---|---|---|",
    ]
    worst_rows = []
    for scenario_id, result in document["scenarios"].items():
        for strategy, record in result.get("strategies", {}).items():
            coverage = record.get("coverage")
            if coverage:
                worst_rows.append(
                    (
                        float(coverage["max_tv"]),
                        scenario_id,
                        result.get("world", "?"),
                        result.get("difficulty", "?"),
                        strategy,
                        coverage,
                        record,
                    )
                )
    worst_rows.sort(reverse=True, key=lambda row: row[0])
    for tv, scenario_id, world, difficulty, strategy, coverage, record in worst_rows[:12]:
        lines.append(
            f"| {scenario_id} | {world} | {difficulty} | `{strategy}` | "
            f"{tv:.3f} | {coverage['max_ks']:.3f} | {record['acceptance_rate']:.3f} |"
        )
    lines += [
        "",
        "Wall-time columns in the JSON document are informational only — "
        "`evals check` never gates on timing.",
        "",
    ]
    return "\n".join(lines)


__all__ = [
    "SCORECARD_JSON",
    "SCORECARD_MD",
    "SCORECARD_SCHEMA",
    "aggregate_scores",
    "build_scorecard",
    "load_scorecard",
    "render_markdown",
    "write_scorecard",
]

"""Distribution-distance metrics for the quality-eval harness.

The harness compares a strategy's output scenes against a fixed-seed
rejection ground-truth batch, per scene property (object x/y/heading and
pairwise distances — the same marginals as the fuzzer's oracle E).  Two
complementary distances are computed per property:

:func:`histogram_distance`
    Total-variation distance between the two empirical distributions after
    binning over their combined range: ``0.5 * Σ |p_i - q_i|`` with
    normalized bin masses.  0 for identical samples, 1 for disjoint
    supports.  This is the *gated* coverage metric — a biased sampler that
    systematically shifts or truncates a marginal moves it far and fast.

:func:`emd_distance`
    The empirical 1-Wasserstein (earth mover) distance for equal-size
    samples — the mean absolute difference of the sorted samples —
    normalized by the reference spread so it is scale-free.  Unlike the
    binned distance it is *exactly* monotone under shifting one sample,
    which makes it the better diagnostic number (and the property-testable
    one: shift monotonicity holds with no binning caveats).

The KS statistic and binned chi-square from PR 6's statistical-equivalence
oracle (:mod:`repro.fuzz.oracles`) are reused as-is for the significance
view; this module only adds the magnitude view on top.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from ..core.vectors import Vector
from ..core.utils import normalize_angle
from ..fuzz.oracles import chi_square_quantile, chi_square_two_sample, ks_statistic

#: Bin count for :func:`histogram_distance`; coarse enough that a
#: 40-to-80-scene batch fills bins, fine enough that a half-spread shift is
#: clearly visible.
DEFAULT_BINS = 12


def histogram_distance(
    reference: Sequence[float], candidate: Sequence[float], bins: int = DEFAULT_BINS
) -> float:
    """Total-variation distance between binned empirical distributions.

    Bins span the combined range of both samples; each sample is normalized
    to unit mass, so the result is in ``[0, 1]`` regardless of sample sizes.
    Identical samples give exactly 0; samples with disjoint supports give
    exactly 1 (every bin is owned by one side).  Permutation-invariant by
    construction (only bin counts matter).
    """
    if not reference or not candidate:
        raise ValueError("histogram_distance needs non-empty samples")
    low = min(min(reference), min(candidate))
    high = max(max(reference), max(candidate))
    if high <= low:  # all values identical across both samples
        return 0.0
    width = (high - low) / bins
    if width <= 0.0:  # spread below float resolution: nothing to compare
        return 0.0
    counts_ref = [0] * bins
    counts_cand = [0] * bins
    for value in reference:
        counts_ref[min(bins - 1, int((value - low) / width))] += 1
    for value in candidate:
        counts_cand[min(bins - 1, int((value - low) / width))] += 1
    n, m = len(reference), len(candidate)
    return 0.5 * sum(
        abs(a / n - b / m) for a, b in zip(counts_ref, counts_cand)
    )


def emd_distance(reference: Sequence[float], candidate: Sequence[float]) -> float:
    """Normalized empirical 1-Wasserstein distance between equal-size samples.

    ``mean(|sorted(reference) - sorted(candidate)|) / spread(reference)``
    (spread 1.0 when the reference is constant, keeping the metric finite).
    Exactly 0 for identical samples; shifting one sample by ``s`` moves the
    raw distance by exactly ``|s|`` when supports were aligned — strictly
    monotone under shift, which :mod:`tests.test_evals_metrics` pins with
    Hypothesis.
    """
    if len(reference) != len(candidate):
        raise ValueError(
            f"emd_distance needs equal-size samples ({len(reference)} vs {len(candidate)})"
        )
    if not reference:
        raise ValueError("emd_distance needs non-empty samples")
    sorted_ref = sorted(reference)
    sorted_cand = sorted(candidate)
    raw = sum(abs(a - b) for a, b in zip(sorted_ref, sorted_cand)) / len(reference)
    spread = sorted_ref[-1] - sorted_ref[0]
    return raw / (spread if spread > 0 else 1.0)


# ---------------------------------------------------------------------------
# Scene feature columns (the compared marginals)
# ---------------------------------------------------------------------------


def scene_features(scene) -> Dict[str, float]:
    """Per-scene marginal values: object x/y/heading + pairwise distances.

    The same feature set as the fuzzer's statistical-equivalence oracle, so
    eval coverage numbers and oracle E verdicts are about the same
    quantities.
    """
    features: Dict[str, float] = {}
    positions = [Vector.from_any(obj.position) for obj in scene.objects]
    for index, (obj, point) in enumerate(zip(scene.objects, positions)):
        features[f"object{index}.x"] = point.x
        features[f"object{index}.y"] = point.y
        features[f"object{index}.heading"] = normalize_angle(float(obj.heading))
    for i in range(len(positions)):
        for j in range(i + 1, len(positions)):
            features[f"distance({i},{j})"] = positions[i].distance_to(positions[j])
    return features


def feature_columns(scenes: Sequence) -> Dict[str, List[float]]:
    """Column-major feature values over a batch of scenes."""
    columns: Dict[str, List[float]] = {}
    for scene in scenes:
        for name, value in scene_features(scene).items():
            columns.setdefault(name, []).append(value)
    return columns


#: A property whose combined spread is below this is deterministic — there
#: is nothing distributional to compare (matches oracle E's convention).
DETERMINISTIC_SPREAD = 1e-9


def coverage_summary(
    reference_columns: Dict[str, List[float]],
    candidate_columns: Dict[str, List[float]],
) -> Dict[str, float]:
    """Distributional-coverage roll-up between two feature batches.

    Returns the max/mean total-variation histogram distance, max normalized
    EMD, max KS statistic, and the count of compared (non-deterministic)
    properties.  Properties missing from the candidate count as distance 1
    (the worst case) rather than being skipped — a sampler that drops an
    object must not look *better*.
    """
    max_tv = 0.0
    tv_sum = 0.0
    max_emd = 0.0
    max_ks = 0.0
    chi_failures = 0
    compared = 0
    for name in sorted(reference_columns):
        ref_values = reference_columns[name]
        cand_values = candidate_columns.get(name)
        if cand_values is None or not cand_values:
            max_tv = 1.0
            max_emd = 1.0
            max_ks = 1.0
            tv_sum += 1.0
            compared += 1
            continue
        spread = max(*ref_values, *cand_values) - min(*ref_values, *cand_values)
        if spread <= DETERMINISTIC_SPREAD:
            continue
        compared += 1
        tv = histogram_distance(ref_values, cand_values)
        max_tv = max(max_tv, tv)
        tv_sum += tv
        if len(cand_values) == len(ref_values):
            max_emd = max(max_emd, emd_distance(ref_values, cand_values))
        max_ks = max(max_ks, ks_statistic(ref_values, cand_values))
        chi2, df = chi_square_two_sample(ref_values, cand_values)
        if chi2 > chi_square_quantile(df):
            chi_failures += 1
    return {
        "properties": compared,
        "max_tv": max_tv,
        "mean_tv": (tv_sum / compared) if compared else 0.0,
        "max_emd": max_emd,
        "max_ks": max_ks,
        "chi_square_failures": chi_failures,
    }


__all__ = [
    "DEFAULT_BINS",
    "coverage_summary",
    "emd_distance",
    "feature_columns",
    "histogram_distance",
    "scene_features",
]

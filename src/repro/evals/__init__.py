"""Graded scenario corpus + engine quality-eval harness.

The evals subsystem turns "does the engine still work?" into a committed,
CI-gated number.  It has three moving parts:

* a **graded corpus** (``corpus/manifest.json``): every gallery scenario
  plus ~130 auto-promoted fuzzer programs, each tagged with world, feature
  list and a measured difficulty tier (:mod:`repro.evals.corpus`,
  :mod:`repro.evals.promote`);
* a **scoring pass** (:mod:`repro.evals.scoring`,
  :mod:`repro.evals.metrics`): fixed-seed acceptance/candidates/pruning
  metrics per (scenario, strategy), plus distributional coverage against a
  rejection ground-truth batch;
* a **scorecard + gate** (:mod:`repro.evals.scorecard`,
  :mod:`repro.evals.check`): the committed ``results/EVALS_10.json``
  baseline, its markdown rendering, and tolerance-band regression checks —
  validated end-to-end by the planted-regression selfcheck
  (:mod:`repro.evals.selfcheck`).

Command line (see ``docs/evals.md``)::

    python -m repro.evals promote            # grow/refresh the corpus
    python -m repro.evals run                # full scoring pass -> results/
    python -m repro.evals check              # CI slice vs committed baseline
    python -m repro.evals selfcheck          # prove the gate catches a bias
"""

from .check import DEFAULT_TOLERANCES, Tolerances, compare_scorecards
from .corpus import CorpusEntry, Manifest, difficulty_tier, infer_features, infer_world
from .metrics import coverage_summary, emd_distance, feature_columns, histogram_distance
from .promote import ingest_examples, measure_source, promote_from_fuzzer
from .scorecard import (
    SCORECARD_JSON,
    SCORECARD_MD,
    build_scorecard,
    load_scorecard,
    render_markdown,
    write_scorecard,
)
from .scoring import (
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_SAMPLES,
    DEFAULT_STRATEGIES,
    REFERENCE_STRATEGY,
    score_scenario,
)
from .selfcheck import BiasedStrategy, biased_factory, run_selfcheck

__all__ = [
    "BiasedStrategy",
    "CorpusEntry",
    "DEFAULT_MAX_ITERATIONS",
    "DEFAULT_SAMPLES",
    "DEFAULT_STRATEGIES",
    "DEFAULT_TOLERANCES",
    "Manifest",
    "REFERENCE_STRATEGY",
    "SCORECARD_JSON",
    "SCORECARD_MD",
    "Tolerances",
    "biased_factory",
    "build_scorecard",
    "compare_scorecards",
    "coverage_summary",
    "difficulty_tier",
    "emd_distance",
    "feature_columns",
    "histogram_distance",
    "infer_features",
    "infer_world",
    "ingest_examples",
    "load_scorecard",
    "measure_source",
    "promote_from_fuzzer",
    "render_markdown",
    "run_selfcheck",
    "score_scenario",
    "write_scorecard",
]

"""A trainable car detector standing in for squeezeDet.

The detector follows a classic propose-then-classify architecture,
implemented entirely in NumPy so it trains in seconds on a laptop:

1. **Proposals** — connected bright regions of the image (cars are painted
   brighter or darker than the road, so thresholding against the local
   background finds candidate blobs).
2. **Scoring** — a logistic-regression classifier over the features of
   :mod:`repro.perception.features` decides whether a proposal is a car.
3. **Splitting** — a second logistic-regression head decides whether a
   proposal actually covers *two* partially-overlapping cars and, if so,
   splits it at the valley of its column-intensity profile.

What matters for the paper's experiments is that the detector's behaviour is
*learned from the training distribution*: a training set with few
overlapping cars gives a splitter that rarely fires (hurting precision and
recall on occlusion-heavy test sets), degraded night/rain images yield more
spurious proposals, and retraining with Scenic-generated hard cases improves
exactly those weaknesses — the qualitative shape of Tables 6–10.
"""

from __future__ import annotations

import math
import random as _random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .features import (
    FEATURE_COUNT,
    column_profile,
    profile_split_column,
    proposal_features,
)
from .metrics import iou
from .renderer import LabeledImage

Box = Tuple[float, float, float, float]


@dataclass
class Detection:
    """One predicted car: a box plus a confidence score."""

    box: Box
    score: float


@dataclass
class DetectorConfig:
    """Proposal-generation and training hyper-parameters."""

    #: Threshold (in absolute deviation from the background estimate) above
    #: which a pixel is considered "interesting".
    pixel_threshold: float = 0.10
    #: Proposals smaller than this (pixels on a side) are discarded.
    min_proposal_size: int = 3
    #: Maximum number of proposals per image (largest first).
    max_proposals: int = 12
    #: Detections scoring below this are suppressed at prediction time.
    score_threshold: float = 0.5
    #: Probability threshold above which a proposal is split into two boxes.
    split_threshold: float = 0.5
    #: L2 regularisation for both logistic-regression heads.
    l2: float = 1e-3
    #: SGD learning rate.
    learning_rate: float = 0.15
    #: IoU above which a proposal counts as matching a ground-truth box when
    #: building classifier training labels.
    match_iou: float = 0.3


def _sigmoid(value: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(value, -30.0, 30.0)))


def find_proposals(pixels: np.ndarray, config: DetectorConfig) -> List[Box]:
    """Connected-component blob detection against the estimated background."""
    background = float(np.median(pixels))
    mask = np.abs(pixels - background) > config.pixel_threshold
    height, width = mask.shape
    labels = np.zeros((height, width), dtype=np.int64)
    current_label = 0
    boxes: List[Box] = []
    for row in range(height):
        for column in range(width):
            if not mask[row, column] or labels[row, column] != 0:
                continue
            current_label += 1
            # Flood fill (iterative) to find the connected component.
            stack = [(row, column)]
            labels[row, column] = current_label
            min_row = max_row = row
            min_col = max_col = column
            count = 0
            while stack:
                r, c = stack.pop()
                count += 1
                min_row, max_row = min(min_row, r), max(max_row, r)
                min_col, max_col = min(min_col, c), max(max_col, c)
                for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                    nr, nc = r + dr, c + dc
                    if 0 <= nr < height and 0 <= nc < width and mask[nr, nc] and labels[nr, nc] == 0:
                        labels[nr, nc] = current_label
                        stack.append((nr, nc))
            if (max_row - min_row + 1) >= config.min_proposal_size and (
                max_col - min_col + 1
            ) >= config.min_proposal_size:
                boxes.append((float(min_col), float(min_row), float(max_col + 1), float(max_row + 1)))
    boxes.sort(key=lambda box: -(box[2] - box[0]) * (box[3] - box[1]))
    return boxes[: config.max_proposals]


def split_box(pixels: np.ndarray, box: Box, overlap_fraction: float = 0.50) -> Tuple[Box, Box]:
    """Split a box into two car boxes at the deepest valley of its column profile.

    When one car partially occludes another, their ground-truth boxes overlap
    each other; splitting the blob into two *disjoint* halves would
    systematically under-cover the occluded car.  Each half is therefore
    extended past the valley by ``overlap_fraction`` of the blob width, so
    the two predicted boxes overlap the way the true boxes do.
    """
    profile = column_profile(pixels, box)
    split = profile_split_column(profile)
    x1, y1, x2, y2 = box
    width = x2 - x1
    split_x = min(max(x1 + split, x1 + 2), x2 - 2)
    extension = overlap_fraction * width / 2.0
    left_box = (x1, y1, min(x2, split_x + extension), y2)
    right_box = (max(x1, split_x - extension), y1, x2, y2)
    return left_box, right_box


class CarDetector:
    """The trainable detector (score head + split head)."""

    def __init__(self, config: Optional[DetectorConfig] = None, seed: int = 0):
        self.config = config if config is not None else DetectorConfig()
        rng = np.random.default_rng(seed)
        self.score_weights = rng.normal(0.0, 0.01, FEATURE_COUNT)
        self.split_weights = rng.normal(0.0, 0.01, FEATURE_COUNT)
        self.trained_iterations = 0

    # -- prediction -----------------------------------------------------------------

    def predict(self, image: LabeledImage) -> List[Detection]:
        """Detect cars in *image*, returning scored boxes sorted by confidence."""
        config = self.config
        detections: List[Detection] = []
        for proposal in find_proposals(image.pixels, config):
            features = proposal_features(image.pixels, proposal)
            score = float(_sigmoid(features @ self.score_weights))
            if score < config.score_threshold:
                continue
            split_probability = float(_sigmoid(features @ self.split_weights))
            if split_probability > config.split_threshold:
                first, second = split_box(image.pixels, proposal)
                for part in (first, second):
                    part_features = proposal_features(image.pixels, part)
                    part_score = float(_sigmoid(part_features @ self.score_weights))
                    detections.append(Detection(part, 0.5 * (score + part_score)))
            else:
                detections.append(Detection(proposal, score))
        detections.sort(key=lambda detection: -detection.score)
        return detections

    def predict_boxes(self, image: LabeledImage) -> List[Box]:
        return [detection.box for detection in self.predict(image)]

    # -- training -------------------------------------------------------------------

    def _training_examples(self, image: LabeledImage) -> List[Tuple[np.ndarray, float, Optional[float]]]:
        """Per-proposal training rows: (features, is-car label, split label or None)."""
        config = self.config
        truth_boxes = [gt.box for gt in image.boxes]
        rows: List[Tuple[np.ndarray, float, Optional[float]]] = []
        for proposal in find_proposals(image.pixels, config):
            features = proposal_features(image.pixels, proposal)
            overlaps = [iou(proposal, truth) for truth in truth_boxes]
            matched = [overlap for overlap in overlaps if overlap >= config.match_iou]
            # Count ground-truth cars mostly covered by this proposal: the
            # split head should fire when a blob merges two cars.
            covered = 0
            for truth in truth_boxes:
                tx1, ty1, tx2, ty2 = truth
                truth_area = max(1e-9, (tx2 - tx1) * (ty2 - ty1))
                ix1, iy1 = max(proposal[0], tx1), max(proposal[1], ty1)
                ix2, iy2 = min(proposal[2], tx2), min(proposal[3], ty2)
                inter = max(0.0, ix2 - ix1) * max(0.0, iy2 - iy1)
                if inter / truth_area > 0.5:
                    covered += 1
            is_car = 1.0 if matched or covered >= 1 else 0.0
            split_label: Optional[float] = None
            if is_car:
                split_label = 1.0 if covered >= 2 else 0.0
            rows.append((features, is_car, split_label))
        return rows

    def train(
        self,
        images: Sequence[LabeledImage],
        iterations: int = 400,
        batch_size: int = 20,
        seed: int = 0,
        learning_rate: Optional[float] = None,
    ) -> None:
        """Train both heads with mini-batch SGD on logistic loss."""
        config = self.config
        rate = learning_rate if learning_rate is not None else config.learning_rate
        rng = _random.Random(seed)

        score_rows: List[Tuple[np.ndarray, float]] = []
        split_rows: List[Tuple[np.ndarray, float]] = []
        for image in images:
            for features, is_car, split_label in self._training_examples(image):
                score_rows.append((features, is_car))
                if split_label is not None:
                    split_rows.append((features, split_label))

        if not score_rows:
            return

        def sgd(rows: List[Tuple[np.ndarray, float]], weights: np.ndarray) -> np.ndarray:
            if not rows:
                return weights
            for _ in range(iterations):
                batch = [rows[rng.randrange(len(rows))] for _ in range(min(batch_size, len(rows)))]
                features_matrix = np.stack([row[0] for row in batch])
                labels = np.array([row[1] for row in batch])
                predictions = _sigmoid(features_matrix @ weights)
                gradient = features_matrix.T @ (predictions - labels) / len(batch)
                gradient += config.l2 * weights
                weights = weights - rate * gradient
            return weights

        self.score_weights = sgd(score_rows, self.score_weights)
        self.split_weights = sgd(split_rows, self.split_weights)
        self.trained_iterations += iterations

    # -- persistence ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, List[float]]:
        return {
            "score_weights": self.score_weights.tolist(),
            "split_weights": self.split_weights.tolist(),
        }

    def load_state_dict(self, state: Dict[str, List[float]]) -> None:
        self.score_weights = np.asarray(state["score_weights"], dtype=np.float64)
        self.split_weights = np.asarray(state["split_weights"], dtype=np.float64)

    def clone(self) -> "CarDetector":
        copy = CarDetector(self.config)
        copy.load_state_dict(self.state_dict())
        copy.trained_iterations = self.trained_iterations
        return copy


__all__ = ["CarDetector", "DetectorConfig", "Detection", "find_proposals", "split_box"]

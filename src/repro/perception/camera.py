"""A pinhole camera model projecting scene objects onto the image plane.

The camera sits on the ego car at a fixed height above the ground and looks
along the ego's heading.  Scenic's scenes are 2-D (bird's-eye), so the
vertical extent of cars is modelled with a nominal physical height; this is
enough to produce realistic image-plane bounding boxes whose size shrinks
with distance and whose horizontal position follows the bearing, which is
all the detection experiments depend on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.utils import normalize_angle
from ..core.vectors import Vector


@dataclass
class CameraConfig:
    """Camera intrinsics and mounting parameters."""

    image_width: int = 208
    image_height: int = 64
    horizontal_fov: float = math.radians(80.0)
    #: Height of the camera above the road surface, metres.
    camera_height: float = 1.2
    #: Nominal physical height of a car, metres (Scenic scenes are 2-D).
    car_physical_height: float = 1.5
    #: Fraction of the image height at which the horizon sits.
    horizon_fraction: float = 0.45
    #: Objects beyond this range are not rendered.
    max_range: float = 120.0
    #: Objects closer than this are clipped (behind or at the camera).
    min_range: float = 1.0

    @property
    def focal_length_pixels(self) -> float:
        return (self.image_width / 2.0) / math.tan(self.horizontal_fov / 2.0)

    @property
    def horizon_row(self) -> float:
        return self.image_height * self.horizon_fraction


class Camera:
    """Projects world-space objects into image-plane boxes."""

    def __init__(self, position: Vector, heading: float, config: Optional[CameraConfig] = None):
        self.position = Vector.from_any(position)
        self.heading = float(heading)
        self.config = config if config is not None else CameraConfig()

    @classmethod
    def from_ego(cls, ego, config: Optional[CameraConfig] = None) -> "Camera":
        return cls(Vector.from_any(ego.position), float(ego.heading), config)

    # -- geometry ----------------------------------------------------------------

    def world_to_local(self, point: Vector) -> Vector:
        """World point → camera frame (x = right, y = forward)."""
        relative = Vector.from_any(point) - self.position
        return relative.rotated_by(-self.heading)

    def bearing_of(self, point: Vector) -> float:
        """Angle of the point off the camera axis (positive = to the left)."""
        local = self.world_to_local(point)
        return normalize_angle(math.atan2(-local.x, local.y))

    def distance_to(self, point: Vector) -> float:
        return self.position.distance_to(point)

    def is_in_front(self, point: Vector) -> bool:
        return self.world_to_local(point).y > self.config.min_range

    # -- projection --------------------------------------------------------------

    def project_object(self, scenic_object) -> Optional[Tuple[float, float, float, float]]:
        """Project a car-like object into an image-plane box ``(x1, y1, x2, y2)``.

        Returns ``None`` when the object is behind the camera, too far away,
        or entirely outside the horizontal field of view.  Coordinates are in
        pixels with the origin at the top-left corner, matching the usual
        image convention.
        """
        config = self.config
        center = Vector.from_any(scenic_object.position)
        local = self.world_to_local(center)
        forward = local.y
        if forward < config.min_range or self.distance_to(center) > config.max_range:
            return None

        # Effective width of the car as seen from the camera: mixes its width
        # and length according to the relative orientation.
        relative_heading = normalize_angle(float(scenic_object.heading) - self.heading)
        effective_width = abs(float(scenic_object.width) * math.cos(relative_heading)) + abs(
            float(scenic_object.height) * math.sin(relative_heading)
        )
        effective_width = max(effective_width, float(scenic_object.width) * 0.7)

        focal = config.focal_length_pixels
        center_column = config.image_width / 2.0 - focal * (local.x / forward) * -1.0
        # (local.x is positive to the *right*? world_to_local rotates by -heading;
        #  with our heading convention the local x axis points right of the
        #  camera axis, so a positive local.x should land right of centre.)
        center_column = config.image_width / 2.0 + focal * (local.x / forward)

        half_width_px = (focal * effective_width / forward) / 2.0
        box_height_px = focal * config.car_physical_height / forward
        bottom_row = config.horizon_row + focal * config.camera_height / forward
        top_row = bottom_row - box_height_px

        x1 = center_column - half_width_px
        x2 = center_column + half_width_px
        y1 = top_row
        y2 = bottom_row

        # Discard boxes entirely outside the image.
        if x2 < 0 or x1 > config.image_width or y2 < 0 or y1 > config.image_height:
            return None
        x1 = max(x1, 0.0)
        y1 = max(y1, 0.0)
        x2 = min(x2, float(config.image_width))
        y2 = min(y2, float(config.image_height))
        if x2 - x1 < 1.0 or y2 - y1 < 1.0:
            return None
        return (x1, y1, x2, y2)


__all__ = ["Camera", "CameraConfig"]

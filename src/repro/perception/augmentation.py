"""Classical image augmentation (the Table 8 baseline).

The paper compares Scenic-driven retraining against classical augmentation
implemented with imgaug: random crops of 10–20 % per side, horizontal flips
with probability 0.5, and Gaussian blur with sigma in [0, 3].  This module
reimplements those transforms in NumPy, adjusting the ground-truth boxes
accordingly.
"""

from __future__ import annotations

import random as _random
from typing import List, Optional

import numpy as np

from .renderer import GroundTruthBox, LabeledImage
from .training import Dataset


def random_crop(image: LabeledImage, rng: _random.Random, min_fraction: float = 0.10,
                max_fraction: float = 0.20) -> LabeledImage:
    """Crop 10–20 % from each side, rescaling boxes to the new coordinates."""
    height, width = image.pixels.shape
    left = int(width * rng.uniform(min_fraction, max_fraction))
    right = int(width * rng.uniform(min_fraction, max_fraction))
    top = int(height * rng.uniform(min_fraction, max_fraction))
    bottom = int(height * rng.uniform(min_fraction, max_fraction))
    cropped = image.pixels[top:height - bottom, left:width - right]
    if cropped.size == 0:
        return image.copy()
    boxes: List[GroundTruthBox] = []
    for gt in image.boxes:
        x1, y1, x2, y2 = gt.box
        new_box = (
            max(0.0, x1 - left),
            max(0.0, y1 - top),
            min(float(cropped.shape[1]), x2 - left),
            min(float(cropped.shape[0]), y2 - top),
        )
        if new_box[2] - new_box[0] >= 2 and new_box[3] - new_box[1] >= 2:
            boxes.append(GroundTruthBox(new_box, gt.visibility, gt.distance, gt.luminance, gt.object_index))
    return LabeledImage(cropped.copy(), boxes, dict(image.params), image.difficulty)


def horizontal_flip(image: LabeledImage) -> LabeledImage:
    """Mirror the image left-to-right, flipping box coordinates."""
    height, width = image.pixels.shape
    flipped = np.ascontiguousarray(image.pixels[:, ::-1])
    boxes = [
        GroundTruthBox(
            (width - gt.box[2], gt.box[1], width - gt.box[0], gt.box[3]),
            gt.visibility,
            gt.distance,
            gt.luminance,
            gt.object_index,
        )
        for gt in image.boxes
    ]
    return LabeledImage(flipped, boxes, dict(image.params), image.difficulty)


def gaussian_blur(image: LabeledImage, sigma: float) -> LabeledImage:
    """Separable Gaussian blur (boxes unchanged)."""
    if sigma <= 0:
        return image.copy()
    radius = max(1, int(3 * sigma))
    xs = np.arange(-radius, radius + 1, dtype=np.float64)
    kernel = np.exp(-(xs ** 2) / (2 * sigma ** 2))
    kernel /= kernel.sum()
    blurred = np.apply_along_axis(lambda row: np.convolve(row, kernel, mode="same"), 1, image.pixels)
    blurred = np.apply_along_axis(lambda col: np.convolve(col, kernel, mode="same"), 0, blurred)
    return LabeledImage(blurred, list(image.boxes), dict(image.params), image.difficulty)


def classical_augmentations(image: LabeledImage, rng: Optional[_random.Random] = None) -> LabeledImage:
    """One random classical augmentation of *image* (crop + maybe flip + blur)."""
    rng = rng if rng is not None else _random.Random()
    augmented = random_crop(image, rng)
    if rng.random() < 0.5:
        augmented = horizontal_flip(augmented)
    augmented = gaussian_blur(augmented, rng.uniform(0.0, 3.0))
    return augmented


def augment_dataset(
    source: LabeledImage,
    count: int,
    seed: int = 0,
    name: str = "classical-augmentation",
) -> Dataset:
    """Generate *count* classical augmentations of a single source image.

    This reproduces the Table 8 baseline: augmenting the one misclassified
    image rather than generating new scenes with Scenic.
    """
    rng = _random.Random(seed)
    images = [classical_augmentations(source, rng) for _ in range(count)]
    return Dataset(name, images)


__all__ = ["random_crop", "horizontal_flip", "gaussian_blur", "classical_augmentations", "augment_dataset"]

"""Datasets, training loops and evaluation for the detection pipeline."""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.scenario import Scenario
from .detector import CarDetector, DetectorConfig
from .metrics import (
    DetectionMetrics,
    average_precision_from_images,
    precision_recall,
)
from .renderer import LabeledImage, RendererConfig, render_scene


@dataclass
class Dataset:
    """A named collection of labelled images (a training or test set)."""

    name: str
    images: List[LabeledImage] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.images)

    def __iter__(self):
        return iter(self.images)

    def subset(self, count: int, rng: Optional[_random.Random] = None, name: Optional[str] = None) -> "Dataset":
        """A random subset of *count* images (without replacement)."""
        rng = rng if rng is not None else _random.Random(0)
        chosen = rng.sample(self.images, min(count, len(self.images)))
        return Dataset(name or f"{self.name}[{count}]", list(chosen))

    def mixed_with(
        self,
        other: "Dataset",
        fraction_other: float,
        rng: Optional[_random.Random] = None,
        name: Optional[str] = None,
    ) -> "Dataset":
        """Replace a random *fraction_other* of this set with images from *other*.

        Keeps the total size constant, which is how the paper's mixture
        experiments (Tables 6 and 10) are constructed.
        """
        rng = rng if rng is not None else _random.Random(0)
        total = len(self.images)
        replace_count = int(round(total * fraction_other))
        keep_count = total - replace_count
        kept = rng.sample(self.images, keep_count)
        added = [
            other.images[rng.randrange(len(other.images))] for _ in range(replace_count)
        ] if other.images else []
        mixture_name = name or f"{100 - int(100 * fraction_other)}/{int(100 * fraction_other)}"
        return Dataset(mixture_name, kept + added)

    @staticmethod
    def from_scenario(
        scenario: Scenario,
        count: int,
        name: str,
        seed: int = 0,
        renderer: Optional[RendererConfig] = None,
        max_iterations: int = 4000,
        strategy: str = "rejection",
        **strategy_options,
    ) -> "Dataset":
        """Sample *count* scenes from *scenario* and render them.

        Scene generation goes through :class:`repro.sampling.SamplerEngine`,
        so strategy setup (pruning, dependency analysis) is amortised over
        the whole dataset rather than re-done per scene.
        """
        from ..sampling import SamplerEngine

        engine = SamplerEngine(scenario, strategy=strategy, **strategy_options)
        rng = _random.Random(seed)
        images: List[LabeledImage] = []
        for _ in range(count):
            scene = engine.sample(max_iterations=max_iterations, rng=rng)
            images.append(render_scene(scene, renderer, rng))
        return Dataset(name, images)


@dataclass
class TrainingConfig:
    """Hyper-parameters of a training run (mirrors the paper's Sec. 6.1 setup)."""

    iterations: int = 400
    batch_size: int = 20
    seed: int = 0
    detector: DetectorConfig = field(default_factory=DetectorConfig)


def train_detector(dataset: Dataset, config: Optional[TrainingConfig] = None) -> CarDetector:
    """Train a fresh detector on *dataset*."""
    config = config if config is not None else TrainingConfig()
    detector = CarDetector(config.detector, seed=config.seed)
    detector.train(
        dataset.images,
        iterations=config.iterations,
        batch_size=config.batch_size,
        seed=config.seed,
    )
    return detector


def evaluate_detector(detector: CarDetector, dataset: Dataset) -> DetectionMetrics:
    """Precision/recall of *detector* on *dataset* (Sec. 6.1 metrics)."""
    pairs = []
    for image in dataset.images:
        predicted = detector.predict_boxes(image)
        truth = [gt.box for gt in image.boxes]
        pairs.append((predicted, truth))
    return precision_recall(pairs)


def evaluate_average_precision(detector: CarDetector, dataset: Dataset) -> float:
    """AP of *detector* on *dataset* (the metric of Table 9)."""
    per_image = []
    for image in dataset.images:
        scored = [(detection.score, detection.box) for detection in detector.predict(image)]
        truth = [gt.box for gt in image.boxes]
        per_image.append((scored, truth))
    return average_precision_from_images(per_image)


def train_and_evaluate(
    training_set: Dataset,
    test_sets: Sequence[Dataset],
    config: Optional[TrainingConfig] = None,
) -> Tuple[CarDetector, List[DetectionMetrics]]:
    """Convenience wrapper used by the experiment harnesses."""
    detector = train_detector(training_set, config)
    return detector, [evaluate_detector(detector, test_set) for test_set in test_sets]


def averaged_runs(
    run: "callable",
    repetitions: int = 3,
) -> List[List[DetectionMetrics]]:
    """Run a training/evaluation function several times (with different seeds).

    The paper averages over 8 training runs with different random mixtures;
    the experiment harnesses use a smaller default to stay laptop-friendly
    while still reporting mean ± spread.
    """
    return [run(seed) for seed in range(repetitions)]


__all__ = [
    "Dataset",
    "TrainingConfig",
    "train_detector",
    "evaluate_detector",
    "evaluate_average_precision",
    "train_and_evaluate",
    "averaged_runs",
]

"""Rendering Scenic scenes into labelled synthetic images.

For every car visible from the ego camera the renderer produces a ground
truth bounding box (with an occlusion-aware visibility fraction) and paints
the car into a small grayscale raster.  Image quality degrades with the
scene's ``weather`` and ``time`` parameters (darkness and precipitation add
noise and reduce contrast), which is how the "testing under different
conditions" experiment of Sec. 6.2 manifests in this reproduction.
"""

from __future__ import annotations

import math
import random as _random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.scene import Scene
from ..core.vectors import Vector
from ..worlds.gta.weather import time_difficulty, weather_difficulty
from .camera import Camera, CameraConfig

Box = Tuple[float, float, float, float]


@dataclass
class GroundTruthBox:
    """One labelled car in an image."""

    box: Box
    #: Fraction of the box's pixels not hidden by closer cars (1 = unoccluded).
    visibility: float
    #: Distance from the camera, metres.
    distance: float
    #: Luminance the car was painted with (depends on its colour).
    luminance: float
    #: Index of the source object within the scene.
    object_index: int

    @property
    def area(self) -> float:
        x1, y1, x2, y2 = self.box
        return max(0.0, x2 - x1) * max(0.0, y2 - y1)


@dataclass
class LabeledImage:
    """A rendered image with its ground-truth boxes (the training/test unit)."""

    pixels: np.ndarray
    boxes: List[GroundTruthBox]
    params: dict = field(default_factory=dict)
    difficulty: float = 0.0

    @property
    def shape(self) -> Tuple[int, int]:
        return self.pixels.shape  # (rows, columns)

    def copy(self) -> "LabeledImage":
        return LabeledImage(self.pixels.copy(), list(self.boxes), dict(self.params), self.difficulty)


@dataclass
class RendererConfig:
    """Knobs controlling rasterisation and degradation."""

    camera: CameraConfig = field(default_factory=CameraConfig)
    #: Base background luminance of the road.
    background_level: float = 0.35
    #: Base pixel-noise standard deviation in perfect conditions.
    base_noise: float = 0.02
    #: Additional noise at maximal difficulty (midnight blizzard).
    difficulty_noise: float = 0.18
    #: Contrast retained at maximal difficulty.
    min_contrast: float = 0.35
    #: Ground-truth boxes whose visible fraction falls below this are dropped
    #: (fully hidden cars cannot be labelled by the simulator either).
    min_visibility: float = 0.03


def scene_difficulty(scene: Scene) -> float:
    """Image-quality degradation in [0, 1] implied by the scene's parameters."""
    weather = scene.params.get("weather", "CLEAR")
    minutes = scene.params.get("time", 12 * 60.0)
    try:
        minutes = float(minutes)
    except (TypeError, ValueError):
        minutes = 12 * 60.0
    darkness = time_difficulty(minutes)
    weather_factor = weather_difficulty(str(weather))
    return min(1.0, 0.6 * darkness + 0.6 * weather_factor)


def _car_luminance(scenic_object) -> float:
    """Painted luminance of a car: dominated by its colour, clamped to a usable range."""
    color = scenic_object.properties.get("color", (0.5, 0.5, 0.5))
    try:
        red, green, blue = color
        luminance = 0.299 * float(red) + 0.587 * float(green) + 0.114 * float(blue)
    except (TypeError, ValueError):
        luminance = 0.5
    return 0.15 + 0.8 * luminance


def render_scene(
    scene: Scene,
    config: Optional[RendererConfig] = None,
    rng: Optional[_random.Random] = None,
) -> LabeledImage:
    """Render *scene* from the ego's viewpoint into a labelled image."""
    config = config if config is not None else RendererConfig()
    rng = rng if rng is not None else _random.Random()
    camera = Camera.from_ego(scene.ego, config.camera)
    height = config.camera.image_height
    width = config.camera.image_width
    difficulty = scene_difficulty(scene)
    contrast = 1.0 - (1.0 - config.min_contrast) * difficulty

    numpy_rng = np.random.default_rng(rng.getrandbits(32))
    pixels = np.full((height, width), config.background_level, dtype=np.float64)
    # Simple road texture: horizontal luminance gradient toward the horizon.
    rows = np.arange(height, dtype=np.float64).reshape(-1, 1)
    pixels += 0.06 * (rows / max(height - 1, 1) - 0.5)

    # Project every non-ego car, sorted far-to-near so nearer cars overwrite
    # (paint) farther ones, letting us measure occlusion per pixel.
    candidates = []
    for index, scenic_object in enumerate(scene.objects):
        if scenic_object is scene.ego:
            continue
        box = camera.project_object(scenic_object)
        if box is None:
            continue
        distance = camera.distance_to(Vector.from_any(scenic_object.position))
        candidates.append((distance, index, scenic_object, box))
    candidates.sort(key=lambda item: -item[0])

    owner = np.full((height, width), -1, dtype=np.int64)
    luminances = {}
    for distance, index, scenic_object, box in candidates:
        x1, y1, x2, y2 = (int(round(v)) for v in box)
        x1, x2 = max(0, x1), min(width, x2)
        y1, y2 = max(0, y1), min(height, y2)
        if x2 <= x1 or y2 <= y1:
            continue
        luminance = _car_luminance(scenic_object) * contrast
        luminances[index] = luminance
        pixels[y1:y2, x1:x2] = luminance
        # A darker strip along the bottom (shadow/wheels) adds structure the
        # detector's features can latch onto.
        shadow_top = max(y1, y2 - max(1, (y2 - y1) // 5))
        pixels[shadow_top:y2, x1:x2] = luminance * 0.5
        owner[y1:y2, x1:x2] = index

    ground_truth: List[GroundTruthBox] = []
    for distance, index, scenic_object, box in candidates:
        x1, y1, x2, y2 = (int(round(v)) for v in box)
        x1, x2 = max(0, x1), min(width, x2)
        y1, y2 = max(0, y1), min(height, y2)
        total = max(1, (x2 - x1) * (y2 - y1))
        visible = int(np.count_nonzero(owner[y1:y2, x1:x2] == index))
        visibility = visible / total
        if visibility < config.min_visibility:
            continue
        ground_truth.append(
            GroundTruthBox(
                box=box,
                visibility=visibility,
                distance=distance,
                luminance=luminances.get(index, 0.5),
                object_index=index,
            )
        )

    # Degradation: additive noise plus a global darkening with difficulty.
    noise_std = config.base_noise + config.difficulty_noise * difficulty
    pixels = pixels * (1.0 - 0.3 * difficulty)
    pixels = pixels + numpy_rng.normal(0.0, noise_std, size=pixels.shape)
    np.clip(pixels, 0.0, 1.0, out=pixels)

    return LabeledImage(pixels=pixels, boxes=ground_truth, params=dict(scene.params), difficulty=difficulty)


def render_scenes(
    scenes: Sequence[Scene],
    config: Optional[RendererConfig] = None,
    seed: Optional[int] = None,
) -> List[LabeledImage]:
    """Render a batch of scenes with a shared RNG (deterministic given *seed*)."""
    rng = _random.Random(seed)
    return [render_scene(scene, config, rng) for scene in scenes]


__all__ = [
    "GroundTruthBox",
    "LabeledImage",
    "RendererConfig",
    "render_scene",
    "render_scenes",
    "scene_difficulty",
]

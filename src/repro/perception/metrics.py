"""Detection metrics: IoU, precision, recall and average precision.

Definitions follow Sec. 6.1 and Appendix D of the paper exactly:

* a predicted box counts as a detection of a ground-truth box when their
  intersection-over-union exceeds 0.5;
* precision = tp / (tp + fp), recall = tp / (tp + fn), averaged over the
  images of a test set;
* AP is the area under the precision/recall curve obtained by sweeping the
  detection score threshold (the standard interpolated computation used by
  the mAP tool the authors cite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

Box = Tuple[float, float, float, float]

IOU_THRESHOLD = 0.5


def iou(box_a: Box, box_b: Box) -> float:
    """Intersection over union of two ``(x1, y1, x2, y2)`` boxes."""
    ax1, ay1, ax2, ay2 = box_a
    bx1, by1, bx2, by2 = box_b
    inter_x1 = max(ax1, bx1)
    inter_y1 = max(ay1, by1)
    inter_x2 = min(ax2, bx2)
    inter_y2 = min(ay2, by2)
    inter_area = max(0.0, inter_x2 - inter_x1) * max(0.0, inter_y2 - inter_y1)
    area_a = max(0.0, ax2 - ax1) * max(0.0, ay2 - ay1)
    area_b = max(0.0, bx2 - bx1) * max(0.0, by2 - by1)
    union = area_a + area_b - inter_area
    if union <= 0:
        return 0.0
    return inter_area / union


def match_detections(
    predicted: Sequence[Box],
    ground_truth: Sequence[Box],
    threshold: float = IOU_THRESHOLD,
) -> Tuple[int, int, int]:
    """Greedy matching of predictions to ground truth.

    Predictions are matched in the given order (callers sort by descending
    score); each ground-truth box may be matched at most once.  Returns
    ``(true_positives, false_positives, false_negatives)``.
    """
    matched = [False] * len(ground_truth)
    true_positives = 0
    false_positives = 0
    for prediction in predicted:
        best_index = -1
        best_iou = threshold
        for index, truth in enumerate(ground_truth):
            if matched[index]:
                continue
            overlap = iou(prediction, truth)
            if overlap >= best_iou:
                best_iou = overlap
                best_index = index
        if best_index >= 0:
            matched[best_index] = True
            true_positives += 1
        else:
            false_positives += 1
    false_negatives = matched.count(False)
    return true_positives, false_positives, false_negatives


@dataclass
class DetectionMetrics:
    """Aggregated precision/recall over a set of images."""

    precision: float
    recall: float
    true_positives: int
    false_positives: int
    false_negatives: int
    images: int

    def as_percentages(self) -> Tuple[float, float]:
        return (100.0 * self.precision, 100.0 * self.recall)

    def __str__(self) -> str:
        return (
            f"precision={100 * self.precision:.1f}% recall={100 * self.recall:.1f}% "
            f"(tp={self.true_positives}, fp={self.false_positives}, fn={self.false_negatives}, "
            f"images={self.images})"
        )


def precision_recall(
    per_image: Iterable[Tuple[Sequence[Box], Sequence[Box]]],
    threshold: float = IOU_THRESHOLD,
) -> DetectionMetrics:
    """Precision/recall over ``(predicted boxes, ground-truth boxes)`` pairs.

    Following the paper we average the per-image precision and recall rather
    than pooling counts, so each image contributes equally regardless of how
    many cars it contains.
    """
    precisions: List[float] = []
    recalls: List[float] = []
    total_tp = total_fp = total_fn = 0
    image_count = 0
    for predicted, truth in per_image:
        image_count += 1
        tp, fp, fn = match_detections(predicted, truth, threshold)
        total_tp += tp
        total_fp += fp
        total_fn += fn
        if tp + fp > 0:
            precisions.append(tp / (tp + fp))
        elif truth:
            precisions.append(0.0)
        else:
            precisions.append(1.0)
        if tp + fn > 0:
            recalls.append(tp / (tp + fn))
        else:
            recalls.append(1.0)
    if image_count == 0:
        return DetectionMetrics(0.0, 0.0, 0, 0, 0, 0)
    return DetectionMetrics(
        precision=sum(precisions) / image_count,
        recall=sum(recalls) / image_count,
        true_positives=total_tp,
        false_positives=total_fp,
        false_negatives=total_fn,
        images=image_count,
    )


def average_precision_from_images(
    per_image: Sequence[Tuple[Sequence[Tuple[float, Box]], Sequence[Box]]],
    threshold: float = IOU_THRESHOLD,
) -> float:
    """AP over ``(scored predictions, ground-truth boxes)`` pairs.

    Each scored prediction is ``(score, box)``.  Detections across the whole
    set are sorted by score; precision is interpolated to be monotonically
    decreasing and integrated over recall (the computation used by [4]).
    """
    labelled: List[Tuple[float, bool]] = []
    total_ground_truth = 0
    for predictions, truth in per_image:
        total_ground_truth += len(truth)
        matched = [False] * len(truth)
        for score, box in sorted(predictions, key=lambda item: -item[0]):
            best_index = -1
            best_iou = threshold
            for index, truth_box in enumerate(truth):
                if matched[index]:
                    continue
                overlap = iou(box, truth_box)
                if overlap >= best_iou:
                    best_iou = overlap
                    best_index = index
            if best_index >= 0:
                matched[best_index] = True
                labelled.append((score, True))
            else:
                labelled.append((score, False))
    if total_ground_truth == 0:
        return 0.0
    labelled.sort(key=lambda item: -item[0])
    true_positives = 0
    false_positives = 0
    precisions: List[float] = []
    recalls: List[float] = []
    for _score, is_true in labelled:
        if is_true:
            true_positives += 1
        else:
            false_positives += 1
        precisions.append(true_positives / (true_positives + false_positives))
        recalls.append(true_positives / total_ground_truth)
    # Make precision monotonically decreasing, then integrate over recall.
    for index in range(len(precisions) - 2, -1, -1):
        precisions[index] = max(precisions[index], precisions[index + 1])
    average = 0.0
    previous_recall = 0.0
    for precision, recall in zip(precisions, recalls):
        average += precision * (recall - previous_recall)
        previous_recall = recall
    return average


#: Convenience alias: the AP computation used throughout the experiments.
average_precision = average_precision_from_images


__all__ = [
    "iou",
    "match_detections",
    "precision_recall",
    "average_precision",
    "average_precision_from_images",
    "DetectionMetrics",
    "IOU_THRESHOLD",
]

"""The perception substrate: synthetic rendering + car detection.

The paper's case study renders Scenic scenes in GTA V and trains/evaluates
squeezeDet, a convolutional object detector, on the resulting images.
Neither is available here, so this package provides the closest synthetic
equivalent that exercises the same pipeline:

* :mod:`camera` / :mod:`renderer` — an analytic pinhole camera that projects
  each scene's cars into image-plane bounding boxes (with occlusion) and
  rasterises a small grayscale image whose quality degrades with bad weather
  and darkness;
* :mod:`detector` — a trainable car detector (blob proposals + logistic
  regression scoring + a learned occlusion splitter) implemented in NumPy;
* :mod:`metrics` — IoU, precision, recall and average precision exactly as
  defined in Sec. 6.1 / Appendix D;
* :mod:`training` and :mod:`datasets` — dataset containers, training loops
  and scene-to-image conversion;
* :mod:`augmentation` — the classical image-augmentation baseline of
  Table 8.

See DESIGN.md for why this substitution preserves the behaviour the
experiments measure.
"""

from .camera import Camera, CameraConfig
from .renderer import LabeledImage, GroundTruthBox, render_scene, RendererConfig
from .metrics import (
    iou,
    match_detections,
    precision_recall,
    average_precision,
    DetectionMetrics,
)
from .detector import CarDetector, DetectorConfig, Detection
from .training import Dataset, train_detector, evaluate_detector, TrainingConfig
from .augmentation import augment_dataset, classical_augmentations

__all__ = [
    "Camera",
    "CameraConfig",
    "LabeledImage",
    "GroundTruthBox",
    "render_scene",
    "RendererConfig",
    "iou",
    "match_detections",
    "precision_recall",
    "average_precision",
    "DetectionMetrics",
    "CarDetector",
    "DetectorConfig",
    "Detection",
    "Dataset",
    "train_detector",
    "evaluate_detector",
    "TrainingConfig",
    "augment_dataset",
    "classical_augmentations",
]

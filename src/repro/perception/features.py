"""Feature extraction for the car detector.

The detector scores *proposals* (candidate boxes found by blob detection)
with a logistic-regression classifier.  The features below describe a
proposal's shape, contrast with its surroundings, and the internal structure
of its column-intensity profile, which is what lets the learned occlusion
splitter tell one car from two partially overlapping ones.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

Box = Tuple[float, float, float, float]

#: Number of features produced by :func:`proposal_features`.
FEATURE_COUNT = 12


def _box_slice(pixels: np.ndarray, box: Box) -> np.ndarray:
    height, width = pixels.shape
    x1, y1, x2, y2 = box
    x1 = int(max(0, min(width - 1, round(x1))))
    x2 = int(max(x1 + 1, min(width, round(x2))))
    y1 = int(max(0, min(height - 1, round(y1))))
    y2 = int(max(y1 + 1, min(height, round(y2))))
    return pixels[y1:y2, x1:x2]


def column_profile(pixels: np.ndarray, box: Box) -> np.ndarray:
    """Mean intensity of each pixel column inside the box."""
    patch = _box_slice(pixels, box)
    if patch.size == 0:
        return np.zeros(1)
    return patch.mean(axis=0)


def profile_valley_depth(profile: np.ndarray) -> float:
    """How pronounced the deepest interior valley of the profile is.

    Two adjacent cars produce a bright-dark-bright column profile (the gap or
    the occlusion boundary is darker); a single car's profile is flat.  The
    returned value is the drop from the surrounding peaks to the deepest
    interior minimum, normalised by the profile's dynamic range.
    """
    if profile.size < 5:
        return 0.0
    interior = profile[1:-1]
    valley_index = int(np.argmin(interior)) + 1
    left_peak = float(profile[:valley_index].max())
    right_peak = float(profile[valley_index:].max())
    valley = float(profile[valley_index])
    reference = max(left_peak, right_peak) - min(float(profile.min()), valley)
    if reference <= 1e-9:
        return 0.0
    depth = min(left_peak, right_peak) - valley
    return max(0.0, depth / reference)


def profile_split_column(profile: np.ndarray) -> int:
    """Index of the deepest interior valley (where a split would be made)."""
    if profile.size < 3:
        return profile.size // 2
    interior = profile[1:-1]
    return int(np.argmin(interior)) + 1


def proposal_features(pixels: np.ndarray, box: Box, background_level: float = 0.35) -> np.ndarray:
    """The feature vector for one proposal box."""
    height, width = pixels.shape
    patch = _box_slice(pixels, box)
    if patch.size == 0:
        return np.zeros(FEATURE_COUNT)
    x1, y1, x2, y2 = box
    box_width = max(1.0, x2 - x1)
    box_height = max(1.0, y2 - y1)
    aspect = box_width / box_height
    mean_intensity = float(patch.mean())
    std_intensity = float(patch.std())
    contrast = mean_intensity - background_level

    profile = patch.mean(axis=0)
    valley = profile_valley_depth(profile)
    row_profile = patch.mean(axis=1)
    vertical_gradient = float(row_profile[-1] - row_profile[0]) if row_profile.size > 1 else 0.0

    # Context contrast: compare against a one-box-wide border region.
    border = _box_slice(
        pixels,
        (x1 - box_width * 0.3, y1 - box_height * 0.3, x2 + box_width * 0.3, y2 + box_height * 0.3),
    )
    border_mean = float(border.mean()) if border.size else background_level
    context_contrast = mean_intensity - border_mean

    return np.array(
        [
            1.0,                                  # bias
            box_width / width,                    # relative width
            box_height / height,                  # relative height
            aspect / 4.0,                         # aspect ratio (cars are wide)
            (box_width * box_height) / (width * height),  # relative area
            mean_intensity,
            std_intensity,
            contrast,
            context_contrast,
            valley,                               # occlusion/two-car evidence
            vertical_gradient,                    # shadow at the bottom
            (y2 / height),                        # vertical position (cars sit low)
        ],
        dtype=np.float64,
    )


__all__ = [
    "FEATURE_COUNT",
    "proposal_features",
    "column_profile",
    "profile_valley_depth",
    "profile_split_column",
]

"""Direct synthesis: constructive sampling from pruned feasible regions.

The paper makes scene improvisation tractable by *pruning* the rejection
loop (Sec. 5.2); this subsystem goes one step further and turns the pruned
feasible region into a generator.  A :class:`DirectPlan` bundles, per
scenario:

* **position proposals** (:mod:`.region_sampler`) — each object's pruned
  position region triangulated into an O(1) area-weighted
  :class:`~repro.geometry.triangulation.TriangleFan`, drawn from directly
  and pre-seeded into the candidate's ``Sample`` memo;
* **conditional deviation draws** (:mod:`.conditional`) — heading
  deviations truncated per candidate to the analyzer's wrap-safe
  ``CircularInterval`` arcs instead of rejecting on them;
* **importance accounting** (:mod:`.importance`) — online acceptance
  estimates for the residual constraints that still run as rejection
  tests, carried as ``scene.importance_weight`` so downstream prior-mass
  estimates stay unbiased.

Every proposal is a sound *over-approximation* of the feasible set, and
every requirement is still re-checked on the concrete candidate, so the
sampled distribution is exactly the requirement-conditioned prior — the
same semantics as plain rejection, at a fraction of the candidate count
(the statistical-equivalence oracle E in :mod:`repro.fuzz.oracles` checks
precisely this).  The ``direct`` strategy in
:mod:`repro.sampling.strategies` is the engine-facing wrapper; see
``docs/direct-sampling.md`` for the full construction.
"""

from __future__ import annotations

import random as _random
from typing import List, Optional

from ..analysis.bounds import PruneBounds
from ..core.distributions import Sample
from ..core.pruning import PruningReport, bounds_for_scenario
from ..core.scenario import GenerationStats, Scenario
from .conditional import DeviationPlan, build_deviation_plans
from .importance import ImportanceTracker, RESIDUAL_CAUSES
from .region_sampler import (
    DEFAULT_PROPOSAL_ATTEMPTS,
    PositionPlan,
    build_position_plans,
)


class DirectPlan:
    """Everything the ``direct`` strategy needs to seed one candidate.

    Built once per bound scenario (after the pruning pass rewrote the
    sampling regions); :meth:`seed` then runs per candidate in O(plans)
    with O(1) work per position draw.
    """

    def __init__(
        self,
        position_plans: List[PositionPlan],
        deviation_plans: List[DeviationPlan],
        tracker: ImportanceTracker,
        max_proposal_attempts: int = DEFAULT_PROPOSAL_ATTEMPTS,
    ):
        self.position_plans = position_plans
        self.deviation_plans = deviation_plans
        self.tracker = tracker
        self.max_proposal_attempts = max_proposal_attempts

    @property
    def is_constructive(self) -> bool:
        """Whether any draw is constructive (else the plan is a no-op)."""
        return bool(self.position_plans or self.deviation_plans)

    def seed(self, sample: Sample, rng: _random.Random, stats: GenerationStats) -> None:
        """Pre-seed one candidate's memo table with constructive draws.

        Positions first (deviation truncation reads the seeded positions),
        in object order — the fixed order makes the strategy's RNG stream
        deterministic per seed, which the golden corpus pins.
        """
        for plan in self.position_plans:
            plan.seed(sample, rng, stats, self.tracker, self.max_proposal_attempts)
        for plan in self.deviation_plans:
            plan.seed(sample, rng)

    def describe(self) -> dict:
        return {
            "position_plans": len(self.position_plans),
            "workspace_fans": sum(
                1 for plan in self.position_plans if plan.membership_region is not None
            ),
            "deviation_plans": len(self.deviation_plans),
            "constructive_mass": self.tracker.constructive_mass,
        }


def build_plan(
    scenario: Scenario,
    bounds: Optional[PruneBounds] = None,
    report: Optional[PruningReport] = None,
    max_proposal_attempts: int = DEFAULT_PROPOSAL_ATTEMPTS,
) -> DirectPlan:
    """Build the :class:`DirectPlan` for a (pruned) scenario.

    *bounds* default to the compiled artifact's static-analysis bounds;
    *report* is the pruning pass's report, whose area shrink factor seeds
    the statically known part of the constructive mass.
    """
    if bounds is None:
        bounds = bounds_for_scenario(scenario)
    position_plans = build_position_plans(scenario)
    deviation_plans = build_deviation_plans(scenario, bounds)
    constructive_mass = 1.0
    if report is not None:
        constructive_mass *= min(1.0, report.area_ratio)
    for plan in position_plans:
        constructive_mass *= min(1.0, plan.mass_ratio)
    tracker = ImportanceTracker(constructive_mass=constructive_mass)
    return DirectPlan(
        position_plans,
        deviation_plans,
        tracker,
        max_proposal_attempts=max_proposal_attempts,
    )


__all__ = [
    "DEFAULT_PROPOSAL_ATTEMPTS",
    "RESIDUAL_CAUSES",
    "DirectPlan",
    "DeviationPlan",
    "ImportanceTracker",
    "PositionPlan",
    "build_deviation_plans",
    "build_plan",
    "build_position_plans",
]

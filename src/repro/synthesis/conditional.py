"""Conditional heading/deviation draws from the analyzer's arcs.

Position proposals (:mod:`.region_sampler`) kill the containment mass;
what is left of the orientation mass is the relative-heading requirements
the static analyzer already summarised as wrap-safe
:class:`~repro.analysis.intervals.CircularInterval` arcs on the
:class:`~repro.analysis.bounds.PruneBounds`.  Instead of drawing a
deviation from its full interval and rejecting the candidate when the
resulting relative heading falls outside an arc, a :class:`DeviationPlan`
*truncates* the deviation's interval to the arc-admissible segments and
draws uniformly from those.

The truncation is computed per candidate, after the positions are seeded:
the admissible deviation depends on the two objects' field headings at
their sampled positions.  Because every arc is a sound over-approximation
of the hard requirement (widened by both objects' deviation slack) and the
requirement itself is still re-checked by ``check_user_requirements``, the
truncated draw is exact conditioning — restriction of a uniform prior to a
superset of its feasible subset, then the unchanged rejection test.  An
*empty* truncation is a proof that no deviation can satisfy the
requirement at these positions (empty over-approximation ⇒ empty feasible
set), so the candidate is rejected immediately instead of wasting a draw.

Node sharing is resolved through :func:`repro.sampling.dependency.closure_nodes`:
a deviation node referenced by more than one object keeps its prior draw
(truncating it against one object's arcs would be unsound for the other).
"""

from __future__ import annotations

import math
import random as _random
from typing import Any, List, Optional, Sequence, Tuple

from ..analysis.bounds import PruneBounds
from ..core.distributions import Range, Sample, needs_sampling
from ..core.errors import InfeasibleScenarioError, RejectSample
from ..core.regions import PointInRegionDistribution
from ..core.scenario import Scenario
from ..core.utils import normalize_angle
from ..sampling.dependency import closure_nodes

_TWO_PI = 2.0 * math.pi

#: Numeric slack added to every arc half-width so floating-point error can
#: never turn a sound over-approximation into an under-approximation.
_ARC_SLACK = 1e-9

Segment = Tuple[float, float]


def interval_segments_in_arc(
    low: float, high: float, center: float, half_width: float
) -> List[Segment]:
    """The sub-segments of ``[low, high]`` whose angle lies in an arc.

    The arc ``center ± half_width`` is circular (it may straddle ±π); the
    interval is a plain real interval (a deviation's support, which can
    exceed one turn).  Lifting the arc to the real line and intersecting
    each period's copy with the interval keeps the computation wrap-safe.
    """
    if high <= low:
        return []
    if half_width >= math.pi:
        return [(low, high)]
    if half_width < 0.0:
        return []
    first = math.floor((low - (center + half_width)) / _TWO_PI)
    last = math.ceil((high - (center - half_width)) / _TWO_PI)
    segments: List[Segment] = []
    for k in range(int(first), int(last) + 1):
        segment_low = max(low, center - half_width + k * _TWO_PI)
        segment_high = min(high, center + half_width + k * _TWO_PI)
        if segment_high > segment_low:
            segments.append((segment_low, segment_high))
    return segments


def intersect_segments_with_arc(
    segments: Sequence[Segment], center: float, half_width: float
) -> List[Segment]:
    """Intersect a segment list with one circular arc (both on the line)."""
    result: List[Segment] = []
    for low, high in segments:
        result.extend(interval_segments_in_arc(low, high, center, half_width))
    return result


def sample_from_segments(segments: Sequence[Segment], rng: _random.Random) -> float:
    """A uniform draw from a union of disjoint segments (one RNG call)."""
    total = sum(high - low for low, high in segments)
    offset = rng.random() * total
    for low, high in segments:
        span = high - low
        if offset <= span:
            return low + offset
        offset -= span
    low, high = segments[-1]
    return high


class _ArcSource:
    """One heading constraint resolved to runtime lookups."""

    __slots__ = ("partner_index", "partner_field", "partner_position", "center", "half_width")

    def __init__(self, partner_index, partner_field, partner_position, center, half_width):
        self.partner_index = partner_index
        self.partner_field = partner_field
        self.partner_position = partner_position  # node to look up, or a static point
        self.center = center
        self.half_width = half_width


class DeviationPlan:
    """Truncated draw of one object's ``roadDeviation``-style interval.

    Seeds the deviation :class:`~repro.core.distributions.Range` node with
    a uniform draw from the segments of its support admissible under every
    resolvable arc.  Arcs whose partner position is not yet concrete for
    this candidate contribute no truncation (sound — the requirement is
    still re-checked); an empty intersection rejects the candidate.
    """

    __slots__ = ("object_index", "node", "low", "high", "position_node", "field", "arcs")

    def __init__(self, object_index, node, low, high, position_node, field, arcs):
        self.object_index = object_index
        self.node = node
        self.low = low
        self.high = high
        self.position_node = position_node
        self.field = field
        self.arcs: List[_ArcSource] = arcs

    def seed(self, sample: Sample, rng: _random.Random) -> None:
        if sample.has_value_for(self.node):
            return
        if not sample.has_value_for(self.position_node):
            return  # position not constructively seeded: keep the prior draw
        position = sample.value_for(self.position_node)
        own_heading = self.field.value_at(position)
        segments: List[Segment] = [(self.low, self.high)]
        truncated = False
        for arc in self.arcs:
            partner_point = arc.partner_position
            if partner_point is None:
                continue
            if not isinstance(partner_point, (tuple, list)) and needs_sampling(partner_point):
                if not sample.has_value_for(partner_point):
                    continue
                partner_point = sample.value_for(partner_point)
            partner_heading = arc.partner_field.value_at(partner_point)
            # heading(partner) - heading(self) ∈ center ± half_width
            # ⇒ deviation(self) ∈ (heading(partner) - center - field(self)) ± half_width
            center = normalize_angle(partner_heading - arc.center - own_heading)
            segments = intersect_segments_with_arc(segments, center, arc.half_width)
            truncated = True
            if not segments:
                raise RejectSample(
                    f"object {self.object_index}: no deviation satisfies the "
                    f"relative-heading arcs at the sampled positions"
                )
        if not truncated:
            return
        sample.set_value_for(self.node, sample_from_segments(segments, rng))


def build_deviation_plans(
    scenario: Scenario, bounds: Optional[PruneBounds]
) -> List[DeviationPlan]:
    """Deviation plans for every field-aligned object the bounds constrain."""
    if bounds is None or not bounds.mapped:
        return []
    usage = _node_usage_counts(scenario)
    plans: List[DeviationPlan] = []
    for index, scenic_object in enumerate(scenario.objects):
        object_bounds = bounds.for_object(index)
        if object_bounds is None or not object_bounds.heading_constraints:
            continue
        node = scenic_object.properties.get("roadDeviation")
        if not isinstance(node, Range):
            continue
        if needs_sampling(node.low) or needs_sampling(node.high):
            continue
        if usage.get(id(node), 0) > 1:
            continue  # shared interval: truncating for one object is unsound
        field = _field_of(scenic_object)
        position_node = scenic_object.properties.get("position")
        if field is None or position_node is None:
            continue
        arcs: List[_ArcSource] = []
        for constraint in object_bounds.heading_constraints:
            if constraint.is_empty:
                raise InfeasibleScenarioError(
                    f"object {index}: statically empty heading constraint "
                    f"({constraint.source})"
                )
            partner = scenario.objects[constraint.partner]
            partner_field = _field_of(partner)
            if partner_field is None:
                continue
            partner_position = _position_source(partner)
            if partner_position is None:
                continue
            arcs.append(
                _ArcSource(
                    partner_index=constraint.partner,
                    partner_field=partner_field,
                    partner_position=partner_position,
                    # heading(partner) - heading(self) ∈ center ± half_width;
                    # the widening folds in both objects' deviation slack, so
                    # the arc stays a sound over-approximation of the hard
                    # requirement even with the partner's deviation unknown.
                    center=constraint.center,
                    half_width=constraint.half_width + constraint.deviation + _ARC_SLACK,
                )
            )
        if arcs:
            plans.append(
                DeviationPlan(
                    object_index=index,
                    node=node,
                    low=float(node.low),
                    high=float(node.high),
                    position_node=position_node,
                    field=field,
                    arcs=arcs,
                )
            )
    return plans


def _field_of(scenic_object: Any):
    """The orientation field a field-aligned object's heading follows."""
    position = scenic_object.properties.get("position")
    if not isinstance(position, PointInRegionDistribution):
        return None
    field = getattr(position.region, "orientation", None)
    if field is None or not hasattr(field, "value_at"):
        return None
    return field


def _position_source(scenic_object: Any):
    """A lookup for the partner's concrete position: a node or a static point."""
    position = scenic_object.properties.get("position")
    if position is None:
        return None
    if needs_sampling(position):
        return position  # a node: resolved from the sample memo per candidate
    try:
        return (float(position.x), float(position.y))
    except (AttributeError, TypeError):
        return None


def _node_usage_counts(scenario: Scenario) -> dict:
    """How many objects reference each distribution node (id-keyed)."""
    counts: dict = {}
    for scenic_object in scenario.objects:
        for node_id in closure_nodes(scenic_object):
            counts[node_id] = counts.get(node_id, 0) + 1
    return counts


__all__ = [
    "DeviationPlan",
    "build_deviation_plans",
    "intersect_segments_with_arc",
    "interval_segments_in_arc",
    "sample_from_segments",
]

"""Online acceptance estimation and importance weights for direct sampling.

The direct strategy (:mod:`repro.synthesis`) samples positions and
deviations *constructively* from sound over-approximations of the feasible
set and rejection-tests only the residual constraints (soft requirements,
cross-object visibility, user ``require`` lambdas, whatever geometry the
proposal over-covers).  Accepted scenes are therefore exact samples of the
requirement-conditioned distribution — restriction to a superset followed
by the unchanged rejection tests is ordinary sequential conditioning.

What *is* lost relative to plain rejection is the bookkeeping: the paper's
experiments (and this repo's benchmarks) read absolute acceptance
probabilities off the rejection loop — e.g. "what fraction of the prior
satisfies the requirements?".  The direct sampler never observes that
fraction directly, so this module reconstructs it online:

* each residual constraint class keeps a Laplace-smoothed pass-rate
  estimate (:class:`AcceptanceEstimator`);
* the constructive step contributes its statically known mass ratio
  (proposal area over prior area — the pruning report's shrink factor and
  the workspace-fan ratio);
* the product is carried on every accepted scene as
  ``scene.importance_weight`` — an online estimate of the probability that
  one *prior* draw would have been accepted.

Downstream estimators that need prior-mass quantities (acceptance-rate
comparisons across strategies, absolute requirement-satisfaction
probabilities) multiply by the weight; estimators of
requirement-conditioned expectations ignore it (accepted scenes are already
unbiased).  :class:`~repro.sampling.AggregateStats` rolls the weights up
per strategy for the service and CLI diagnostics.
"""

from __future__ import annotations

from typing import Dict, Optional

#: Residual constraint classes the direct sampler rejection-tests, in the
#: order they are checked per candidate.
RESIDUAL_CAUSES = ("proposal", "containment", "collision", "visibility", "user", "sampling")


class AcceptanceEstimator:
    """A Laplace-smoothed online estimate of one constraint's pass rate.

    The ``(passes + 1) / (attempts + 2)`` rule keeps the estimate in (0, 1)
    even before any data arrives, so products of estimates never collapse to
    0 or 1 on the first few candidates.
    """

    __slots__ = ("attempts", "passes")

    def __init__(self) -> None:
        self.attempts = 0
        self.passes = 0

    def record(self, passed: bool) -> None:
        self.attempts += 1
        if passed:
            self.passes += 1

    @property
    def estimate(self) -> float:
        return (self.passes + 1) / (self.attempts + 2)

    def as_dict(self) -> Dict[str, float]:
        return {"attempts": self.attempts, "passes": self.passes, "estimate": self.estimate}


class ImportanceTracker:
    """Per-strategy accumulator of constructive mass and residual pass rates.

    *constructive_mass* is the statically known part of the proposal's
    prior-mass ratio: the pruning pass's area shrink factor times each
    workspace-fan plan's area ratio.  The online part — membership tests of
    over-covering proposals (cause ``"proposal"``) and every residual
    rejection test — is recorded per candidate via :meth:`record`.
    """

    def __init__(self, constructive_mass: float = 1.0):
        self.constructive_mass = float(constructive_mass)
        self.estimators: Dict[str, AcceptanceEstimator] = {}

    def record(self, cause: str, passed: bool) -> None:
        estimator = self.estimators.get(cause)
        if estimator is None:
            estimator = self.estimators[cause] = AcceptanceEstimator()
        estimator.record(passed)

    def acceptance_estimate(self, cause: Optional[str] = None) -> float:
        """Estimated pass probability of one cause, or of all causes combined."""
        if cause is not None:
            estimator = self.estimators.get(cause)
            return estimator.estimate if estimator is not None else 1.0
        product = 1.0
        for estimator in self.estimators.values():
            product *= estimator.estimate
        return product

    def scene_weight(self) -> float:
        """The importance weight to stamp on an accepted scene.

        An online estimate of the probability that a single draw from the
        *unrestricted* prior would have passed every constraint — i.e. the
        plain-rejection acceptance rate the constructive sampler bypassed.
        """
        return self.constructive_mass * self.acceptance_estimate()

    def summary(self) -> Dict[str, Dict[str, float]]:
        return {cause: estimator.as_dict() for cause, estimator in sorted(self.estimators.items())}


__all__ = ["AcceptanceEstimator", "ImportanceTracker", "RESIDUAL_CAUSES"]

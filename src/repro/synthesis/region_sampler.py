"""Constructive position proposals: triangle fans over feasible regions.

This is the generative half of the pruning story.  Pruning (Sec. 5.2)
shrinks each object's sampling region to a sound over-approximation of its
feasible positions; the rejection-based strategies then still *test* every
candidate against that region.  Here the pruned region itself becomes the
proposal distribution: each :class:`PositionPlan` triangulates the region
once (:class:`~repro.geometry.triangulation.TriangleFan`, an alias table —
O(1) per draw) and seeds the candidate's
:class:`~repro.core.distributions.Sample` memo with a uniform point of it,
so the containment mass that rejection sampling spends thousands of
candidates rediscovering is simply never proposed against.

Soundness invariant: a proposal set must always be a *superset* of the
object's feasible positions (restriction of the prior to a superset,
followed by the unchanged rejection checks, is exact conditioning; an
under-approximation would bias the distribution).  Concretely:

* a pruned :class:`~repro.core.regions.PolygonalRegion` is sampled exactly
  (the fan covers precisely the region the prior would sample);
* a non-polygonal position region (circle, sector, rectangle) combined
  with a bounded workspace uses the workspace's polygons — eroded by the
  object's static ``min_radius`` exactly when pruning itself would
  (single convex piece) — as the proposal, with membership in the original
  region rejection-tested per draw.  The proposal is only adopted when it
  is *smaller* than the region, so the inner acceptance rate
  ``|E ∩ R| / |E|`` beats the prior's ``|E ∩ R| / |R|``.

Fans are cached on the scenario's :class:`CompiledScenario` artifact
(keyed by object index and region shape) alongside the ``PruneBounds``, so
service workers binding the ``direct`` strategy per shard triangulate each
program once per process, not once per request.
"""

from __future__ import annotations

import random as _random
from typing import Any, List, Optional, Sequence, Tuple

from ..core.distributions import Sample, needs_sampling
from ..core.errors import InfeasibleScenarioError, RejectSample
from ..core.pruning import _mutation_enabled, _polygons_of_region, _static_min_radius
from ..core.regions import PointInRegionDistribution, PolygonalRegion, Region
from ..core.scenario import GenerationStats, Scenario
from ..geometry.morphology import erode_polygon
from ..geometry.polygon import Polygon
from ..geometry.triangulation import TriangleFan

#: Inner membership redraws allowed per candidate before the whole
#: candidate counts as a sampling rejection (restarting the candidate is
#: distribution-preserving, so the cap only bounds latency, not bias).
DEFAULT_PROPOSAL_ATTEMPTS = 128


class PositionPlan:
    """One object's constructive position draw.

    ``membership_region`` is ``None`` when the fan covers the prior region
    exactly (pruned polygonal regions); otherwise each fan draw is
    rejection-tested against it (workspace-fan proposals for non-polygonal
    regions), with the pass rate feeding the importance tracker's
    ``"proposal"`` estimator.
    """

    __slots__ = ("object_index", "node", "fan", "membership_region", "mass_ratio", "label")

    def __init__(
        self,
        object_index: int,
        node: PointInRegionDistribution,
        fan: TriangleFan,
        membership_region: Optional[Region] = None,
        mass_ratio: float = 1.0,
        label: str = "",
    ):
        self.object_index = object_index
        self.node = node
        self.fan = fan
        self.membership_region = membership_region
        self.mass_ratio = mass_ratio
        self.label = label

    def seed(
        self,
        sample: Sample,
        rng: _random.Random,
        stats: GenerationStats,
        tracker: Any,
        max_attempts: int = DEFAULT_PROPOSAL_ATTEMPTS,
    ) -> None:
        """Draw a position from the fan and pre-seed the sample memo."""
        if sample.has_value_for(self.node):
            return  # node shared with an already-seeded object
        if self.membership_region is None:
            stats.candidates_drawn += 1
            sample.set_value_for(self.node, self.fan.sample(rng))
            return
        for _ in range(max_attempts):
            stats.candidates_drawn += 1
            point = self.fan.sample(rng)
            if self.membership_region.contains_point(point):
                tracker.record("proposal", True)
                sample.set_value_for(self.node, point)
                return
            tracker.record("proposal", False)
        raise RejectSample(
            f"constructive proposal for object {self.object_index} exhausted "
            f"{max_attempts} membership attempts ({self.label})"
        )


def build_position_plans(scenario: Scenario) -> List[PositionPlan]:
    """Constructive position plans for every object that supports one.

    Objects are skipped — they keep sampling their prior — when their
    position is not a region draw, the region is itself random, mutation
    noise may displace them afterwards (the pruned region would not be a
    sound proposal for the post-noise position), or no proposal smaller
    than the prior region exists.
    """
    plans: List[PositionPlan] = []
    cache = _artifact_fan_cache(scenario)
    seen_nodes: dict = {}
    for index, scenic_object in enumerate(scenario.objects):
        if _mutation_enabled(scenic_object):
            continue
        node = scenic_object.properties.get("position")
        if not isinstance(node, PointInRegionDistribution):
            continue
        region = node.region
        if needs_sampling(region) or not isinstance(region, Region):
            continue
        if id(node) in seen_nodes:
            continue  # aliased position: the first plan seeds it for everyone
        plan = _plan_for_region(scenario, scenic_object, index, node, region, cache)
        if plan is not None:
            seen_nodes[id(node)] = plan
            plans.append(plan)
    return plans


def _plan_for_region(
    scenario: Scenario,
    scenic_object: Any,
    index: int,
    node: PointInRegionDistribution,
    region: Region,
    cache: Optional[dict],
) -> Optional[PositionPlan]:
    if isinstance(region, PolygonalRegion):
        fan = _fan_for_polygons(region.polygons, cache, ("region", index))
        if fan is None:
            raise InfeasibleScenarioError(
                f"object {index}: pruned position region has zero area"
            )
        return PositionPlan(index, node, fan, label=f"polygonal region of object {index}")

    try:
        region_area = region.area()
    except (TypeError, NotImplementedError):
        return None
    if region_area <= 0.0:
        # Measure-zero but non-empty regions (polylines, points) are fine
        # for the prior — there is just no area-based proposal to build.
        return None
    if not _region_supports_membership(region):
        return None
    workspace_polygons = _workspace_proposal_polygons(
        scenario, index, _static_min_radius(scenic_object)
    )
    if workspace_polygons is None:
        return None
    proposal_area = sum(polygon.area for polygon in workspace_polygons)
    if proposal_area <= 0.0:
        raise InfeasibleScenarioError(
            f"object {index}: workspace leaves no room for the object"
        )
    if proposal_area >= region_area:
        return None  # the prior region is already the tighter proposal
    fan = _fan_for_polygons(
        workspace_polygons, cache, ("workspace", index, round(proposal_area, 9))
    )
    if fan is None:
        return None
    return PositionPlan(
        index,
        node,
        fan,
        membership_region=region,
        mass_ratio=proposal_area / region_area,
        label=f"workspace fan for object {index}",
    )


def _region_supports_membership(region: Region) -> bool:
    try:
        region.contains_point((0.0, 0.0))
    except (TypeError, NotImplementedError):
        return False
    return True


def _workspace_proposal_polygons(
    scenario: Scenario, index: int, min_radius: float
) -> Optional[List[Polygon]]:
    """A sound polygonal superset of the object's feasible centre positions.

    Mirrors ``prune_by_containment``'s erosion rule: with a single convex
    workspace piece the centre of a contained object of inradius
    ``min_radius`` lies in the piece's erosion (exact); with several pieces
    erosion per piece would wrongly exclude straddling centres, so the
    pieces are used whole (the centre still lies in their union).
    """
    workspace = scenario.workspace
    if workspace is None or workspace.is_unbounded:
        return None
    pieces = _polygons_of_region(workspace.region)
    if not pieces:
        return None
    if len(pieces) == 1 and min_radius > 0.0:
        piece = pieces[0]
        eroded = erode_polygon(piece, min_radius)
        if eroded is None:
            if piece.is_convex():
                raise InfeasibleScenarioError(
                    f"object {index}: workspace is too small for the object "
                    f"(erosion by min_radius {min_radius:g} is empty)"
                )
            return [piece]
        if eroded.is_convex():
            return [eroded]
        return [piece]
    return list(pieces)


def _fan_for_polygons(
    polygons: Sequence[Polygon], cache: Optional[dict], key_prefix: Tuple
) -> Optional[TriangleFan]:
    """Build (or fetch from the artifact cache) a fan over *polygons*.

    Returns ``None`` for zero total area — callers decide whether that is
    infeasible (a pruned region) or merely unhelpful (a proposal).
    """
    key = None
    if cache is not None:
        key = key_prefix + (
            len(polygons),
            round(sum(polygon.area for polygon in polygons), 12),
        )
        cached = cache.get(key)
        if cached is not None:
            return cached
    try:
        fan = TriangleFan.of_polygons(polygons)
    except ValueError:
        return None
    if cache is not None:
        cache[key] = fan
    return fan


def _artifact_fan_cache(scenario: Scenario) -> Optional[dict]:
    """The compiled artifact's fan cache, when the scenario has one.

    Pruning rewrites regions deterministically per artifact, so fans keyed
    by object index and region shape are shared safely across the fresh
    scenario copies each engine binds (triangles are immutable tuples).
    """
    artifact = getattr(scenario, "compiled_artifact", None)
    if artifact is None:
        return None
    cache = getattr(artifact, "_synthesis_cache", None)
    if cache is None:
        cache = {}
        try:
            artifact._synthesis_cache = cache
        except AttributeError:
            return None
    return cache


__all__ = [
    "DEFAULT_PROPOSAL_ATTEMPTS",
    "PositionPlan",
    "build_position_plans",
]

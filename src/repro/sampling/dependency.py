"""Static dependency analysis over a scenario's random-value DAG.

A scenario holds a DAG of :class:`~repro.core.distributions.Distribution`
nodes (plus :class:`~repro.core.objects.Constructible` instances whose
properties reference them).  Two objects are *dependent* when their property
closures share a random node — e.g. two cars positioned relative to the same
random spot, or a platoon whose cars share one model distribution.  Objects
whose closures are disjoint form independent sub-trees of the joint sample:
they can be drawn (and locally re-drawn after a rejection) separately
without changing the induced distribution.

:class:`DependencyGraph` computes this partition once per scenario so the
batched strategies can

* cache the analysis across thousands of candidate scenes,
* identify *static* objects (no randomness at all), and
* clear exactly one group's memoised values from a
  :class:`~repro.core.distributions.Sample` to partially resample it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Set

from ..core.distributions import Distribution, Sample, needs_sampling
from ..core.objects import Constructible, Object
from ..core.scenario import Scenario


def _closure_of(value: Any, nodes: Dict[int, Any], visited: Set[int]) -> None:
    """Collect every Distribution / Constructible reachable from *value*."""
    key = id(value)
    if key in visited:
        return
    visited.add(key)
    if isinstance(value, Distribution):
        nodes[key] = value
        for dependency in value.dependencies():
            _closure_of(dependency, nodes, visited)
    elif isinstance(value, Constructible):
        nodes[key] = value
        for prop_value in value.properties.values():
            _closure_of(prop_value, nodes, visited)
    elif isinstance(value, (tuple, list)):
        for item in value:
            _closure_of(item, nodes, visited)
    elif isinstance(value, dict):
        for item in value.values():
            _closure_of(item, nodes, visited)


def closure_nodes(value: Any) -> Dict[int, Any]:
    """The id-keyed closure of Distribution/Constructible nodes under *value*."""
    nodes: Dict[int, Any] = {}
    _closure_of(value, nodes, set())
    return nodes


def _may_mutate(constructible: Constructible) -> bool:
    """True when concretising *constructible* may consume mutation noise."""
    scale = constructible.properties.get("mutationScale", 0.0)
    if needs_sampling(scale):
        return True
    try:
        return float(scale) != 0.0
    except (TypeError, ValueError):
        return True


def _random_ids(nodes: Dict[int, Any]) -> Set[int]:
    """Node ids whose concretisation draws from the RNG.

    Distributions always do; a Constructible does when mutation noise is
    enabled for it (its concrete copy then differs per draw, so anything
    sharing it is coupled to that noise).
    """
    random_ids: Set[int] = set()
    for key, node in nodes.items():
        if isinstance(node, Distribution):
            random_ids.add(key)
        elif isinstance(node, Constructible) and _may_mutate(node):
            random_ids.add(key)
    return random_ids


@dataclass
class ObjectGroup:
    """A maximal set of scenario objects coupled through shared random nodes."""

    objects: List[Object]
    nodes: Dict[int, Any] = field(default_factory=dict)
    random_ids: Set[int] = field(default_factory=set)

    @property
    def is_static(self) -> bool:
        """No randomness at all: the group concretises identically every draw."""
        return not self.random_ids

    def forget_in(self, sample: Sample) -> None:
        """Erase this group's memoised values so the next draw resamples it."""
        for node in self.nodes.values():
            sample.forget_value_for(node)

    def __repr__(self) -> str:
        return f"ObjectGroup({len(self.objects)} objects, {len(self.random_ids)} random nodes)"


class DependencyGraph:
    """The independence structure of a scenario's joint sample."""

    def __init__(self, scenario: Scenario):
        self.scenario = scenario
        self._object_closures: Dict[int, Dict[int, Any]] = {}
        self._object_random_ids: Dict[int, Set[int]] = {}
        for scenic_object in scenario.objects:
            closure = closure_nodes(scenic_object)
            self._object_closures[id(scenic_object)] = closure
            self._object_random_ids[id(scenic_object)] = _random_ids(closure)
        self.groups: List[ObjectGroup] = self._partition(scenario.objects)
        self._group_by_object: Dict[int, ObjectGroup] = {
            id(member): group for group in self.groups for member in group.objects
        }

    # -- construction -----------------------------------------------------------

    def _partition(self, objects: Sequence[Object]) -> List[ObjectGroup]:
        """Union-find over objects: sharing any random node merges two groups."""
        parent = list(range(len(objects)))

        def find(index: int) -> int:
            while parent[index] != index:
                parent[index] = parent[parent[index]]
                index = parent[index]
            return index

        def union(first: int, second: int) -> None:
            root_first, root_second = find(first), find(second)
            if root_first != root_second:
                parent[root_second] = root_first

        owner_by_node: Dict[int, int] = {}
        for index, scenic_object in enumerate(objects):
            for node_id in self._object_random_ids[id(scenic_object)]:
                if node_id in owner_by_node:
                    union(owner_by_node[node_id], index)
                else:
                    owner_by_node[node_id] = index

        grouped: Dict[int, ObjectGroup] = {}
        for index, scenic_object in enumerate(objects):
            root = find(index)
            group = grouped.setdefault(root, ObjectGroup(objects=[]))
            group.objects.append(scenic_object)
            group.nodes.update(self._object_closures[id(scenic_object)])
            group.random_ids.update(self._object_random_ids[id(scenic_object)])
        # Preserve the scenario's object order group-by-group (first member wins).
        return sorted(grouped.values(), key=lambda g: objects.index(g.objects[0]))

    # -- queries ----------------------------------------------------------------

    def group_of(self, scenic_object: Object) -> ObjectGroup:
        try:
            return self._group_by_object[id(scenic_object)]
        except KeyError:
            raise KeyError(f"{scenic_object!r} is not part of this scenario") from None

    def independent(self, first: Object, second: Object) -> bool:
        """True when the two objects share no random node (distinct groups)."""
        return self.group_of(first) is not self.group_of(second)

    @property
    def static_objects(self) -> List[Object]:
        return [obj for group in self.groups if group.is_static for obj in group.objects]

    def __repr__(self) -> str:
        sizes = [len(group.objects) for group in self.groups]
        return f"DependencyGraph({len(self.groups)} groups, sizes={sizes})"


__all__ = ["DependencyGraph", "ObjectGroup", "closure_nodes"]

"""Aggregated diagnostics for the sampling engine.

``GenerationStats`` (defined in :mod:`repro.core.scenario`) describes a
single scene draw.  The engine produces many scenes, possibly via different
strategies, so :class:`AggregateStats` rolls per-scene stats up into totals,
per-strategy breakdowns and acceptance rates.  Totals are accumulated as
running sums so a long-lived engine stays O(1) in memory; a bounded
per-scene history is kept for fine-grained diagnostics.  :class:`SceneBatch`
is the result type of batched sampling: it *is* a list of scenes (so
existing callers of ``Scenario.generate_batch`` keep working) but carries
the aggregated statistics of the whole batch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from ..core.scenario import GenerationStats

if TYPE_CHECKING:  # pragma: no cover
    from ..core.scene import Scene


_COUNTER_FIELDS = (
    "iterations",
    "rejections_containment",
    "rejections_collision",
    "rejections_visibility",
    "rejections_user",
    "rejections_sampling",
    "component_redraws",
    "candidates_drawn",
)


def merge_generation_stats(into: GenerationStats, other: GenerationStats) -> GenerationStats:
    """Add *other*'s counters (and elapsed time) into *into*, returning it."""
    for name in _COUNTER_FIELDS:
        setattr(into, name, getattr(into, name) + getattr(other, name, 0))
    into.elapsed_seconds += other.elapsed_seconds
    return into


class AggregateStats:
    """Roll-up of per-scene :class:`GenerationStats` across a sampling run.

    Totals (:meth:`combined`, :meth:`by_strategy`, the ``total_*``
    properties) are exact over every recorded draw.  :attr:`per_scene` keeps
    the first *history_limit* ``(strategy, stats)`` entries only, so a
    long-running engine does not grow without bound.
    """

    def __init__(self, history_limit: int = 10_000) -> None:
        self.history_limit = history_limit
        self.scenes = 0  # accepted scenes only
        self.draws = 0  # every recorded draw, including failed ones
        self.per_scene: List[Tuple[str, GenerationStats]] = []
        self._combined = GenerationStats()
        self._by_strategy: Dict[str, GenerationStats] = {}
        #: Sum / count of the importance weights the ``direct`` strategy
        #: stamps on accepted scenes (see :mod:`repro.synthesis.importance`),
        #: overall and per strategy.
        self.importance_weight_sum = 0.0
        self.importance_scenes = 0
        self._importance_by_strategy: Dict[str, Tuple[float, int]] = {}

    def record(
        self,
        stats: GenerationStats,
        strategy: str = "rejection",
        accepted: bool = True,
        importance_weight: float | None = None,
    ) -> None:
        """Fold one draw's stats in; *accepted* is False for a failed draw."""
        self.draws += 1
        if accepted:
            self.scenes += 1
        merge_generation_stats(self._combined, stats)
        merge_generation_stats(self._by_strategy.setdefault(strategy, GenerationStats()), stats)
        if accepted and importance_weight is not None:
            self.importance_weight_sum += importance_weight
            self.importance_scenes += 1
            weight_sum, count = self._importance_by_strategy.get(strategy, (0.0, 0))
            self._importance_by_strategy[strategy] = (weight_sum + importance_weight, count + 1)
        if len(self.per_scene) < self.history_limit:
            self.per_scene.append((strategy, stats))

    def merge_from(self, other: "AggregateStats") -> None:
        """Fold another roll-up (e.g. one batch's stats) into this one."""
        self.scenes += other.scenes
        self.draws += other.draws
        merge_generation_stats(self._combined, other._combined)
        for strategy, stats in other._by_strategy.items():
            merge_generation_stats(
                self._by_strategy.setdefault(strategy, GenerationStats()), stats
            )
        self.importance_weight_sum += other.importance_weight_sum
        self.importance_scenes += other.importance_scenes
        for strategy, (weight_sum, count) in other._importance_by_strategy.items():
            base_sum, base_count = self._importance_by_strategy.get(strategy, (0.0, 0))
            self._importance_by_strategy[strategy] = (base_sum + weight_sum, base_count + count)
        room = self.history_limit - len(self.per_scene)
        if room > 0:
            self.per_scene.extend(other.per_scene[:room])

    # -- roll-ups ---------------------------------------------------------------

    def combined(self) -> GenerationStats:
        """All per-scene stats summed into a single :class:`GenerationStats`."""
        return merge_generation_stats(GenerationStats(), self._combined)

    def by_strategy(self) -> Dict[str, GenerationStats]:
        """Per-strategy roll-up (useful when strategies are mixed or compared)."""
        return {
            strategy: merge_generation_stats(GenerationStats(), stats)
            for strategy, stats in self._by_strategy.items()
        }

    @property
    def total_iterations(self) -> int:
        return self._combined.iterations

    @property
    def total_rejections(self) -> int:
        return self._combined.total_rejections

    @property
    def elapsed_seconds(self) -> float:
        return self._combined.elapsed_seconds

    @property
    def acceptance_rate(self) -> float:
        """Accepted scenes per candidate scene, over the whole run."""
        if self.total_iterations <= 0:
            return 0.0
        return self.scenes / self.total_iterations

    def rejection_breakdown(self) -> Dict[str, int]:
        """Total rejections by cause, e.g. ``{"containment": 12, ...}``."""
        return {
            "containment": self._combined.rejections_containment,
            "collision": self._combined.rejections_collision,
            "visibility": self._combined.rejections_visibility,
            "user": self._combined.rejections_user,
            "sampling": self._combined.rejections_sampling,
        }

    # -- constructive-sampling diagnostics --------------------------------------

    @property
    def total_candidates(self) -> int:
        """Candidate configurations actually drawn across the run.

        For the rejection-style strategies every iteration draws exactly one
        candidate; the constructive ``direct`` strategy counts its proposal
        draws (including inner membership redraws) in ``candidates_drawn``,
        so the larger of the two is the honest cross-strategy count.
        """
        return max(self._combined.iterations, self._combined.candidates_drawn)

    def candidate_counts(self) -> Dict[str, int]:
        """Per-strategy drawn-candidate counts (the ≥10x-reduction metric)."""
        return {
            strategy: max(stats.iterations, stats.candidates_drawn)
            for strategy, stats in self._by_strategy.items()
        }

    @property
    def mean_importance_weight(self) -> float | None:
        """Mean importance weight of accepted scenes (``None`` = no weights)."""
        if self.importance_scenes <= 0:
            return None
        return self.importance_weight_sum / self.importance_scenes

    def to_shard_stats(self) -> Dict[str, object]:
        """This roll-up as the plain-data *shard stats* dict the service merges.

        This is the single owner of the worker → coordinator stats shape:
        service workers pickle exactly this dict home per shard, and
        :func:`repro.service.protocol.merge_shard_stats` folds many of them
        into one request-wide dict.  ``candidates`` is this shard's honest
        drawn-candidate count (:attr:`total_candidates` — per-shard max of
        iterations and constructive proposal draws), recorded *per shard* so
        the request-wide count can sum shard maxima instead of taking a max
        of sums.
        """
        combined = self.combined()
        return {
            "scenes": self.scenes,
            "draws": self.draws,
            "iterations": combined.iterations,
            "component_redraws": combined.component_redraws,
            "candidates_drawn": combined.candidates_drawn,
            "candidates": self.total_candidates,
            "sampling_seconds": combined.elapsed_seconds,
            "rejections": self.rejection_breakdown(),
            "importance_weight_sum": self.importance_weight_sum,
            "importance_scenes": self.importance_scenes,
        }

    def as_eval_metrics(self) -> Dict[str, object]:
        """This roll-up as the flat metric dict the quality-eval harness scores.

        Single owner of the per-(scenario, strategy) metric shape consumed
        by :mod:`repro.evals.scoring` and published in the committed
        ``results/EVALS_*.json`` scorecards: accepted scenes, draws,
        candidate iterations, honest drawn-candidate count, acceptance
        rate, sampling wall time, the rejection breakdown and the mean
        importance weight (``None`` when the strategy stamps no weights).
        """
        return {
            "scenes": self.scenes,
            "draws": self.draws,
            "iterations": self.total_iterations,
            "candidates": self.total_candidates,
            "acceptance_rate": self.acceptance_rate,
            "sampling_seconds": self.elapsed_seconds,
            "rejections": self.rejection_breakdown(),
            "mean_importance_weight": self.mean_importance_weight,
        }

    def importance_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-strategy importance-weight diagnostics for the roll-ups."""
        return {
            strategy: {
                "scenes": count,
                "mean_weight": weight_sum / count if count else 0.0,
            }
            for strategy, (weight_sum, count) in sorted(self._importance_by_strategy.items())
        }

    def __repr__(self) -> str:
        return (
            f"AggregateStats({self.scenes} scenes, {self.total_iterations} iterations, "
            f"acceptance={self.acceptance_rate:.3f})"
        )


class SceneBatch(list):
    """A list of scenes plus the aggregated statistics of generating them.

    Subclassing ``list`` keeps every existing consumer of
    ``Scenario.generate_batch`` (which returned a plain ``List[Scene]``)
    working unchanged while exposing :attr:`stats` on the result.
    """

    def __init__(self, scenes: List["Scene"], stats: AggregateStats):
        super().__init__(scenes)
        self.stats = stats


__all__ = ["AggregateStats", "SceneBatch", "merge_generation_stats"]

"""The sampler engine: one front door to every sampling strategy.

``SamplerEngine`` binds a scenario to a strategy (by name or instance),
amortises the strategy's one-time analysis across draws, and rolls all
per-scene diagnostics up into an :class:`~repro.sampling.stats.AggregateStats`.

Typical use::

    from repro.sampling import SamplerEngine

    engine = SamplerEngine(scenario, strategy="pruning", max_distance=30.0)
    scene = engine.sample(seed=0)
    batch = engine.sample_batch(100, seed=1)     # a SceneBatch (list + .stats)
    engine.aggregate.rejection_breakdown()

The engine also accepts *precompiled artifacts* and raw Scenic source — the
compile-once, sample-many path of :mod:`repro.language.compiler`::

    from repro.language import compile_scenario

    artifact = compile_scenario(source)          # cached by content hash
    engine = SamplerEngine(artifact)             # parser + interpreter skipped when warm
    engine = SamplerEngine("ego = Object at 0 @ 0")   # source text works too (docs/language.md)

Artifact-backed engines share the artifact's interned scenario, except for
strategies declaring ``mutates_scenario`` (pruning rewrites sampling
regions in place) which get an independent, freshly interpreted scenario.

``Scenario.generate`` / ``generate_batch`` are thin wrappers over this class
with the default ``"rejection"`` strategy, preserving the seed's behaviour
draw-for-draw.
"""

from __future__ import annotations

import random as _random
from typing import Any, List, Optional, Union

from ..core.errors import RejectionError
from ..core.scenario import GenerationStats, Scenario
from ..core.scene import Scene
from .stats import AggregateStats, SceneBatch
from .strategies import SamplingStrategy, make_strategy


def resolve_scenario(source_like: Any, fresh: bool = False) -> Scenario:
    """Turn a Scenario, :class:`CompiledScenario` or Scenic source into a Scenario.

    Artifacts resolve to their shared interned scenario — the warm path that
    skips the parser and interpreter — unless *fresh* is true, which forces
    an independent re-interpretation of the cached AST.  The engine passes
    the bound strategy's ``mutates_scenario`` flag here, so strategies that
    rewrite the scenario in place (pruning) can never corrupt the shared
    instance.  Raw source text is routed through the process-wide artifact
    cache (:func:`repro.language.compile_scenario`).
    """
    if isinstance(source_like, Scenario):
        return source_like
    from ..language.compiler import CompiledScenario, compile_scenario

    if isinstance(source_like, str):
        source_like = compile_scenario(source_like)
    if isinstance(source_like, CompiledScenario):
        return source_like.scenario(fresh=fresh)
    raise TypeError(
        f"expected a Scenario, CompiledScenario or Scenic source text, "
        f"got {type(source_like).__name__}"
    )


class SamplerEngine:
    """Samples scenes from one scenario through a pluggable strategy.

    *scenario* may be a live :class:`~repro.core.scenario.Scenario`, a
    :class:`~repro.language.CompiledScenario` artifact, or Scenic source
    text (compiled through the artifact cache); see :func:`resolve_scenario`.
    """

    def __init__(
        self,
        scenario: Union[Scenario, Any],
        strategy: Union[str, SamplingStrategy] = "rejection",
        backend: Union[str, Any, None] = None,
        **strategy_options: Any,
    ):
        if isinstance(strategy, SamplingStrategy):
            if strategy_options:
                raise TypeError("strategy options only apply when the strategy is given by name")
            self.strategy = strategy
        else:
            self.strategy = make_strategy(strategy, **strategy_options)
        # Per-engine geometry backend: a name ("numpy"/"numba"/"jax"/"auto") or
        # KernelBackend instance, resolved eagerly so unknown/unavailable
        # selections fail at construction, not mid-sampling.  None keeps the
        # process-global active backend (numpy unless reconfigured), which is
        # what the bit-identical determinism contract pins.
        if backend is not None:
            from ..geometry import backends as _backends

            self.backend = _backends.get_backend(backend)
            self.strategy.kernel = self.backend
        else:
            self.backend = None
        self.scenario = resolve_scenario(scenario, fresh=self.strategy.mutates_scenario)
        self.aggregate = AggregateStats()
        self.last_stats: Optional[GenerationStats] = None
        self._bound = False

    # -- internals --------------------------------------------------------------

    def _ensure_bound(self) -> None:
        if not self._bound:
            self.strategy.bind(self.scenario)
            self._bound = True

    @staticmethod
    def _resolve_rng(rng: Optional[_random.Random], seed: Optional[int]) -> _random.Random:
        return rng if rng is not None else _random.Random(seed)

    # -- sampling ---------------------------------------------------------------

    def sample(
        self,
        max_iterations: int = 2000,
        rng: Optional[_random.Random] = None,
        seed: Optional[int] = None,
    ) -> Scene:
        """Draw one accepted scene; raises :class:`RejectionError` on failure.

        Per-draw statistics land in :attr:`last_stats` (also when the draw
        fails) and are appended to :attr:`aggregate`.
        """
        self._ensure_bound()
        rng = self._resolve_rng(rng, seed)
        scene, stats = self.strategy.sample(self.scenario, max_iterations, rng)
        self.last_stats = stats
        weight = (
            scene.importance_weight
            if scene is not None and self.strategy.uses_importance_weights
            else None
        )
        self.aggregate.record(
            stats, self.strategy.name, accepted=scene is not None, importance_weight=weight
        )
        if scene is None:
            raise RejectionError(max_iterations)
        return scene

    def sample_batch(
        self,
        count: int,
        max_iterations: int = 2000,
        rng: Optional[_random.Random] = None,
        seed: Optional[int] = None,
    ) -> SceneBatch:
        """Draw *count* scenes, returning a :class:`SceneBatch` with batch stats.

        If a draw exhausts its budget mid-batch, the :class:`RejectionError`
        propagates but the stats of every draw made so far — including the
        failing one — are still folded into :attr:`aggregate` and
        :attr:`last_stats`.
        """
        self._ensure_bound()
        rng = self._resolve_rng(rng, seed)
        batch_stats = AggregateStats()
        try:
            scenes = self.strategy.sample_batch(
                self.scenario, count, max_iterations, rng, batch_stats
            )
        finally:
            self.aggregate.merge_from(batch_stats)
            self.last_stats = batch_stats.combined()
        return SceneBatch(scenes, batch_stats)

    def __repr__(self) -> str:
        return f"SamplerEngine({self.scenario!r}, strategy={self.strategy.name!r})"


__all__ = ["SamplerEngine", "resolve_scenario"]

"""Pluggable scene-sampling strategies (the engine's interchangeable cores).

Every strategy turns a :class:`~repro.core.scenario.Scenario` into accepted
scenes; they differ in *how* candidates are proposed:

* :class:`RejectionSampler` — the paper's plain rejection loop (Sec. 5),
  extracted verbatim from the old ``Scenario.generate`` so the delegated
  path is draw-for-draw identical to the seed behaviour.
* :class:`PruningAwareSampler` — runs the Sec. 5.2 pruning pass over the
  scenario once, shrinking the feasible regions, then rejection-samples the
  pruned scenario.  The bounds the pruning algorithms need are derived
  automatically by static requirement analysis (:mod:`repro.analysis`)
  whenever the scenario came from a compiled artifact.
* :class:`PrunedVectorizedSampler` — the pruning pass composed with
  :class:`VectorizedSampler`'s block drawing and bulk kernel rejection.
* :class:`BatchSampler` — amortises dependency analysis across the whole
  run and exploits independence between objects: each independent group is
  locally re-drawn until its *local* constraints (containment, intra-group
  collision) hold, which is distribution-preserving because the joint prior
  factorises over groups and those constraints touch one group only.
  Cross-group constraints still trigger a full restart.
* :class:`ParallelSampler` — fans a batch out over a worker pool.  Each
  scene index gets its own deterministically derived RNG, so the merged
  batch is a pure function of the seed, independent of worker count and
  thread scheduling.
* :class:`VectorizedSampler` — draws a whole block of candidate scenes,
  then runs the containment and collision checks for the entire block in
  one pass through the numpy kernel (:mod:`repro.geometry.kernel`); the
  default for ``Scenario.generate_batch``.

The shared candidate checks themselves (``contained_in_workspace``,
``no_pairwise_collisions``) route through the kernel whenever the scene is
large enough for batching to pay for itself, so *every* strategy rides the
vectorized hot path.

Strategies are registered by name in :data:`STRATEGIES`; third-party code
can plug in new ones with :func:`register_strategy`::

    from repro.sampling import RejectionSampler, register_strategy

    @register_strategy
    class MySampler(RejectionSampler):
        name = "mine"
        # override bind() for one-time analysis, _draw_candidate() for the
        # proposal, or sample()/sample_batch() for the whole loop

    scenario.generate(seed=0, strategy="mine")
    SamplerEngine(scenario, strategy="mine").sample_batch(100, seed=1)

Strategies always receive a live, fully-bound
:class:`~repro.core.scenario.Scenario`; compiled artifacts and raw source
are resolved one level up by :func:`repro.sampling.engine.resolve_scenario`
(see ``docs/sampling.md``), so strategy authors never deal with the
compilation pipeline.
"""

from __future__ import annotations

import random as _random
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple, Type

import numpy as np

from ..core.distributions import Sample, concretize
from ..core.errors import RejectSample, RejectionError
from ..core.pruning import PruningReport, prune_scenario
from ..core.scenario import GenerationStats, Scenario
from ..core.scene import Scene
from ..geometry import kernel as _kernel
from ..geometry import backends as _backends
from .dependency import DependencyGraph, ObjectGroup
from .stats import AggregateStats

# ---------------------------------------------------------------------------
# The candidate-scene check, shared by all strategies
# ---------------------------------------------------------------------------


#: Below these sizes the scalar loops win: numpy call overhead outweighs the
#: vectorization for one or two objects / a handful of pairs.
_KERNEL_MIN_OBJECTS = 3
_KERNEL_MIN_COLLIDERS = 4


def contained_in_workspace(
    workspace, concrete_objects: List[Any], stats: GenerationStats, kernel: Optional[Any] = None
) -> bool:
    """Every object inside the workspace (counts a containment rejection).

    Large scenes batch all objects' test points through the geometry kernel
    (one vectorized containment query instead of ``8 * n`` scalar ones);
    regions with custom ``contains_object`` semantics and small scenes take
    the scalar path.  Accept/reject decisions are identical either way.
    *kernel* pins a specific :class:`~repro.geometry.backends.KernelBackend`;
    ``None`` uses the process-global active one.
    """
    if workspace.is_unbounded:
        return True
    workspace_region = workspace.region
    if (
        len(concrete_objects) >= _KERNEL_MIN_OBJECTS
        and _kernel.region_supports_batch_objects(workspace_region)
    ):
        backend = kernel if kernel is not None else _backends.active_backend()
        corners = _kernel.corners_array(concrete_objects)
        if bool(backend.objects_contained(workspace_region, corners).all()):
            return True
        stats.rejections_containment += 1
        return False
    for scenic_object in concrete_objects:
        if not workspace_region.contains_object(scenic_object):
            stats.rejections_containment += 1
            return False
    return True


def no_pairwise_collisions(
    concrete_objects: List[Any],
    stats: GenerationStats,
    pair_filter: Optional[Any] = None,
    kernel: Optional[Any] = None,
) -> bool:
    """No two collision-checked objects intersect (counts a collision rejection).

    *pair_filter*, when given, receives the two indices and returns whether
    that pair must be checked — the batch strategy uses it to split the
    check into intra-group and cross-group halves without duplicating the
    rejection semantics.

    Unfiltered checks on larger scenes run through the kernel's batched
    separating-axis test (grid-pruned for many objects); the scalar loop
    remains for filtered checks and small scenes.
    """
    if pair_filter is None and len(concrete_objects) >= _KERNEL_MIN_COLLIDERS:
        collidable = np.fromiter(
            (not scenic_object.allowCollisions for scenic_object in concrete_objects),
            dtype=bool,
            count=len(concrete_objects),
        )
        if collidable.sum() >= 2:
            backend = kernel if kernel is not None else _backends.active_backend()
            corners = _kernel.corners_array(concrete_objects)
            if len(backend.pairwise_collisions(corners, collidable)) > 0:
                stats.rejections_collision += 1
                return False
            return True
        return True
    for index, first in enumerate(concrete_objects):
        for jndex in range(index + 1, len(concrete_objects)):
            second = concrete_objects[jndex]
            if first.allowCollisions or second.allowCollisions:
                continue
            if pair_filter is not None and not pair_filter(index, jndex):
                continue
            if first.intersects(second):
                stats.rejections_collision += 1
                return False
    return True


def all_required_visible(
    concrete_objects: List[Any], concrete_ego: Any, stats: GenerationStats
) -> bool:
    """Every ``requireVisible`` object is visible from the ego."""
    from ..core.operators import _can_see  # concrete implementation

    for scenic_object in concrete_objects:
        if scenic_object is concrete_ego:
            continue
        if scenic_object.requireVisible and not _can_see(concrete_ego, scenic_object):
            stats.rejections_visibility += 1
            return False
    return True


def check_builtin_requirements(
    scenario: Scenario,
    concrete_objects: List[Any],
    concrete_ego: Any,
    stats: GenerationStats,
    kernel: Optional[Any] = None,
) -> bool:
    """The three default requirements of Sec. 3 (containment, collision, visibility)."""
    return (
        contained_in_workspace(scenario.workspace, concrete_objects, stats, kernel=kernel)
        and no_pairwise_collisions(concrete_objects, stats, kernel=kernel)
        and all_required_visible(concrete_objects, concrete_ego, stats)
    )


def check_user_requirements(
    scenario: Scenario, sample: Sample, rng: _random.Random, stats: GenerationStats
) -> bool:
    """Evaluate the scenario's ``require`` statements against the joint sample."""
    for requirement in scenario.requirements:
        if not requirement.should_enforce(rng):
            continue
        if not requirement.holds_in(sample):
            stats.rejections_user += 1
            return False
    return True


def draw_candidate(
    scenario: Scenario, rng: _random.Random, stats: GenerationStats, kernel: Optional[Any] = None
) -> Optional[Scene]:
    """Draw one candidate scene; return it if valid, ``None`` if rejected.

    This is the seed's ``Scenario._sample_candidate`` extracted unchanged:
    the order of RNG draws is part of the engine's compatibility contract
    (same seed ⇒ same scene as the pre-engine code).
    """
    sample = Sample(rng)
    concrete_objects = [scenic_object._concretize(sample) for scenic_object in scenario.objects]
    concrete_ego = scenario.ego._concretize(sample)
    concrete_params = {name: concretize(value, sample) for name, value in scenario.params.items()}

    if not check_builtin_requirements(
        scenario, concrete_objects, concrete_ego, stats, kernel=kernel
    ):
        return None
    if not check_user_requirements(scenario, sample, rng, stats):
        return None
    return Scene(concrete_objects, concrete_ego, concrete_params, scenario.workspace)


# ---------------------------------------------------------------------------
# Strategy base class and registry
# ---------------------------------------------------------------------------


class SamplingStrategy:
    """Base class: propose candidate scenes for a scenario until one is accepted."""

    name = "abstract"

    #: Strategies that rewrite the scenario in place during :meth:`bind`
    #: (e.g. pruning shrinks sampling regions) must set this, so shared
    #: infrastructure — notably compiled artifacts' interned scenarios, see
    #: :func:`repro.sampling.engine.resolve_scenario` — hands them an
    #: independent scenario instead of a shared one.
    mutates_scenario = False

    #: Strategies that stamp ``scene.importance_weight`` (the constructive
    #: ``direct`` family) set this so the engine and the batch loop forward
    #: the weights into :class:`AggregateStats` roll-ups; rejection-style
    #: strategies leave the weight at its exact default of 1.0 and record
    #: no weight at all.
    uses_importance_weights = False

    #: Geometry-kernel backend pinned to this strategy instance
    #: (:class:`~repro.geometry.backends.KernelBackend` or ``None``).  Set
    #: by ``SamplerEngine(backend=...)``; ``None`` defers every kernel call
    #: to the process-global active backend at call time, so `use_backend`
    #: scopes keep working.
    kernel: Optional[Any] = None

    def bind(self, scenario: Scenario) -> None:
        """One-time, per-scenario analysis (pruning, dependency graphs, ...).

        Called by the engine before the first draw; the work done here is
        amortised over every subsequent sample.
        """

    def _draw_candidate(
        self, scenario: Scenario, rng: _random.Random, stats: GenerationStats
    ) -> Optional[Scene]:
        """Propose one candidate scene (``None`` when rejected).

        The hook :meth:`sample`'s shared rejection loop calls; strategies
        that keep the one-candidate-at-a-time shape only override this.
        """
        raise NotImplementedError

    def sample(
        self, scenario: Scenario, max_iterations: int, rng: _random.Random
    ) -> Tuple[Optional[Scene], GenerationStats]:
        """Draw one accepted scene (or ``None`` after *max_iterations* candidates)."""
        self.bind(scenario)
        stats = GenerationStats()
        start_time = time.perf_counter()
        scene: Optional[Scene] = None
        for iteration in range(1, max_iterations + 1):
            stats.iterations = iteration
            try:
                scene = self._draw_candidate(scenario, rng, stats)
            except RejectSample:
                stats.rejections_sampling += 1
                continue
            if scene is not None:
                break
        stats.elapsed_seconds = time.perf_counter() - start_time
        return scene, stats

    def sample_batch(
        self,
        scenario: Scenario,
        count: int,
        max_iterations: int,
        rng: _random.Random,
        aggregate: AggregateStats,
    ) -> List[Scene]:
        """Draw *count* scenes; default implementation loops :meth:`sample`.

        Per-draw stats are recorded into *aggregate* as they happen, so the
        caller keeps the diagnostics of every draw — including the failing
        one — even when a draw exhausts its budget and this method raises
        :class:`RejectionError`.
        """
        scenes: List[Scene] = []
        for _ in range(count):
            scene, stats = self.sample(scenario, max_iterations, rng)
            weight = (
                scene.importance_weight
                if scene is not None and self.uses_importance_weights
                else None
            )
            aggregate.record(
                stats, self.name, accepted=scene is not None, importance_weight=weight
            )
            if scene is None:
                raise RejectionError(max_iterations)
            scenes.append(scene)
        return scenes


STRATEGIES: Dict[str, Type[SamplingStrategy]] = {}


def register_strategy(cls: Type[SamplingStrategy]) -> Type[SamplingStrategy]:
    """Class decorator adding a strategy to the engine's registry."""
    STRATEGIES[cls.name] = cls
    return cls


def make_strategy(name: str, **options: Any) -> SamplingStrategy:
    """Instantiate a registered strategy by name."""
    if name not in STRATEGIES:
        known = ", ".join(sorted(STRATEGIES))
        raise ValueError(f"unknown sampling strategy {name!r} (known: {known})")
    return STRATEGIES[name](**options)


# ---------------------------------------------------------------------------
# Rejection (the extracted seed behaviour)
# ---------------------------------------------------------------------------


@register_strategy
class RejectionSampler(SamplingStrategy):
    """Plain rejection sampling — the seed's ``Scenario.generate``, extracted."""

    name = "rejection"

    def _draw_candidate(self, scenario, rng, stats):
        return draw_candidate(scenario, rng, stats, kernel=self.kernel)


# ---------------------------------------------------------------------------
# Pruning-aware rejection
# ---------------------------------------------------------------------------


class _PruningMixin:
    """Shared one-time pruning pass for the pruning-based strategies.

    By default the pass is fully automatic: ``prune_scenario`` resolves the
    static-analysis :class:`~repro.analysis.PruneBounds` cached on the
    scenario's compiled artifact, so orientation (Alg. 2) and size (Alg. 3)
    pruning run without any caller-supplied bounds.  Explicit *bounds* (or
    the legacy keyword arguments) are applied on top; ``analyze=False``
    disables the automatic analysis (the benchmark's containment-only
    baseline uses ``bounds=<bounds>.containment_only()``).
    """

    def _init_pruning(
        self,
        bounds=None,
        analyze: bool = True,
        relative_heading_bound: Optional[float] = None,
        relative_heading_center: float = 0.0,
        max_distance: Optional[float] = None,
        deviation_bound: float = 0.0,
        min_configuration_width: Optional[float] = None,
    ):
        self._prune_options = dict(
            bounds=bounds,
            analyze=analyze,
            relative_heading_bound=relative_heading_bound,
            relative_heading_center=relative_heading_center,
            max_distance=max_distance,
            deviation_bound=deviation_bound,
            min_configuration_width=min_configuration_width,
        )
        self.report: Optional[PruningReport] = None
        self._bound_scenario: Optional[Scenario] = None

    def bind(self, scenario):
        if self._bound_scenario is not scenario:
            options = dict(self._prune_options)
            bounds = options.pop("bounds")
            self.report = prune_scenario(scenario, bounds, **options)
            self._bound_scenario = scenario


@register_strategy
class PruningAwareSampler(_PruningMixin, RejectionSampler):
    """Shrink the feasible regions via Sec. 5.2 pruning, then rejection-sample.

    The pruning pass runs once, in :meth:`bind`; its :class:`PruningReport`
    is kept on :attr:`report` for diagnostics.  Pruning only ever removes
    sample-space volume that cannot produce a valid scene, so the induced
    distribution is unchanged while the acceptance rate improves.  With no
    options at all, the bounds come from the compiled artifact's static
    requirement analysis (see :mod:`repro.analysis`) — the paper's fully
    automatic mode.

    Note that ``prune_scenario`` rewrites the prunable objects' sampling
    regions *in place*: after binding, the scenario samples the pruned
    regions under every strategy.  Compile the program again if an unpruned
    baseline of the same scenario is needed (as ``compare_pruning`` does).
    """

    name = "pruning"
    mutates_scenario = True  # prune_scenario rewrites sampling regions in place

    def __init__(self, **options):
        self._init_pruning(**options)




# ---------------------------------------------------------------------------
# Batched, dependency-aware sampling
# ---------------------------------------------------------------------------


@register_strategy
class BatchSampler(SamplingStrategy):
    """Candidate generation that exploits the scenario's independence structure.

    :meth:`bind` computes the :class:`DependencyGraph` once.  Each candidate
    is then assembled group by group: a group whose objects leave the
    workspace or collide *with each other* is locally re-drawn (only its
    sub-tree of the DAG is resampled) instead of discarding the whole joint
    sample.  Because the prior factorises over groups and these local
    constraints involve a single group, this draws each group exactly from
    its constraint-conditioned marginal; the remaining cross-group
    constraints (inter-group collisions, visibility from the ego, ``require``
    statements) are checked on the assembled candidate and trigger a full
    restart on failure, exactly as in plain rejection.

    ``local_redraw_cap`` bounds how often one group is re-drawn within a
    single candidate before the candidate as a whole counts as rejected.
    """

    name = "batch"

    def __init__(self, local_redraw_cap: int = 128):
        self.local_redraw_cap = max(1, int(local_redraw_cap))
        self.graph: Optional[DependencyGraph] = None

    def bind(self, scenario):
        if self.graph is None or self.graph.scenario is not scenario:
            self.graph = DependencyGraph(scenario)

    # -- candidate construction -------------------------------------------------

    def _group_is_locally_valid(
        self, scenario: Scenario, group: ObjectGroup, sample: Sample, stats: GenerationStats
    ) -> bool:
        concrete = [scenic_object._concretize(sample) for scenic_object in group.objects]
        return contained_in_workspace(
            scenario.workspace, concrete, stats, kernel=self.kernel
        ) and no_pairwise_collisions(concrete, stats, kernel=self.kernel)

    def _draw_group(
        self, scenario: Scenario, group: ObjectGroup, sample: Sample, stats: GenerationStats
    ) -> bool:
        """Draw *group* until its local constraints hold (or give up)."""
        for attempt in range(self.local_redraw_cap):
            if attempt:
                group.forget_in(sample)
                stats.component_redraws += 1
            try:
                if self._group_is_locally_valid(scenario, group, sample, stats):
                    return True
            except RejectSample:
                stats.rejections_sampling += 1
            if group.is_static:
                return False  # redrawing cannot change anything
        return False

    def _draw_candidate(self, scenario, rng, stats) -> Optional[Scene]:
        sample = Sample(rng)
        for group in self.graph.groups:
            if not self._draw_group(scenario, group, sample, stats):
                return None
        concrete_objects = [obj._concretize(sample) for obj in scenario.objects]
        concrete_ego = scenario.ego._concretize(sample)
        concrete_params = {
            name: concretize(value, sample) for name, value in scenario.params.items()
        }
        if not self._cross_group_checks(scenario, concrete_objects, concrete_ego, stats):
            return None
        if not check_user_requirements(scenario, sample, rng, stats):
            return None
        return Scene(concrete_objects, concrete_ego, concrete_params, scenario.workspace)

    def _cross_group_checks(self, scenario, concrete_objects, concrete_ego, stats) -> bool:
        """The builtin checks not already guaranteed group-locally."""
        graph = self.graph
        sources = scenario.objects
        return no_pairwise_collisions(
            concrete_objects,
            stats,
            # Same-group pairs were already checked locally; only cross-group
            # pairs need the joint-level collision check.
            pair_filter=lambda index, jndex: graph.independent(sources[index], sources[jndex]),
            kernel=self.kernel,
        ) and all_required_visible(concrete_objects, concrete_ego, stats)



# ---------------------------------------------------------------------------
# Parallel batch sampling
# ---------------------------------------------------------------------------


@register_strategy
class ParallelSampler(SamplingStrategy):
    """Worker-pool batch sampling with per-scene seeded RNGs.

    Determinism contract: before any work is dispatched, one 64-bit seed per
    scene index is drawn from the caller's RNG.  Worker threads then sample
    scene *i* with ``Random(seed_i)`` and results are merged by index, so
    the batch depends only on the caller's seed — not on the number of
    workers or on scheduling.  (``ParallelSampler(workers=1)`` and
    ``workers=8`` produce identical batches.)

    Performance caveat: on a stock (GIL) CPython build, threads give *no*
    wall-time speedup for this pure-Python, CPU-bound workload — the value
    today is the deterministic sharding contract, which also holds on
    free-threaded builds and for base strategies that release the GIL
    (e.g. future native candidate evaluators).  For wall-time wins on
    stock CPython, use ``BatchSampler`` or ``PruningAwareSampler``.
    """

    name = "parallel"

    def __init__(self, workers: int = 4, base_strategy: str = "rejection", **base_options: Any):
        self.workers = max(1, int(workers))
        self.base = make_strategy(base_strategy, **base_options)

    def bind(self, scenario):
        if self.kernel is not None and self.base.kernel is None:
            self.base.kernel = self.kernel  # engine-pinned backend reaches the base
        self.base.bind(scenario)

    def sample(self, scenario, max_iterations, rng):
        self.bind(scenario)
        return self.base.sample(scenario, max_iterations, rng)

    def sample_batch(self, scenario, count, max_iterations, rng, aggregate):
        self.bind(scenario)
        seeds = [rng.getrandbits(64) for _ in range(count)]

        def draw(index: int) -> Tuple[Optional[Scene], GenerationStats]:
            worker_rng = _random.Random(seeds[index])
            return self.base.sample(scenario, max_iterations, worker_rng)

        scenes: List[Scene] = []
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [pool.submit(draw, index) for index in range(count)]
            try:
                for future in futures:  # merged strictly in index order
                    scene, stats = future.result()
                    aggregate.record(stats, self.name, accepted=scene is not None)
                    if scene is None:
                        raise RejectionError(max_iterations)
                    scenes.append(scene)
            except RejectionError:
                # Don't burn the rest of the batch's budget on a batch that
                # already failed: queued draws are cancelled (in-flight ones
                # finish, unrecorded).
                for future in futures:
                    future.cancel()
                raise
        return scenes


# ---------------------------------------------------------------------------
# Vectorized block sampling
# ---------------------------------------------------------------------------


@register_strategy
class VectorizedSampler(SamplingStrategy):
    """Propose candidates in blocks and reject them in bulk through the kernel.

    Each round draws up to ``block_size`` candidate scenes' worth of samples
    (concretization stays per-candidate Python — it must evaluate arbitrary
    specifier expressions), then checks workspace containment for *all*
    objects of *all* candidates in one batched kernel query and all pairwise
    collisions in one batched separating-axis pass.  Candidates are then
    examined in draw order; the first one that also passes the (scalar)
    visibility and user-requirement checks is accepted.

    The induced distribution is exactly plain rejection's: candidates are
    i.i.d. draws from the prior, examined in the order they were drawn, and
    acceptance depends only on the candidate itself.  The RNG *stream* is
    consumed in a different interleaving than ``RejectionSampler`` (a whole
    block is drawn before any soft-requirement coin flips), so per-seed
    outputs differ between the two strategies while per-seed determinism
    holds for each — the golden-scene corpus pins both down.

    ``stats.iterations`` counts examined candidates only, so exhaustion
    semantics match rejection: ``max_iterations=1`` examines exactly one
    candidate.

    Block sizes are *adaptive* when the scenario has no soft requirements:
    rounds ramp ``min_block, 2*min_block, ...`` up to ``block_size``, so an
    easy scenario (accepted within the first few candidates) does not pay
    for concretizing a full block it never examines — the dominant cost of
    per-scene sampling in the generation service, whose splitmix contract
    draws every scene with a fresh RNG.  The ramp is bit-identical to a
    fixed block: candidates are drawn sequentially from the same RNG stream
    and examined in draw order, so candidate *k* (and therefore the first
    accepted one) is the same no matter how draws are grouped into rounds.
    Soft requirements break that equivalence — ``require[p]`` flips the
    *shared* RNG per examined candidate, in between rounds' draws — so
    their presence disables the ramp and keeps the legacy fixed blocks
    (pinned by the golden corpus).
    """

    name = "vectorized"

    def __init__(self, block_size: int = 32, min_block: int = 4):
        self.block_size = max(1, int(block_size))
        self.min_block = max(1, min(int(min_block), self.block_size))
        self._adaptive = False

    def bind(self, scenario):
        super().bind(scenario)
        self._adaptive = not any(
            requirement.is_soft for requirement in scenario.requirements
        )

    def sample(self, scenario, max_iterations, rng):
        self.bind(scenario)
        stats = GenerationStats()
        start_time = time.perf_counter()
        scene: Optional[Scene] = None
        next_block = self.min_block if self._adaptive else self.block_size
        while scene is None and stats.iterations < max_iterations:
            block = min(next_block, max_iterations - stats.iterations)
            next_block = min(next_block * 2, self.block_size)
            candidates = self._draw_block(scenario, rng, block)
            failures = self._bulk_geometry_failures(scenario, candidates)
            for candidate, failure in zip(candidates, failures):
                stats.iterations += 1
                if candidate is None:
                    stats.rejections_sampling += 1
                    continue
                if failure == "containment":
                    stats.rejections_containment += 1
                    continue
                if failure == "collision":
                    stats.rejections_collision += 1
                    continue
                sample, concrete_objects, concrete_ego, concrete_params = candidate
                if not all_required_visible(concrete_objects, concrete_ego, stats):
                    continue
                if not check_user_requirements(scenario, sample, rng, stats):
                    continue
                scene = Scene(concrete_objects, concrete_ego, concrete_params, scenario.workspace)
                break
        stats.elapsed_seconds = time.perf_counter() - start_time
        return scene, stats

    # -- internals ---------------------------------------------------------------

    def _draw_block(self, scenario, rng, count):
        """Concretize *count* candidates; ``None`` marks a RejectSample draw."""
        candidates = []
        for _ in range(count):
            try:
                sample = Sample(rng)
                concrete_objects = [
                    scenic_object._concretize(sample) for scenic_object in scenario.objects
                ]
                concrete_ego = scenario.ego._concretize(sample)
                concrete_params = {
                    name: concretize(value, sample) for name, value in scenario.params.items()
                }
                candidates.append((sample, concrete_objects, concrete_ego, concrete_params))
            except RejectSample:
                candidates.append(None)
        return candidates

    def _bulk_geometry_failures(self, scenario, candidates):
        """First geometric failure per candidate: "containment", "collision" or None."""
        failures: List[Optional[str]] = [None] * len(candidates)
        live = [index for index, candidate in enumerate(candidates) if candidate is not None]
        if not live:
            return failures
        backend = self.kernel if self.kernel is not None else _backends.active_backend()
        corners = np.stack(
            [_kernel.corners_array(candidates[index][1]) for index in live]
        )  # (K, n, 4, 2)
        workspace = scenario.workspace
        if not workspace.is_unbounded:
            region = workspace.region
            if _kernel.region_supports_batch_objects(region):
                per_object = backend.objects_contained(
                    region, corners.reshape(-1, 4, 2)
                ).reshape(len(live), -1)
                contained = per_object.all(axis=1)
            else:
                contained = np.fromiter(
                    (
                        all(
                            region.contains_object(scenic_object)
                            for scenic_object in candidates[index][1]
                        )
                        for index in live
                    ),
                    dtype=bool,
                    count=len(live),
                )
            for position, index in enumerate(live):
                if not contained[position]:
                    failures[index] = "containment"
            keep = np.flatnonzero(contained)
            corners = corners[keep]
            live = [live[int(position)] for position in keep]
            if not live:
                return failures
        collidable = np.stack(
            [
                np.fromiter(
                    (
                        not scenic_object.allowCollisions
                        for scenic_object in candidates[index][1]
                    ),
                    dtype=bool,
                    count=corners.shape[1],
                )
                for index in live
            ]
        )
        collision_free = backend.batch_collision_free(corners, collidable)
        for position, index in enumerate(live):
            if not collision_free[position]:
                failures[index] = "collision"
        return failures


# ---------------------------------------------------------------------------
# Pruned + vectorized: the composite fast path
# ---------------------------------------------------------------------------


@register_strategy
class PrunedVectorizedSampler(_PruningMixin, VectorizedSampler):
    """Sec. 5.2 pruning composed with block-vectorized candidate rejection.

    :meth:`bind` runs the automatic pruning pass once (shrinking the
    feasible regions using the artifact's static-analysis bounds), then
    every candidate block is drawn from the pruned regions and bulk-rejected
    through the geometry kernel — the two hot-path optimisations of this
    codebase stacked.  Like ``"vectorized"``, the RNG stream interleaving
    differs from plain rejection by design; like ``"pruning"``, the sampled
    regions differ from the unpruned scenario's, so the strategy records its
    own golden-scene stream in the corpus.
    """

    name = "pruned-vectorized"
    mutates_scenario = True  # the pruning pass rewrites regions in place

    def __init__(self, block_size: int = 32, **prune_options):
        VectorizedSampler.__init__(self, block_size=block_size)
        self._init_pruning(**prune_options)

    def bind(self, scenario):
        _PruningMixin.bind(self, scenario)
        VectorizedSampler.bind(self, scenario)  # adaptive-block eligibility


# ---------------------------------------------------------------------------
# Direct synthesis: constructive sampling from the pruned feasible regions
# ---------------------------------------------------------------------------


@register_strategy
class DirectSampler(_PruningMixin, SamplingStrategy):
    """Constructive sampling from the pruned feasible regions.

    :meth:`bind` runs the automatic pruning pass (like ``"pruning"``), then
    compiles the pruned scenario into a :class:`~repro.synthesis.DirectPlan`:
    positions draw in O(1) from triangle fans over the pruned polygonal
    regions (or from eroded workspace fans for non-polygonal region priors),
    and heading deviations draw from the static analyzer's wrap-safe arcs
    instead of rejecting on them.  Every proposal is a sound
    over-approximation of the feasible set and every requirement is still
    re-checked on the concrete candidate, so the sampled distribution is
    *exactly* the requirement-conditioned prior — the statistical-equivalence
    oracle in :mod:`repro.fuzz.oracles` holds the strategy to that claim
    against plain rejection.

    Accepted scenes carry an :attr:`~repro.core.scene.Scene.importance_weight`
    — an online estimate of the plain-rejection acceptance probability (see
    :mod:`repro.synthesis.importance`) — and ``stats.candidates_drawn``
    counts the constructive proposal draws, so the candidate-count reduction
    against the rejection-style strategies is directly measurable (the
    engine benchmark asserts it).
    """

    name = "direct"
    mutates_scenario = True  # the pruning pass rewrites regions in place
    uses_importance_weights = True

    def __init__(self, max_proposal_attempts: Optional[int] = None, **prune_options):
        from ..synthesis import DEFAULT_PROPOSAL_ATTEMPTS

        self._init_pruning(**prune_options)
        self.max_proposal_attempts = (
            int(max_proposal_attempts)
            if max_proposal_attempts is not None
            else DEFAULT_PROPOSAL_ATTEMPTS
        )
        self.plan = None
        self._plan_scenario: Optional[Scenario] = None

    def bind(self, scenario):
        from ..synthesis import build_plan

        _PruningMixin.bind(self, scenario)
        if self._plan_scenario is not scenario:
            self.plan = build_plan(
                scenario,
                report=self.report,
                max_proposal_attempts=self.max_proposal_attempts,
            )
            self._plan_scenario = scenario

    def _draw_candidate(self, scenario, rng, stats):
        plan = self.plan
        tracker = plan.tracker if plan is not None else None
        sample = Sample(rng)
        try:
            if plan is not None:
                plan.seed(sample, rng, stats)
            concrete_objects = [
                scenic_object._concretize(sample) for scenic_object in scenario.objects
            ]
            concrete_ego = scenario.ego._concretize(sample)
            concrete_params = {
                name: concretize(value, sample) for name, value in scenario.params.items()
            }
        except RejectSample:
            if tracker is not None:
                tracker.record("sampling", False)
            raise
        if tracker is not None:
            tracker.record("sampling", True)
        ok = contained_in_workspace(
            scenario.workspace, concrete_objects, stats, kernel=self.kernel
        )
        if tracker is not None:
            tracker.record("containment", ok)
        if not ok:
            return None
        ok = no_pairwise_collisions(concrete_objects, stats, kernel=self.kernel)
        if tracker is not None:
            tracker.record("collision", ok)
        if not ok:
            return None
        ok = all_required_visible(concrete_objects, concrete_ego, stats)
        if tracker is not None:
            tracker.record("visibility", ok)
        if not ok:
            return None
        ok = check_user_requirements(scenario, sample, rng, stats)
        if tracker is not None:
            tracker.record("user", ok)
        if not ok:
            return None
        scene = Scene(concrete_objects, concrete_ego, concrete_params, scenario.workspace)
        if tracker is not None:
            scene.importance_weight = tracker.scene_weight()
        return scene


@register_strategy
class DirectFallbackSampler(DirectSampler):
    """``"direct"`` when a constructive plan exists, pruned-vectorized otherwise.

    Scenarios whose bounds never mapped to a constructive channel (no
    polygonal pruned region, no workspace fan, no deviation arcs) gain
    nothing from :class:`DirectSampler`'s per-candidate plan walk; this
    variant detects that at bind time and delegates the whole run to
    block-vectorized rejection over the (already pruned) scenario — the
    composite fast path — while keeping the ``"direct-fallback"`` name on
    the recorded stats.  :attr:`delegated` tells diagnostics which mode a
    bound instance is in.
    """

    name = "direct-fallback"

    def __init__(self, block_size: int = 32, max_proposal_attempts: Optional[int] = None, **prune_options):
        DirectSampler.__init__(
            self, max_proposal_attempts=max_proposal_attempts, **prune_options
        )
        self.block_size = max(1, int(block_size))
        self._delegate: Optional[VectorizedSampler] = None

    @property
    def delegated(self) -> bool:
        return self._delegate is not None

    def bind(self, scenario):
        DirectSampler.bind(self, scenario)
        if self.plan is not None and self.plan.is_constructive:
            self._delegate = None
        elif self._delegate is None:
            # Pruning already ran in our own bind; plain vectorized block
            # rejection over the pruned scenario IS pruned-vectorized.
            self._delegate = VectorizedSampler(block_size=self.block_size)
            self._delegate.name = self.name  # record stats under our name
            self._delegate.kernel = self.kernel
            self._delegate.bind(scenario)

    def sample(self, scenario, max_iterations, rng):
        self.bind(scenario)
        if self._delegate is not None:
            return self._delegate.sample(scenario, max_iterations, rng)
        return DirectSampler.sample(self, scenario, max_iterations, rng)

    def sample_batch(self, scenario, count, max_iterations, rng, aggregate):
        self.bind(scenario)
        if self._delegate is not None:
            return self._delegate.sample_batch(scenario, count, max_iterations, rng, aggregate)
        return DirectSampler.sample_batch(self, scenario, count, max_iterations, rng, aggregate)


__all__ = [
    "SamplingStrategy",
    "RejectionSampler",
    "PruningAwareSampler",
    "PrunedVectorizedSampler",
    "BatchSampler",
    "DirectFallbackSampler",
    "DirectSampler",
    "ParallelSampler",
    "VectorizedSampler",
    "STRATEGIES",
    "register_strategy",
    "make_strategy",
    "draw_candidate",
    "check_builtin_requirements",
    "check_user_requirements",
]

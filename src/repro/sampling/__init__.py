"""The pluggable scene-sampling subsystem.

The paper's core loop — rejection sampling of scenes against declarative
requirements (Sec. 5) — lives here as an engine with interchangeable
strategies:

* ``"rejection"`` (:class:`RejectionSampler`) — the seed behaviour, extracted;
* ``"pruning"`` (:class:`PruningAwareSampler`) — Sec. 5.2 pruning first,
  with bounds derived automatically by static requirement analysis
  (:mod:`repro.analysis`) when the scenario came from a compiled artifact;
* ``"batch"`` (:class:`BatchSampler`) — dependency-aware batched candidates
  with partial resampling of independent object groups;
* ``"parallel"`` (:class:`ParallelSampler`) — deterministic worker-pool
  batches;
* ``"vectorized"`` (:class:`VectorizedSampler`) — block candidate drawing
  with bulk geometric rejection through the numpy kernel
  (:mod:`repro.geometry.kernel`); the default for ``generate_batch``;
* ``"pruned-vectorized"`` (:class:`PrunedVectorizedSampler`) — automatic
  pruning composed with the vectorized block sampler (the stacked fast
  path);
* ``"direct"`` (:class:`DirectSampler`) — constructive sampling from the
  pruned feasible regions (:mod:`repro.synthesis`): positions draw O(1)
  from triangle fans, deviations from the analyzer's arcs, with
  importance-weight diagnostics on the accepted scenes;
* ``"direct-fallback"`` (:class:`DirectFallbackSampler`) — ``"direct"``
  when a constructive plan exists, degrading to pruned-vectorized block
  rejection when the scenario offers no constructive channel.

``SamplerEngine`` accepts a live ``Scenario``, a compiled artifact
(:func:`repro.language.compile_scenario` — the warm path that skips the
parser and interpreter), or raw Scenic source::

    from repro.sampling import SamplerEngine

    engine = SamplerEngine("ego = Object at 0 @ 0")   # compiles via the artifact cache
    scene = engine.sample(seed=0)

See ``docs/sampling.md`` for the API guide, ``docs/geometry.md`` for the
kernel underneath, and ``docs/service.md`` for the serving layer on top.
"""

from .dependency import DependencyGraph, ObjectGroup
from .engine import SamplerEngine, resolve_scenario
from .stats import AggregateStats, SceneBatch, merge_generation_stats
from .strategies import (
    STRATEGIES,
    BatchSampler,
    DirectFallbackSampler,
    DirectSampler,
    ParallelSampler,
    PrunedVectorizedSampler,
    PruningAwareSampler,
    RejectionSampler,
    SamplingStrategy,
    VectorizedSampler,
    check_builtin_requirements,
    check_user_requirements,
    draw_candidate,
    make_strategy,
    register_strategy,
)

__all__ = [
    "SamplerEngine",
    "resolve_scenario",
    "SamplingStrategy",
    "RejectionSampler",
    "PrunedVectorizedSampler",
    "PruningAwareSampler",
    "BatchSampler",
    "DirectFallbackSampler",
    "DirectSampler",
    "ParallelSampler",
    "VectorizedSampler",
    "DependencyGraph",
    "ObjectGroup",
    "AggregateStats",
    "SceneBatch",
    "merge_generation_stats",
    "STRATEGIES",
    "register_strategy",
    "make_strategy",
    "draw_candidate",
    "check_builtin_requirements",
    "check_user_requirements",
]

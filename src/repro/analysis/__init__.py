"""Static analysis of Scenic programs (Sec. 5.2's requirement analysis).

The package has three layers:

* :mod:`repro.analysis.intervals` — real and circular (heading) interval
  arithmetic, safe across the ±π branch cut;
* :mod:`repro.analysis.bounds` — the picklable :class:`PruneBounds`
  artifact cached alongside compiled scenarios;
* :mod:`repro.analysis.analyzer` — ``analyze_program``, the AST walk that
  derives the bounds.

``analyze_program`` is re-exported lazily: :mod:`repro.core.pruning`
imports the light-weight interval/bounds layers at module import time,
while the analyzer (which reaches into the language and world layers) only
loads when analysis actually runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .bounds import PRUNE_BOUNDS_VERSION, HeadingConstraint, ObjectBounds, PruneBounds
from .intervals import CircularInterval, Interval

if TYPE_CHECKING:  # pragma: no cover
    from .analyzer import analyze_program

__all__ = [
    "PRUNE_BOUNDS_VERSION",
    "CircularInterval",
    "HeadingConstraint",
    "Interval",
    "ObjectBounds",
    "PruneBounds",
    "analyze_program",
]


def __getattr__(name: str):
    if name == "analyze_program":
        from .analyzer import analyze_program

        return analyze_program
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

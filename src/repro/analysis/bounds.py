"""The ``PruneBounds`` artifact: what static analysis hands to the pruner.

``PruneBounds`` is plain picklable data — it is computed once per compiled
program (by :mod:`repro.analysis.analyzer`), cached on the
:class:`~repro.language.CompiledScenario` artifact, shipped with it through
the :class:`~repro.language.ArtifactCache` disk layer and across the
generation service's process boundary, and finally consumed by
:func:`repro.core.pruning.prune_scenario` to run the orientation (Alg. 2)
and size (Alg. 3) pruning techniques without any caller-supplied bounds.

Every bound is *sound by construction*: it over-approximates the set of
object configurations the program's hard requirements admit, so pruning
with it can only remove sample-space volume that could never appear in a
valid scene.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

#: Bumped when the meaning of any field changes; artifacts carrying bounds
#: of a different version are re-analyzed instead of trusted.
PRUNE_BOUNDS_VERSION = 1


@dataclass(frozen=True)
class HeadingConstraint:
    """A relative-heading constraint between two field-aligned objects.

    The allowed arc is ``heading(partner) - heading(self) ∈ center ±
    half_width`` (a circular interval — it may straddle ±π), valid whenever
    the two objects are within ``max_distance`` metres (``M`` in Alg. 2).
    ``deviation`` is the *total* heading slack: the sum of both objects'
    bounds on how far their actual heading may deviate from the field
    direction at their position (δ_self + δ_partner).  ``half_width < 0``
    encodes a statically *empty* constraint: the program's hard requirements
    admit no relative heading at all, so the scenario is infeasible.
    """

    partner: int
    center: float
    half_width: float
    max_distance: float
    deviation: float = 0.0
    source: str = ""

    @property
    def is_empty(self) -> bool:
        return self.half_width < 0.0


@dataclass(frozen=True)
class ObjectBounds:
    """Static pruning facts about one scenario object (by scenario index)."""

    index: int
    class_name: str = ""
    #: Lower bound on the object's centre-to-edge distance (containment
    #: pruning erodes containers by this much).  0 = unknown.
    min_radius: float = 0.0
    #: Tightest distance bound to any anchored partner (diagnostics; the
    #: per-constraint ``max_distance`` is what the algorithms consume).
    max_distance: Optional[float] = None
    heading_constraints: Tuple[HeadingConstraint, ...] = ()
    #: Algorithm 3 inputs: cells narrower than ``min_configuration_width``
    #: can only host this object within ``narrowness_distance`` of another
    #: cell.  ``None`` disables size pruning for the object.
    min_configuration_width: Optional[float] = None
    narrowness_distance: Optional[float] = None


@dataclass(frozen=True)
class PruneBounds:
    """Per-object pruning bounds derived by static requirement analysis."""

    version: int = PRUNE_BOUNDS_VERSION
    objects: Tuple[ObjectBounds, ...] = ()
    #: Whether the AST→object-index mapping was verified against the
    #: artifact metadata.  When ``False``, ``objects`` is empty and pruning
    #: falls back to containment-only behaviour.
    mapped: bool = False
    #: Human-readable analysis log (what fired, what was skipped and why).
    notes: Tuple[str, ...] = ()

    def for_object(self, index: int) -> Optional[ObjectBounds]:
        for entry in self.objects:
            if entry.index == index:
                return entry
        return None

    @property
    def has_orientation_constraints(self) -> bool:
        return any(entry.heading_constraints for entry in self.objects)

    def containment_only(self) -> "PruneBounds":
        """A copy with every orientation/size bound stripped.

        This is the benchmark baseline: containment pruning (min-fit radii)
        still applies, but Algorithms 2 and 3 are disabled.
        """
        return replace(
            self,
            objects=tuple(
                replace(
                    entry,
                    heading_constraints=(),
                    min_configuration_width=None,
                    narrowness_distance=None,
                )
                for entry in self.objects
            ),
            notes=self.notes + ("containment-only copy",),
        )

    def summary(self) -> Dict[str, int]:
        return {
            "objects": len(self.objects),
            "heading_constraints": sum(
                len(entry.heading_constraints) for entry in self.objects
            ),
            "with_min_radius": sum(1 for entry in self.objects if entry.min_radius > 0),
            "with_size_bounds": sum(
                1 for entry in self.objects if entry.min_configuration_width is not None
            ),
        }


__all__ = [
    "PRUNE_BOUNDS_VERSION",
    "HeadingConstraint",
    "ObjectBounds",
    "PruneBounds",
]

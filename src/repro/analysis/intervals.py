"""Interval arithmetic for the static requirement analyzer (Sec. 5.2).

Two abstractions:

* :class:`Interval` — a closed interval of reals, the abstract value the
  analyzer propagates through statically-evaluable Scenic expressions
  (``(a, b)`` ranges, ``deg`` conversions, arithmetic on constants).
* :class:`CircularInterval` — an arc of headings on the circle, represented
  as ``center ± half_width`` with the center normalized to ``(-pi, pi]``.

The circular representation is what makes relative-heading constraints that
straddle the ±π branch cut safe: an "oncoming traffic" constraint like
``[170°, 190°]`` (or, with normalized endpoints, ``[170°, -170°]``) is a
20°-wide arc through π, *not* the 340°-wide complement — naive
``(low + high) / 2`` midpoint arithmetic on normalized endpoints collapses
it to the wrong side of the circle.  All constructors here take the sweep
*anticlockwise from low to high*, so the arc is unambiguous.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.utils import TWO_PI, normalize_angle


@dataclass(frozen=True)
class Interval:
    """A closed real interval ``[low, high]`` (the analyzer's abstract scalar)."""

    low: float
    high: float

    def __post_init__(self):
        if self.low > self.high:
            raise ValueError(f"empty interval [{self.low}, {self.high}]")

    @classmethod
    def point(cls, value: float) -> "Interval":
        return cls(float(value), float(value))

    @property
    def is_point(self) -> bool:
        return self.low == self.high

    @property
    def magnitude(self) -> float:
        """Largest absolute value the interval contains."""
        return max(abs(self.low), abs(self.high))

    @property
    def min_magnitude(self) -> float:
        """Smallest absolute value the interval contains."""
        if self.low <= 0.0 <= self.high:
            return 0.0
        return min(abs(self.low), abs(self.high))

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.low + other.low, self.high + other.high)

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.low - other.high, self.high - other.low)

    def __neg__(self) -> "Interval":
        return Interval(-self.high, -self.low)

    def __mul__(self, other: "Interval") -> "Interval":
        products = (
            self.low * other.low,
            self.low * other.high,
            self.high * other.low,
            self.high * other.high,
        )
        return Interval(min(products), max(products))

    def divided_by(self, other: "Interval") -> Optional["Interval"]:
        """Interval division; ``None`` when the divisor straddles zero."""
        if other.low <= 0.0 <= other.high:
            return None
        quotients = (
            self.low / other.low,
            self.low / other.high,
            self.high / other.low,
            self.high / other.high,
        )
        return Interval(min(quotients), max(quotients))

    def abs(self) -> "Interval":
        return Interval(self.min_magnitude, self.magnitude)

    def hull(self, other: "Interval") -> "Interval":
        return Interval(min(self.low, other.low), max(self.high, other.high))

    def scaled(self, factor: float) -> "Interval":
        return self * Interval.point(factor)

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


@dataclass(frozen=True)
class CircularInterval:
    """An arc of headings: all angles within ``half_width`` of ``center``.

    ``half_width >= pi`` means the full circle (no constraint); a zero
    half-width is the single heading ``center``.  The center is stored
    normalized to ``(-pi, pi]``, so arcs through the branch cut (e.g. the
    oncoming-traffic arc around π) behave exactly like any other arc.
    """

    center: float
    half_width: float

    def __post_init__(self):
        if self.half_width < 0:
            raise ValueError(f"negative arc half-width {self.half_width}")
        object.__setattr__(self, "center", normalize_angle(self.center))
        object.__setattr__(self, "half_width", min(float(self.half_width), math.pi))

    @classmethod
    def from_sweep(cls, low: float, high: float) -> "CircularInterval":
        """The arc swept anticlockwise from *low* to *high*.

        Endpoints may be given unnormalized (``(170°, 190°)``) or normalized
        (``(170°, -170°)``); either way the arc is the sweep from *low*
        anticlockwise to *high* — an interval straddling ±π stays a short
        arc through π and never collapses to its complement.  A sweep of
        2π or more is the full circle.
        """
        width = (high - low) % TWO_PI if high != low else 0.0
        if high - low >= TWO_PI:
            width = TWO_PI
        return cls(low + width / 2.0, width / 2.0)

    @classmethod
    def full(cls) -> "CircularInterval":
        return cls(0.0, math.pi)

    @property
    def is_full(self) -> bool:
        return self.half_width >= math.pi

    def contains(self, angle: float, slack: float = 0.0) -> bool:
        if self.half_width + slack >= math.pi:
            return True
        return abs(normalize_angle(angle - self.center)) <= self.half_width + slack

    def negated(self) -> "CircularInterval":
        """The arc of ``-h`` for every ``h`` in this arc (mirror through 0)."""
        return CircularInterval(-self.center, self.half_width)

    def shifted(self, offset: float) -> "CircularInterval":
        return CircularInterval(self.center + offset, self.half_width)

    def widened(self, slack: float) -> "CircularInterval":
        return CircularInterval(self.center, min(self.half_width + slack, math.pi))

    def intersect(self, other: "CircularInterval") -> Optional["CircularInterval"]:
        """A sound (possibly over-approximate) intersection; ``None`` if empty.

        The true intersection of two arcs can be two disjoint arcs; in that
        case the smaller input arc is returned, which over-approximates the
        intersection — sound for pruning, where the constraint set may only
        ever be *enlarged*.  An exactly-empty intersection returns ``None``.
        """
        if self.is_full:
            return other
        if other.is_full:
            return self
        gap = abs(normalize_angle(other.center - self.center))
        if gap > self.half_width + other.half_width:
            return None  # exactly disjoint
        smaller, larger = sorted((self, other), key=lambda arc: arc.half_width)
        if gap + smaller.half_width <= larger.half_width:
            return smaller  # fully nested
        # When the two arcs also overlap (with positive measure) on the far
        # side of the circle — a two-arc intersection — returning the
        # smaller arc keeps every allowed heading.
        if smaller.half_width + larger.half_width - (TWO_PI - gap) > 1e-12:
            return smaller
        # Single overlap: compute endpoints in a frame centred on this arc.
        other_center = normalize_angle(other.center - self.center)
        low = max(-self.half_width, other_center - other.half_width)
        high = min(self.half_width, other_center + other.half_width)
        if low > high:
            return None
        return CircularInterval(self.center + (low + high) / 2.0, (high - low) / 2.0)

    def endpoints(self) -> Tuple[float, float]:
        """Normalized ``(low, high)`` endpoints of the anticlockwise sweep."""
        return (
            normalize_angle(self.center - self.half_width),
            normalize_angle(self.center + self.half_width),
        )


__all__ = ["Interval", "CircularInterval"]

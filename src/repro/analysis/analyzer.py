"""Static requirement analysis for automatic pruning (Sec. 5.2).

``analyze_program`` walks a compiled Scenic AST (the
:class:`~repro.language.CompiledScenario` ``program``), cross-checks what it
finds against the artifact's :class:`~repro.language.ArtifactMetadata`, and
derives the bounds the pruning algorithms of Sec. 5.2 need — without the
caller supplying anything:

* **max-distance bounds** ``M`` between object pairs, from ``offset by``
  specifiers with statically bounded offsets, ``visible`` specifiers,
  ``X can see Y`` requirements, ``(distance to X) <= d`` requirements, and
  the built-in ``requireVisible`` constraint;
* **relative-heading arcs** between field-aligned objects, from hard
  ``relative heading of X`` comparisons (including ``abs(...)`` forms, and
  arcs straddling ±π) and from the *oncoming pattern* — an object placed
  ``offset by`` a bounded box ahead of a field-aligned anchor that it must
  ``can see`` through a narrow view cone;
* **minimum-fit radii** from the class table's width/height lower bounds
  (for the GTA world, the minimum over the 13 car models), which drive
  containment pruning, plus the Algorithm 3 narrowness inputs.

The analysis is *conservative*: every extracted bound over-approximates
what the program's hard requirements admit.  Soft requirements
(``require[p]``) are ignored — they do not always hold, so pruning on them
would change the induced distribution.  When the AST→object mapping cannot
be established statically (objects created inside loops, functions or
helpers like ``createPlatoonAt``), the analyzer returns an *unmapped*
:class:`~repro.analysis.bounds.PruneBounds` and pruning degrades to the
sound containment-only behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..language import ast_nodes as ast
from .bounds import HeadingConstraint, ObjectBounds, PruneBounds
from .intervals import CircularInterval, Interval

#: Class names that never register a scenario object (helpers like the
#: ``spot`` OrientedPoint in the badly-parked example).
NON_OBJECT_CLASSES = {"Point", "OrientedPoint"}

#: Library functions known to create scenario objects internally; a call to
#: any of these makes the AST→object mapping untrustworthy.
KNOWN_CREATOR_FUNCTIONS = {"createPlatoonAt", "carAheadOfCar"}


# ---------------------------------------------------------------------------
# Abstract values
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VecInterval:
    """A box of vectors: independent intervals for the two coordinates."""

    x: Interval
    y: Interval

    @property
    def max_norm(self) -> float:
        return math.hypot(self.x.magnitude, self.y.magnitude)

    @property
    def min_norm(self) -> float:
        return math.hypot(self.x.min_magnitude, self.y.min_magnitude)

    def heading_cone(self) -> Optional[Interval]:
        """Bounds on the local heading of the box's vectors (None if unbounded).

        Headings follow the repo convention (anticlockwise from +y, i.e.
        ``atan2(-x, y)``); the cone is only derivable when the box lies
        strictly ahead (``y > 0``).  The heading is monotone decreasing in
        x; in y it widens *away* from 0, so each endpoint's extreme sits at
        ``y.low`` only when its x bound reaches the centreline — a box
        entirely on one side attains the near-0 endpoint at ``y.high``.
        """
        if self.y.low <= 0:
            return None
        low = math.atan2(-self.x.high, self.y.low if self.x.high >= 0 else self.y.high)
        high = math.atan2(-self.x.low, self.y.low if self.x.low <= 0 else self.y.high)
        return Interval(low, high)


#: Unknown abstract value.
UNKNOWN = None


# ---------------------------------------------------------------------------
# Per-class static facts
# ---------------------------------------------------------------------------


@dataclass
class ClassFacts:
    """What the analyzer statically knows about one Scenic class."""

    name: str
    is_scenario_object: bool = True
    #: The object's heading is the orientation field at its position plus a
    #: bounded deviation.  ``None`` deviation = not field-aligned.
    deviation: Optional[Interval] = None
    width: Optional[Interval] = None
    height: Optional[Interval] = None
    view_distance: Optional[float] = None  # upper bound, metres
    view_angle: Optional[float] = None  # upper bound, radians
    require_visible: Optional[bool] = None

    @property
    def min_radius(self) -> float:
        """Sound lower bound on the centre-to-edge distance (0 = unknown)."""
        if self.width is None or self.height is None:
            return 0.0
        low = min(self.width.low, self.height.low)
        return max(0.0, low / 2.0)

    @property
    def max_corner_radius(self) -> Optional[float]:
        """Sound upper bound on the centre-to-corner distance (None = unknown)."""
        if self.width is None or self.height is None:
            return None
        return math.hypot(self.width.magnitude, self.height.magnitude) / 2.0

    def copy(self) -> "ClassFacts":
        return replace(self)


def _facts_from_python_class(
    name: str, python_class: Any, profiles: Sequence[Any] = ()
) -> ClassFacts:
    """Derive facts for a world-library class by inspecting its defaults.

    *profiles* are the :class:`~repro.worlds.profile.AnalysisProfile` hooks
    of the imported worlds; the first hook that recognizes the class may
    patch the width/height/deviation intervals (e.g. field-aligned classes
    whose dimensions come from a model table).
    """
    from ..core.distributions import supporting_interval
    from ..core.lazy import is_lazy
    from ..core.objects import Object

    facts = ClassFacts(name=name)
    try:
        facts.is_scenario_object = issubclass(python_class, Object)
    except TypeError:
        facts.is_scenario_object = False
    defaults = {}
    try:
        defaults = python_class._property_defaults()
    except Exception:
        return facts

    def static_interval(prop: str) -> Optional[Interval]:
        factory = defaults.get(prop)
        if factory is None:
            return None
        try:
            value = factory()
        except Exception:
            return None
        if is_lazy(value):
            return None
        low, high = supporting_interval(value)
        if low is None or high is None:
            return None
        return Interval(low, high)

    facts.width = static_interval("width")
    facts.height = static_interval("height")
    view = static_interval("viewDistance") or static_interval("visibleDistance")
    facts.view_distance = view.high if view is not None else None
    angle = static_interval("viewAngle")
    facts.view_angle = angle.high if angle is not None else None
    visible = defaults.get("requireVisible")
    if visible is not None:
        try:
            value = visible()
            if isinstance(value, bool):
                facts.require_visible = value
        except Exception:
            pass

    # World-specific patches (field alignment, model-table dimensions)
    # come from the imported worlds' analysis profiles; a class no profile
    # recognizes keeps the sound defaults derived above.
    for profile in profiles:
        if profile is None or profile.class_facts is None:
            continue
        try:
            patch = profile.class_facts(python_class, static_interval)
        except Exception:
            patch = None
        if not patch:
            continue
        if "deviation" in patch:
            facts.deviation = patch["deviation"]
        if "width" in patch:
            facts.width = patch["width"]
        if "height" in patch:
            facts.height = patch["height"]
        break
    return facts


# ---------------------------------------------------------------------------
# The analyzer
# ---------------------------------------------------------------------------


@dataclass
class _Creation:
    """One statically-mapped object creation."""

    order: int  # creation order among scenario objects
    node: ast.ObjectCreation
    name: Optional[str] = None  # variable it was assigned to, if any
    facts: Optional[ClassFacts] = None
    offset_box: Optional[VecInterval] = None  # ``offset by`` box, local frame
    offset_anchor: Optional[int] = None  # creation order of the anchor (ego)
    visible_from: Optional[int] = None  # ``visible [from X]`` viewer


@dataclass
class _PairBound:
    max_distance: float
    source: str


class _Analyzer:
    def __init__(self, program: ast.Program, metadata: Any):
        self.program = program
        self.metadata = metadata
        self.notes: List[str] = []
        self.env: Dict[str, Any] = {}
        self.creations: List[_Creation] = []
        self.by_name: Dict[str, _Creation] = {}
        self.ego: Optional[_Creation] = None
        self.mapped = True
        self.world_namespace: Dict[str, Any] = {}
        # Analysis hooks of the imported worlds (in import order), plus the
        # union of their field-deviation property names and model-table
        # symbols (see AnalysisProfile).
        self.analysis_profiles: List[Any] = []
        self.deviation_properties: Set[str] = set()
        self.model_symbols: Set[str] = set()
        self.class_defs: Dict[str, ast.ClassDefinition] = {}
        self.creator_functions: Set[str] = set(KNOWN_CREATOR_FUNCTIONS)
        self.facts_cache: Dict[str, ClassFacts] = {}
        # Constraints, keyed by unordered creation-order pairs.
        self.distance_bounds: Dict[Tuple[int, int], List[_PairBound]] = {}
        # Arcs of heading(b) - heading(a), keyed by the *ordered* pair (a, b).
        self.heading_arcs: Dict[Tuple[int, int], List[Tuple[CircularInterval, str]]] = {}
        self.infeasible_pairs: Dict[Tuple[int, int], str] = {}

    def note(self, message: str) -> None:
        self.notes.append(message)

    def bail(self, reason: str) -> None:
        if self.mapped:
            self.mapped = False
            self.note(f"mapping abandoned: {reason}")

    # -- abstract expression evaluation ---------------------------------------

    def eval(self, node: Optional[ast.Node]) -> Any:
        """Abstract-evaluate *node* to an Interval/VecInterval/str, or None."""
        if node is None:
            return UNKNOWN
        if isinstance(node, ast.NumberLiteral):
            return Interval.point(node.value)
        if isinstance(node, ast.StringLiteral):
            return node.value
        if isinstance(node, ast.Degrees):
            value = self.eval(node.value)
            return value.scaled(math.pi / 180.0) if isinstance(value, Interval) else UNKNOWN
        if isinstance(node, ast.IntervalDistribution):
            low, high = self.eval(node.low), self.eval(node.high)
            if isinstance(low, Interval) and isinstance(high, Interval):
                if low.low <= high.high:
                    return Interval(min(low.low, high.low), max(low.high, high.high))
            return UNKNOWN
        if isinstance(node, ast.VectorLiteral):
            x, y = self.eval(node.x), self.eval(node.y)
            if isinstance(x, Interval) and isinstance(y, Interval):
                return VecInterval(x, y)
            return UNKNOWN
        if isinstance(node, ast.Name):
            return self.env.get(node.identifier, UNKNOWN)
        if isinstance(node, ast.UnaryOp) and node.operator == "-":
            value = self.eval(node.operand)
            return -value if isinstance(value, Interval) else UNKNOWN
        if isinstance(node, ast.BinaryOp):
            left, right = self.eval(node.left), self.eval(node.right)
            if isinstance(left, Interval) and isinstance(right, Interval):
                if node.operator == "+":
                    return left + right
                if node.operator == "-":
                    return left - right
                if node.operator == "*":
                    return left * right
                if node.operator == "/":
                    return left.divided_by(right)
            return UNKNOWN
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        return UNKNOWN

    def _eval_call(self, node: ast.Call) -> Any:
        function = node.function
        if isinstance(function, ast.Name):
            name = function.identifier
            if name == "abs" and len(node.args) == 1:
                value = self.eval(node.args[0])
                return value.abs() if isinstance(value, Interval) else UNKNOWN
            if name == "resample" and len(node.args) == 1:
                return self.eval(node.args[0])
            if name == "Uniform" and node.args:
                values = [self.eval(arg) for arg in node.args]
                if all(isinstance(v, Interval) for v in values):
                    hull = values[0]
                    for value in values[1:]:
                        hull = hull.hull(value)
                    return hull
        return UNKNOWN

    # -- statement scan ---------------------------------------------------------

    def scan(self) -> None:
        for statement in self.program.statements:
            if not self.mapped:
                return
            self._scan_statement(statement)

    def _scan_statement(self, statement: ast.Node) -> None:
        if isinstance(statement, ast.ImportStatement):
            self._load_world(statement.module)
            return
        if isinstance(statement, ast.ClassDefinition):
            self.class_defs[statement.name] = statement
            if any(_contains_creation(expr) for _name, expr in statement.properties):
                self.bail(f"class {statement.name} has creating property defaults")
            return
        if isinstance(statement, ast.FunctionDefinition):
            if any(_contains_creation(child) for child in statement.body):
                self.creator_functions.add(statement.name)
            return
        if isinstance(statement, ast.Assignment):
            self._scan_assignment(statement)
            return
        if isinstance(statement, ast.ExpressionStatement):
            expression = statement.expression
            if isinstance(expression, ast.ObjectCreation):
                self._record_creation(expression, name=None)
                return
            if _contains_creation(expression) or self._calls_creator(expression):
                self.bail(f"dynamic object creation at line {statement.line}")
            return
        if isinstance(statement, ast.RequireStatement):
            if statement.probability is None:  # soft requirements must not prune
                self._scan_require(statement.condition)
            return
        if isinstance(statement, (ast.ParamStatement, ast.MutateStatement)):
            return  # mutation is handled per-object at prune time
        # Control flow: creations inside are unmappable; assignments inside
        # make the assigned names unknown (the branch may or may not run) —
        # including which *object* a name refers to, so creation bindings
        # are invalidated too, and a conditional ego rebinding gives up.
        if isinstance(statement, (ast.IfStatement, ast.ForStatement, ast.WhileStatement)):
            if _contains_creation(statement) or self._calls_creator(statement):
                self.bail(f"object creation under control flow at line {statement.line}")
                return
            assigned = _assigned_names(statement)
            if "ego" in assigned:
                self.bail(f"ego reassigned under control flow at line {statement.line}")
                return
            for name in assigned:
                self.env.pop(name, None)
                self.by_name.pop(name, None)
            return
        # Anything else (return at top level etc.) carries no creations.
        if _contains_creation(statement) or self._calls_creator(statement):
            self.bail(f"unanalyzed creating statement at line {statement.line}")

    def _scan_assignment(self, statement: ast.Assignment) -> None:
        target = statement.target
        value = statement.value
        if isinstance(value, ast.ObjectCreation):
            creation = self._record_creation(
                value, name=target.identifier if isinstance(target, ast.Name) else None
            )
            if (
                creation is not None
                and isinstance(target, ast.Name)
                and target.identifier == "ego"
            ):
                self.ego = creation
            return
        if _contains_creation(value) or self._calls_creator(value):
            self.bail(f"dynamic object creation in assignment at line {statement.line}")
            return
        if isinstance(target, ast.Name):
            if target.identifier == "ego":
                # ``ego = existingObject`` re-points the ego.
                existing = (
                    self.by_name.get(value.identifier)
                    if isinstance(value, ast.Name)
                    else None
                )
                if existing is not None:
                    self.ego = existing
                else:
                    self.bail(f"ego rebound to an unanalyzable value at line {statement.line}")
                return
            # Any reassignment invalidates a previous creation binding for
            # the name; only a recognized alias (``c2 = c``) re-points it.
            self.by_name.pop(target.identifier, None)
            abstract = self.eval(value)
            if abstract is UNKNOWN:
                self.env.pop(target.identifier, None)
                if isinstance(value, ast.Name) and value.identifier in self.by_name:
                    self.by_name[target.identifier] = self.by_name[value.identifier]
            else:
                self.env[target.identifier] = abstract

    def _calls_creator(self, node: ast.Node) -> bool:
        for child in _walk(node):
            if isinstance(child, ast.Call) and isinstance(child.function, ast.Name):
                if child.function.identifier in self.creator_functions:
                    return True
        return False

    def _load_world(self, module: str) -> None:
        try:
            from ..worlds.registry import analysis_profile, load_world

            namespace, _workspace = load_world(module)
            profile = analysis_profile(module)
        except Exception:
            namespace = None
            profile = None
        if namespace:
            self.world_namespace.update(namespace)
        if profile is not None and profile not in self.analysis_profiles:
            self.analysis_profiles.append(profile)
            self.deviation_properties.update(profile.deviation_properties)
            self.model_symbols.update(profile.model_symbols)

    # -- creations ---------------------------------------------------------------

    def _record_creation(
        self, node: ast.ObjectCreation, name: Optional[str]
    ) -> Optional[_Creation]:
        facts = self._facts_for_class(node.class_name)
        if not facts.is_scenario_object:
            if name is not None:
                self.by_name.pop(name, None)
            return None  # helper Points/OrientedPoints never join the scenario
        creation = _Creation(order=len(self.creations), node=node, name=name, facts=facts.copy())
        self.creations.append(creation)
        if name is not None:
            self.by_name[name] = creation
        self._apply_specifiers(creation)
        return creation

    def _facts_for_class(self, class_name: str) -> ClassFacts:
        cached = self.facts_cache.get(class_name)
        if cached is not None:
            return cached
        facts: Optional[ClassFacts] = None
        definition = self.class_defs.get(class_name)
        if definition is not None:
            base_name = definition.superclass or "Object"
            facts = self._facts_for_class(base_name).copy()
            facts.name = class_name
            self._apply_class_overrides(facts, definition)
        else:
            python_class = self.world_namespace.get(class_name)
            if python_class is None and class_name in NON_OBJECT_CLASSES:
                facts = ClassFacts(name=class_name, is_scenario_object=False)
            elif python_class is None and class_name == "Object":
                from ..core.objects import Object

                facts = _facts_from_python_class(class_name, Object, self.analysis_profiles)
            elif python_class is not None:
                facts = _facts_from_python_class(class_name, python_class, self.analysis_profiles)
            else:
                facts = ClassFacts(name=class_name)
        self.facts_cache[class_name] = facts
        return facts

    def _apply_class_overrides(self, facts: ClassFacts, definition: ast.ClassDefinition) -> None:
        for prop, expr in definition.properties:
            self._apply_property(facts, prop, expr)

    def _apply_property(self, facts: ClassFacts, prop: str, expr: ast.Node) -> None:
        """Fold one ``with``-style property override into *facts* (soundly)."""
        if prop == "width":
            value = self.eval(expr)
            facts.width = value if isinstance(value, Interval) else None
        elif prop == "height":
            value = self.eval(expr)
            facts.height = value if isinstance(value, Interval) else None
        elif prop in self.deviation_properties:
            value = self.eval(expr)
            if facts.deviation is not None:
                facts.deviation = value if isinstance(value, Interval) else None
        elif prop in ("visibleDistance", "viewDistance"):
            value = self.eval(expr)
            facts.view_distance = value.high if isinstance(value, Interval) else None
        elif prop == "viewAngle":
            value = self.eval(expr)
            facts.view_angle = value.high if isinstance(value, Interval) else None
        elif prop == "requireVisible":
            if isinstance(expr, ast.BooleanLiteral):
                facts.require_visible = expr.value
            else:
                facts.require_visible = None
        elif prop == "model":
            dims = self._model_dimensions(expr)
            facts.width, facts.height = dims if dims is not None else (None, None)
        elif prop == "heading":
            facts.deviation = self._heading_deviation(expr)

    def _model_table(self, symbol: str) -> Optional[Any]:
        """The model table *symbol* binds, when an imported world declares it."""
        if symbol not in self.model_symbols:
            return None
        table = self.world_namespace.get(symbol)
        if table is None or not isinstance(getattr(table, "models", None), dict):
            return None
        return table

    def _model_dimensions(self, expr: ast.Node) -> Optional[Tuple[Interval, Interval]]:
        """Width/height bounds for a recognizable ``model`` expression.

        Recognizes ``<Table>.models['NAME']`` and ``<Table>.defaultModel()``
        / ``<Table>.default_model()`` where ``<Table>`` is a model symbol
        declared by an imported world's analysis profile.
        """
        if isinstance(expr, ast.Call) and isinstance(expr.function, ast.Name):
            if expr.function.identifier == "resample" and len(expr.args) == 1:
                return self._model_dimensions(expr.args[0])
        if (
            isinstance(expr, ast.Subscript)
            and isinstance(expr.target, ast.Attribute)
            and isinstance(expr.target.target, ast.Name)
            and expr.target.attribute == "models"
            and isinstance(expr.index, ast.StringLiteral)
        ):
            table = self._model_table(expr.target.target.identifier)
            if table is not None:
                model = table.models.get(expr.index.value)
                if model is not None:
                    return Interval.point(model.width), Interval.point(model.height)
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.function, ast.Attribute)
            and isinstance(expr.function.target, ast.Name)
            and expr.function.attribute in ("defaultModel", "default_model")
        ):
            table = self._model_table(expr.function.target.identifier)
            if table is not None:
                widths = [model.width for model in table.models.values()]
                heights = [model.height for model in table.models.values()]
                return Interval(min(widths), max(widths)), Interval(min(heights), max(heights))
        return None

    def _heading_deviation(self, expr: ast.Node) -> Optional[Interval]:
        """Deviation interval when a heading expression is field-relative."""
        if isinstance(expr, ast.RelativeTo) and self._is_orientation_field(expr.reference):
            value = self.eval(expr.value)
            return value if isinstance(value, Interval) else None
        if self._is_orientation_field(expr):
            return Interval.point(0.0)
        return None

    def _is_orientation_field(self, node: ast.Node) -> bool:
        from ..core.vectorfields import VectorField

        return isinstance(node, ast.Name) and isinstance(
            self.world_namespace.get(node.identifier), VectorField
        )

    def _apply_specifiers(self, creation: _Creation) -> None:
        facts = creation.facts
        for spec in creation.node.specifiers:
            kind = spec.kind
            if kind == "with" and spec.name:
                self._apply_property(facts, spec.name, spec.operands[0])
            elif kind == "offset by" and spec.operands:
                value = self.eval(spec.operands[0])
                if isinstance(value, VecInterval) and self.ego is not None:
                    creation.offset_box = value
                    creation.offset_anchor = self.ego.order
            elif kind == "visible":
                viewer = self.ego
                if spec.operands:
                    operand = spec.operands[0]
                    viewer = (
                        self.by_name.get(operand.identifier)
                        if isinstance(operand, ast.Name)
                        else None
                    )
                if viewer is not None:
                    creation.visible_from = viewer.order
            elif kind == "facing" and spec.operands:
                facts.deviation = self._heading_deviation(spec.operands[0])
            elif kind in ("facing toward", "facing away from", "apparently facing"):
                facts.deviation = None

    # -- requirements ------------------------------------------------------------

    def _scan_require(self, condition: ast.Node) -> None:
        for conjunct in _conjuncts(condition):
            self._scan_conjunct(conjunct)

    def _resolve_object(self, node: Optional[ast.Node]) -> Optional[_Creation]:
        if node is None:
            return self.ego
        if isinstance(node, ast.Name):
            if node.identifier == "ego":
                return self.ego
            return self.by_name.get(node.identifier)
        return None

    def _scan_conjunct(self, node: ast.Node) -> None:
        if isinstance(node, ast.CanSee):
            viewer = self._resolve_object(node.viewer)
            target = self._resolve_object(node.target)
            if viewer is not None and target is not None and viewer is not target:
                self._add_can_see(viewer, target)
            return
        if isinstance(node, ast.Comparison):
            self._scan_comparison(node)

    def _scan_comparison(self, node: ast.Comparison) -> None:
        operator = node.operator
        left, right = node.left, node.right
        # Normalize to <constrained expr> <op> <static bound>.
        bound = self.eval(right)
        expr = left
        if not isinstance(bound, Interval):
            bound = self.eval(left)
            expr = right
            operator = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(operator, operator)
        if not isinstance(bound, Interval):
            return
        upper = operator in ("<", "<=")
        lower = operator in (">", ">=")
        if not (upper or lower):
            return

        if isinstance(expr, ast.DistanceTo) and upper:
            origin = self._resolve_object(expr.origin)
            target = self._resolve_object(expr.target)
            if origin is not None and target is not None and origin is not target:
                self._add_distance(origin, target, bound.high, "distance requirement")
            return

        relative, absolute = _relative_heading_operand(expr)
        if relative is None:
            return
        origin = self._resolve_object(relative.reference)
        target = self._resolve_object(relative.heading)
        if origin is None or target is None or origin is target:
            return
        # The arc of heading(target) - heading(origin) this conjunct allows.
        if absolute:
            if upper:
                arc = CircularInterval.from_sweep(-bound.high, bound.high)
            else:  # abs(rh) >= a: the complement arc through pi
                arc = CircularInterval.from_sweep(bound.low, 2 * math.pi - bound.low)
        else:
            # relative heading is normalized into (-pi, pi]; one-sided
            # comparisons clamp against those inherent limits.
            if upper:
                arc = CircularInterval.from_sweep(-math.pi, bound.high)
            else:
                arc = CircularInterval.from_sweep(bound.low, math.pi)
        self._add_heading_arc(origin, target, arc, "relative-heading requirement")

    # -- constraint recording ------------------------------------------------------

    def _add_distance(self, a: _Creation, b: _Creation, bound: float, source: str) -> None:
        key = (min(a.order, b.order), max(a.order, b.order))
        self.distance_bounds.setdefault(key, []).append(_PairBound(bound, source))

    def _add_heading_arc(
        self, origin: _Creation, target: _Creation, arc: CircularInterval, source: str
    ) -> None:
        key = (origin.order, target.order)
        self.heading_arcs.setdefault(key, []).append((arc, source))

    def _add_can_see(self, viewer: _Creation, target: _Creation) -> None:
        # Distance: the target is visible when its centre *or a corner* lies
        # in the view region, so the centre distance is bounded by the view
        # distance plus the target's corner radius.
        corner = target.facts.max_corner_radius
        view_distance = viewer.facts.view_distance
        if view_distance is not None and corner is not None:
            self._add_distance(viewer, target, view_distance + corner, "can see")
        # The oncoming pattern (Alg. 2's flagship derivation): the viewer is
        # placed ``offset by`` a bounded box in the target's frame and must
        # see the target through a bounded cone, so the relative heading
        # between the two field directions is pinned to an arc around pi.
        if (
            viewer.offset_anchor is not None
            and viewer.offset_anchor == target.order
            and viewer.offset_box is not None
            and viewer.facts.view_angle is not None
            and view_distance is not None
            and corner is not None
        ):
            cone = viewer.offset_box.heading_cone()
            min_distance = viewer.offset_box.min_norm
            if cone is None or min_distance <= corner:
                return
            slack = viewer.facts.view_angle / 2.0 + math.asin(corner / min_distance)
            arc = CircularInterval.from_sweep(
                math.pi + cone.low - slack, math.pi + cone.high + slack
            )
            # heading(viewer) - heading(target) ∈ arc.
            self._add_heading_arc(target, viewer, arc, "can-see cone (oncoming pattern)")

    def _implicit_pair_bounds(self) -> None:
        """Distance bounds implied by specifiers and built-in requirements."""
        for creation in self.creations:
            if creation.offset_box is not None and creation.offset_anchor is not None:
                anchor = self.creations[creation.offset_anchor]
                self._add_distance(
                    anchor, creation, creation.offset_box.max_norm, "offset by"
                )
            if creation.visible_from is not None:
                viewer = self.creations[creation.visible_from]
                if viewer.facts.view_distance is not None:
                    # The *centre* is sampled inside the view region, so the
                    # view distance bounds it directly (no corner slack).
                    self._add_distance(
                        viewer, creation, viewer.facts.view_distance, "visible specifier"
                    )
            if (
                creation.facts.require_visible
                and self.ego is not None
                and creation is not self.ego
            ):
                view_distance = self.ego.facts.view_distance
                corner = creation.facts.max_corner_radius
                if view_distance is not None and corner is not None:
                    self._add_distance(
                        self.ego, creation, view_distance + corner, "requireVisible"
                    )

    # -- assembly ------------------------------------------------------------------

    def verify_mapping(self) -> bool:
        """Cross-check the statically collected creations against metadata."""
        if not self.mapped:
            return False
        summaries = getattr(self.metadata, "objects", ())
        if len(self.creations) != len(summaries):
            self.bail(
                f"saw {len(self.creations)} creations but the scenario has "
                f"{len(summaries)} objects"
            )
            return False
        for creation, summary in zip(self.creations, summaries):
            if creation.node.class_name != summary.class_name:
                self.bail(
                    f"object {summary.index} is a {summary.class_name}, "
                    f"analysis saw {creation.node.class_name}"
                )
                return False
        if self.ego is not None and self.ego.order != getattr(self.metadata, "ego_index", 0):
            self.bail(
                f"ego mapped to index {self.ego.order} but the scenario's ego "
                f"is index {self.metadata.ego_index}"
            )
            return False
        return True

    def result(self) -> PruneBounds:
        if not self.verify_mapping():
            return PruneBounds(objects=(), mapped=False, notes=tuple(self.notes))
        self._implicit_pair_bounds()

        def tightest(a: int, b: int) -> Optional[_PairBound]:
            bounds = self.distance_bounds.get((min(a, b), max(a, b)))
            if not bounds:
                return None
            return min(bounds, key=lambda pair: pair.max_distance)

        # Intersect all heading arcs per ordered pair.
        combined_arcs: Dict[Tuple[int, int], Tuple[Optional[CircularInterval], str]] = {}
        for (a, b), arcs in self.heading_arcs.items():
            arc: Optional[CircularInterval] = arcs[0][0]
            sources = [arcs[0][1]]
            for other, source in arcs[1:]:
                sources.append(source)
                arc = arc.intersect(other) if arc is not None else None
            combined_arcs[(a, b)] = (arc, " + ".join(dict.fromkeys(sources)))

        entries: List[ObjectBounds] = []
        for creation in self.creations:
            facts = creation.facts
            constraints: List[HeadingConstraint] = []
            tightest_distance: Optional[float] = None
            for (a, b), (arc, source) in combined_arcs.items():
                if creation.order not in (a, b):
                    continue
                partner_order = b if creation.order == a else a
                partner = self.creations[partner_order]
                if facts.deviation is None or partner.facts.deviation is None:
                    self.note(
                        f"heading arc {a}->{b} dropped: object not field-aligned"
                    )
                    continue
                pair = tightest(a, b)
                if pair is None:
                    self.note(f"heading arc {a}->{b} dropped: no distance bound")
                    continue
                deviation = facts.deviation.magnitude + partner.facts.deviation.magnitude
                if arc is None:
                    constraints.append(
                        HeadingConstraint(
                            partner=partner_order,
                            center=0.0,
                            half_width=-1.0,
                            max_distance=pair.max_distance,
                            deviation=deviation,
                            source=f"{source} (statically empty)",
                        )
                    )
                    continue
                if arc.is_full:
                    continue
                oriented = arc if creation.order == a else arc.negated()
                constraints.append(
                    HeadingConstraint(
                        partner=partner_order,
                        center=oriented.center,
                        half_width=oriented.half_width,
                        max_distance=pair.max_distance,
                        deviation=deviation,
                        source=f"{source} [{pair.source}]",
                    )
                )
            for other in self.creations:
                if other is creation:
                    continue
                pair = tightest(creation.order, other.order)
                if pair is not None:
                    if tightest_distance is None or pair.max_distance < tightest_distance:
                        tightest_distance = pair.max_distance

            # Algorithm 3 inputs: any partner bound within M means the whole
            # pair must fit locally; no cell narrower than the fatter
            # object's thin dimension can host it in isolation.
            min_configuration_width: Optional[float] = None
            narrowness_distance: Optional[float] = None
            if tightest_distance is not None:
                partner_radii = [
                    self.creations[o].facts.min_radius
                    for o in range(len(self.creations))
                    if o != creation.order
                    and tightest(creation.order, o) is not None
                ]
                width = 2.0 * max([facts.min_radius] + partner_radii)
                if width > 0:
                    min_configuration_width = width
                    narrowness_distance = tightest_distance

            entries.append(
                ObjectBounds(
                    index=creation.order,
                    class_name=creation.node.class_name,
                    min_radius=facts.min_radius,
                    max_distance=tightest_distance,
                    heading_constraints=tuple(constraints),
                    min_configuration_width=min_configuration_width,
                    narrowness_distance=narrowness_distance,
                )
            )
        return PruneBounds(objects=tuple(entries), mapped=True, notes=tuple(self.notes))


# ---------------------------------------------------------------------------
# AST walking helpers
# ---------------------------------------------------------------------------


def _walk(node: ast.Node):
    stack: List[Any] = [node]
    while stack:
        current = stack.pop()
        if not isinstance(current, ast.Node):
            continue
        yield current
        for value in vars(current).values():
            if isinstance(value, ast.Node):
                stack.append(value)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, ast.Node):
                        stack.append(item)
                    elif isinstance(item, tuple):
                        stack.extend(sub for sub in item if isinstance(sub, ast.Node))


def _contains_creation(node: ast.Node) -> bool:
    return any(isinstance(child, ast.ObjectCreation) for child in _walk(node))


def _assigned_names(node: ast.Node) -> Set[str]:
    names: Set[str] = set()
    for child in _walk(node):
        if isinstance(child, ast.Assignment) and isinstance(child.target, ast.Name):
            names.add(child.target.identifier)
        elif isinstance(child, ast.ForStatement):
            names.add(child.variable)
    return names


def _conjuncts(node: ast.Node) -> List[ast.Node]:
    if isinstance(node, ast.BoolOp) and node.operator == "and":
        return _conjuncts(node.left) + _conjuncts(node.right)
    return [node]


def _relative_heading_operand(node: ast.Node) -> Tuple[Optional[ast.RelativeHeading], bool]:
    """Unwrap ``relative heading of X`` / ``abs(relative heading of X)``."""
    if isinstance(node, ast.RelativeHeading):
        return node, False
    if (
        isinstance(node, ast.Call)
        and isinstance(node.function, ast.Name)
        and node.function.identifier == "abs"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.RelativeHeading)
    ):
        return node.args[0], True
    return None, False


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def analyze_program(program: ast.Program, metadata: Any) -> PruneBounds:
    """Derive :class:`PruneBounds` for a compiled program.

    *metadata* is the artifact's :class:`~repro.language.ArtifactMetadata`;
    it is used to *verify* the static AST→object mapping (object count,
    class names, ego index) before any per-object bound is trusted.  On any
    mismatch the result is unmapped and pruning falls back to
    containment-only behaviour — never to wrong bounds.
    """
    analyzer = _Analyzer(program, metadata)
    analyzer.scan()
    return analyzer.result()


__all__ = ["analyze_program", "ClassFacts", "VecInterval"]

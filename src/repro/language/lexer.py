"""Tokenizer for the Scenic language.

Scenic's lexical structure is Python-like: identifiers, numbers, strings,
operators and punctuation, ``#`` comments, and significant indentation
(INDENT/DEDENT tokens delimit blocks).  Multi-word constructs such as
``left of`` or ``relative to`` are handled in the parser, not here; the
lexer just produces NAME tokens for each word.

Line continuations follow Python: an expression inside unclosed brackets may
span lines, and a trailing backslash joins physical lines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional

from .errors import syntax_error


class TokenKind(enum.Enum):
    NAME = "NAME"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    NEWLINE = "NEWLINE"
    INDENT = "INDENT"
    DEDENT = "DEDENT"
    END = "END"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str
    line: int
    column: int

    def is_name(self, *names: str) -> bool:
        return self.kind is TokenKind.NAME and (not names or self.value in names)

    def is_operator(self, *operators: str) -> bool:
        return self.kind is TokenKind.OPERATOR and (not operators or self.value in operators)

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.value!r}, line {self.line})"


#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "**", "//", "==", "!=", "<=", ">=", "->",
    "+", "-", "*", "/", "%", "<", ">", "=",
    "(", ")", "[", "]", "{", "}",
    ",", ":", ".", "@",
]

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CONTINUE = _NAME_START | set("0123456789")
_DIGITS = set("0123456789")


def tokenize(source: str) -> List[Token]:
    """Tokenize *source*, producing a flat token list ending with an END token."""
    tokens: List[Token] = []
    indent_stack = [0]
    bracket_depth = 0
    lines = source.splitlines()

    # Join explicit (backslash) continuations before indentation handling.
    physical: List[tuple] = []  # (line_number, text)
    pending: Optional[tuple] = None
    for line_number, text in enumerate(lines, start=1):
        if pending is not None:
            pending = (pending[0], pending[1] + " " + text)
        else:
            pending = (line_number, text)
        stripped_for_continuation = _strip_comment(pending[1])
        if stripped_for_continuation.rstrip().endswith("\\"):
            pending = (pending[0], stripped_for_continuation.rstrip()[:-1])
            continue
        physical.append(pending)
        pending = None
    if pending is not None:
        physical.append(pending)

    for line_number, raw_line in physical:
        text = _strip_comment(raw_line)
        if bracket_depth == 0:
            stripped = text.strip()
            if not stripped:
                continue
            indentation = _measure_indent(text, line_number)
            if indentation > indent_stack[-1]:
                indent_stack.append(indentation)
                tokens.append(Token(TokenKind.INDENT, "", line_number, 1))
            else:
                while indentation < indent_stack[-1]:
                    indent_stack.pop()
                    tokens.append(Token(TokenKind.DEDENT, "", line_number, 1))
                if indentation != indent_stack[-1]:
                    raise syntax_error("inconsistent indentation", line_number, 1)

        line_tokens, bracket_depth = _tokenize_line(text, line_number, bracket_depth)
        tokens.extend(line_tokens)
        if bracket_depth == 0 and line_tokens:
            tokens.append(Token(TokenKind.NEWLINE, "\n", line_number, len(raw_line) + 1))

    if bracket_depth != 0:
        raise syntax_error("unclosed bracket at end of file", len(lines) or 1, 1)
    final_line = (physical[-1][0] if physical else 1)
    while len(indent_stack) > 1:
        indent_stack.pop()
        tokens.append(Token(TokenKind.DEDENT, "", final_line, 1))
    tokens.append(Token(TokenKind.END, "", final_line + 1, 1))
    return tokens


def _strip_comment(text: str) -> str:
    """Remove a ``#`` comment, respecting string literals."""
    result = []
    in_string: Optional[str] = None
    for character in text:
        if in_string:
            result.append(character)
            if character == in_string:
                in_string = None
            continue
        if character in ("'", '"'):
            in_string = character
            result.append(character)
            continue
        if character == "#":
            break
        result.append(character)
    return "".join(result)


def _measure_indent(text: str, line_number: int) -> int:
    indent = 0
    for character in text:
        if character == " ":
            indent += 1
        elif character == "\t":
            indent += 8 - (indent % 8)
        else:
            break
    return indent


def _tokenize_line(text: str, line_number: int, bracket_depth: int) -> tuple:
    tokens: List[Token] = []
    position = 0
    length = len(text)
    while position < length:
        character = text[position]
        column = position + 1
        if character in " \t":
            position += 1
            continue
        if character in _NAME_START:
            end = position + 1
            while end < length and text[end] in _NAME_CONTINUE:
                end += 1
            tokens.append(Token(TokenKind.NAME, text[position:end], line_number, column))
            position = end
            continue
        if character in _DIGITS or (character == "." and position + 1 < length and text[position + 1] in _DIGITS):
            end = position
            seen_dot = False
            seen_exponent = False
            while end < length:
                next_character = text[end]
                if next_character in _DIGITS:
                    end += 1
                elif next_character == "." and not seen_dot and not seen_exponent:
                    seen_dot = True
                    end += 1
                elif next_character in "eE" and not seen_exponent and end + 1 < length and (
                    text[end + 1] in _DIGITS or (text[end + 1] in "+-" and end + 2 < length and text[end + 2] in _DIGITS)
                ):
                    seen_exponent = True
                    end += 2 if text[end + 1] in "+-" else 1
                else:
                    break
            tokens.append(Token(TokenKind.NUMBER, text[position:end], line_number, column))
            position = end
            continue
        if character in ("'", '"'):
            end = position + 1
            while end < length and text[end] != character:
                if text[end] == "\\":
                    end += 1
                end += 1
            if end >= length:
                raise syntax_error("unterminated string literal", line_number, column)
            tokens.append(Token(TokenKind.STRING, text[position + 1:end], line_number, column))
            position = end + 1
            continue
        matched = False
        for operator in _OPERATORS:
            if text.startswith(operator, position):
                tokens.append(Token(TokenKind.OPERATOR, operator, line_number, column))
                if operator in "([{":
                    bracket_depth += 1
                elif operator in ")]}":
                    bracket_depth -= 1
                    if bracket_depth < 0:
                        raise syntax_error("unmatched closing bracket", line_number, column)
                position += len(operator)
                matched = True
                break
        if not matched:
            raise syntax_error(f"unexpected character {character!r}", line_number, column)
    return tokens, bracket_depth


__all__ = ["tokenize", "Token", "TokenKind"]

"""AST node definitions for the Scenic language.

The node set mirrors the grammar of Fig. 5: ordinary imperative constructs
(assignments, conditionals, loops, function and class definitions), Scenic's
statements (``param``, ``require``, ``mutate``), and expression nodes for
distributions, vectors, the geometric operator phrases, and object
construction with specifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


@dataclass
class Node:
    """Base class for all AST nodes; carries a source line for error reports."""

    line: int = field(default=0, kw_only=True)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class NumberLiteral(Node):
    value: float


@dataclass
class StringLiteral(Node):
    value: str


@dataclass
class BooleanLiteral(Node):
    value: bool


@dataclass
class NoneLiteral(Node):
    pass


@dataclass
class Name(Node):
    identifier: str


@dataclass
class Attribute(Node):
    target: Node
    attribute: str


@dataclass
class Subscript(Node):
    target: Node
    index: Node


@dataclass
class Call(Node):
    function: Node
    args: List[Node]
    keyword_args: List[Tuple[str, Node]]


@dataclass
class UnaryOp(Node):
    operator: str  # '-', 'not'
    operand: Node


@dataclass
class BinaryOp(Node):
    operator: str  # '+', '-', '*', '/', '//', '%', '**'
    left: Node
    right: Node


@dataclass
class Comparison(Node):
    operator: str  # '==', '!=', '<', '>', '<=', '>=', 'is', 'is not', 'in', 'not in'
    left: Node
    right: Node


@dataclass
class BoolOp(Node):
    operator: str  # 'and', 'or'
    left: Node
    right: Node


@dataclass
class Conditional(Node):
    """``then_value if condition else else_value``."""

    then_value: Node
    condition: Node
    else_value: Node


@dataclass
class ListLiteral(Node):
    elements: List[Node]


@dataclass
class DictLiteral(Node):
    items: List[Tuple[Node, Node]]


@dataclass
class IntervalDistribution(Node):
    """``(low, high)`` — uniform on an interval (Table 1)."""

    low: Node
    high: Node


@dataclass
class VectorLiteral(Node):
    """``X @ Y`` — a vector from xy coordinates."""

    x: Node
    y: Node


@dataclass
class Degrees(Node):
    """``X deg`` — convert degrees to radians."""

    value: Node


@dataclass
class RelativeTo(Node):
    """``X relative to Y`` (headings, vectors, fields, OrientedPoints)."""

    value: Node
    reference: Node


@dataclass
class OffsetBy(Node):
    """``X offset by Y`` (vector or OrientedPoint offset)."""

    value: Node
    offset: Node


@dataclass
class OffsetAlong(Node):
    """``X offset along D by Y``."""

    value: Node
    direction: Node
    offset: Node


@dataclass
class FieldAt(Node):
    """``F at X`` — value of a vector field at a point."""

    field_expr: Node
    position: Node


@dataclass
class CanSee(Node):
    viewer: Node
    target: Node


@dataclass
class IsIn(Node):
    value: Node
    region: Node


@dataclass
class DistanceTo(Node):
    """``distance [from X] to Y`` (X defaults to the ego)."""

    target: Node
    origin: Optional[Node] = None


@dataclass
class AngleTo(Node):
    """``angle [from X] to Y``."""

    target: Node
    origin: Optional[Node] = None


@dataclass
class RelativeHeading(Node):
    """``relative heading of H [from H2]``."""

    heading: Node
    reference: Optional[Node] = None


@dataclass
class ApparentHeading(Node):
    """``apparent heading of OP [from V]``."""

    target: Node
    origin: Optional[Node] = None


@dataclass
class VisibleRegionExpr(Node):
    """``visible R`` or ``R visible from X``."""

    region: Node
    viewer: Optional[Node] = None


@dataclass
class Follow(Node):
    """``follow F [from V] for S`` — an OrientedPoint along a field."""

    field_expr: Node
    distance: Node
    start: Optional[Node] = None


@dataclass
class EdgeOf(Node):
    """``front of O``, ``back left of O``, ... (Fig. 7, OrientedPoint operators)."""

    which: str  # 'front', 'back', 'left', 'right', 'front left', ...
    target: Node


# -- object construction -----------------------------------------------------


@dataclass
class SpecifierNode(Node):
    """One specifier in an object definition, e.g. ``left of spot by 0.5``."""

    kind: str
    #: Positional operands, meaning depends on ``kind``.
    operands: List[Node] = field(default_factory=list)
    #: Extra named operand (e.g. the property name of a ``with`` specifier).
    name: Optional[str] = None


@dataclass
class ObjectCreation(Node):
    """``ClassName specifier, specifier, ...``."""

    class_name: str
    specifiers: List[SpecifierNode] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Program(Node):
    statements: List[Node] = field(default_factory=list)


@dataclass
class ImportStatement(Node):
    module: str


@dataclass
class Assignment(Node):
    target: Node  # Name, Attribute, or Subscript
    value: Node


@dataclass
class ParamStatement(Node):
    assignments: List[Tuple[str, Node]] = field(default_factory=list)


@dataclass
class RequireStatement(Node):
    condition: Node
    probability: Optional[Node] = None  # None = hard requirement


@dataclass
class MutateStatement(Node):
    targets: List[str] = field(default_factory=list)  # empty = all objects
    scale: Optional[Node] = None


@dataclass
class ExpressionStatement(Node):
    expression: Node


@dataclass
class IfStatement(Node):
    condition: Node
    body: List[Node] = field(default_factory=list)
    orelse: List[Node] = field(default_factory=list)


@dataclass
class ForStatement(Node):
    variable: str
    iterable: Node = None
    body: List[Node] = field(default_factory=list)


@dataclass
class WhileStatement(Node):
    condition: Node
    body: List[Node] = field(default_factory=list)


@dataclass
class FunctionDefinition(Node):
    name: str
    parameters: List[str] = field(default_factory=list)
    defaults: List[Optional[Node]] = field(default_factory=list)
    body: List[Node] = field(default_factory=list)


@dataclass
class ReturnStatement(Node):
    value: Optional[Node] = None


@dataclass
class BreakStatement(Node):
    pass


@dataclass
class ContinueStatement(Node):
    pass


@dataclass
class PassStatement(Node):
    pass


@dataclass
class ClassDefinition(Node):
    name: str
    superclass: Optional[str] = None
    #: Property defaults: (property name, default value expression).
    properties: List[Tuple[str, Node]] = field(default_factory=list)
    #: Method definitions (ordinary function definitions).
    methods: List[FunctionDefinition] = field(default_factory=list)


__all__ = [name for name in dir() if not name.startswith("_")]

"""Recursive-descent parser for the Scenic language.

The grammar follows Fig. 5 of the paper.  Expressions are parsed with a
precedence ladder (loosest to tightest):

    ternary ``A if C else B``
    ``or`` / ``and`` / ``not``
    comparisons, ``can see``, ``is in``
    Scenic phrase operators: ``@``, ``deg``, ``relative to``, ``offset by``,
        ``offset along ... by``, ``at``, ``visible from``
    ``+`` / ``-``
    ``*`` / ``/`` / ``//`` / ``%``
    unary ``-``
    ``**``
    postfix: attribute access, calls, subscripts
    atoms, including the prefix constructs ``visible R``, ``front of O``,
        ``follow F from V for S``, ``distance to``, ``angle to``,
        ``relative heading of``, ``apparent heading of``

Object creation (``ClassName specifier, specifier, ...``) is recognised at
statement level (and for assignment right-hand sides and ``return`` values)
by the convention that Scenic class names are capitalised.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import ast_nodes as ast
from .errors import syntax_error
from .lexer import Token, TokenKind, tokenize

#: Names that may follow a capitalised name as the start of a specifier.
_SPECIFIER_STARTERS = {
    "with", "at", "offset", "left", "right", "ahead", "behind", "beyond",
    "visible", "in", "on", "following", "facing", "apparently",
}

#: Names that continue an ordinary expression and therefore must *not* cause a
#: capitalised name to be parsed as an object creation.
_EXPRESSION_CONTINUATIONS = {"if", "is", "and", "or", "not", "deg", "relative", "can"}


class _TokenStream:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._index = 0

    def peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind is not TokenKind.END:
            self._index += 1
        return token

    def match_operator(self, *operators: str) -> Optional[Token]:
        if self.peek().is_operator(*operators):
            return self.advance()
        return None

    def match_name(self, *names: str) -> Optional[Token]:
        if self.peek().is_name(*names):
            return self.advance()
        return None

    def expect_operator(self, operator: str) -> Token:
        token = self.peek()
        if not token.is_operator(operator):
            raise syntax_error(f"expected '{operator}', found {token.value!r}", token.line, token.column)
        return self.advance()

    def expect_name(self, name: Optional[str] = None) -> Token:
        token = self.peek()
        if token.kind is not TokenKind.NAME or (name is not None and token.value != name):
            expected = name or "a name"
            raise syntax_error(f"expected {expected}, found {token.value!r}", token.line, token.column)
        return self.advance()

    def expect_newline(self) -> None:
        token = self.peek()
        if token.kind in (TokenKind.NEWLINE, TokenKind.END):
            if token.kind is TokenKind.NEWLINE:
                self.advance()
            return
        if token.kind is TokenKind.DEDENT:
            return
        raise syntax_error(f"expected end of statement, found {token.value!r}", token.line, token.column)

    def skip_newlines(self) -> None:
        while self.peek().kind is TokenKind.NEWLINE:
            self.advance()


class Parser:
    """Parses a token stream into a :class:`repro.language.ast_nodes.Program`."""

    #: Maximum expression-nesting depth.  Each nesting level costs about a
    #: dozen Python stack frames through the precedence ladder, so without a
    #: cap a few hundred nested parentheses (or a long chain of unary
    #: operators) would escape as a raw ``RecursionError`` instead of a
    #: proper syntax error.  The value leaves ample stack headroom even when
    #: the host process starts deep in its own call stack (e.g. pytest).
    MAX_EXPRESSION_DEPTH = 32

    #: Maximum statement (block) nesting depth.
    MAX_STATEMENT_DEPTH = 50

    def __init__(self, tokens: List[Token]):
        self.stream = _TokenStream(tokens)
        self._expression_depth = 0
        self._statement_depth = 0

    def _descend(self, kind: str) -> None:
        if kind == "expression":
            self._expression_depth += 1
            if self._expression_depth > self.MAX_EXPRESSION_DEPTH:
                token = self.stream.peek()
                raise syntax_error(
                    f"expression nesting exceeds {self.MAX_EXPRESSION_DEPTH} levels",
                    token.line,
                    token.column,
                )
        else:
            self._statement_depth += 1
            if self._statement_depth > self.MAX_STATEMENT_DEPTH:
                token = self.stream.peek()
                raise syntax_error(
                    f"statement nesting exceeds {self.MAX_STATEMENT_DEPTH} levels",
                    token.line,
                    token.column,
                )

    # -- program and statements -------------------------------------------------

    def parse_program(self) -> ast.Program:
        statements: List[ast.Node] = []
        self.stream.skip_newlines()
        while self.stream.peek().kind is not TokenKind.END:
            statements.append(self.parse_statement())
            self.stream.skip_newlines()
        return ast.Program(statements, line=1)

    def parse_statement(self) -> ast.Node:
        self._descend("statement")
        try:
            return self._parse_statement_inner()
        finally:
            self._statement_depth -= 1

    def _parse_statement_inner(self) -> ast.Node:
        token = self.stream.peek()
        if token.kind is TokenKind.NAME:
            keyword = token.value
            if keyword == "import":
                return self._parse_import()
            if keyword == "param":
                return self._parse_param()
            if keyword == "require":
                return self._parse_require()
            if keyword == "mutate":
                return self._parse_mutate()
            if keyword == "class":
                return self._parse_class()
            if keyword == "def":
                return self._parse_function()
            if keyword == "if":
                return self._parse_if()
            if keyword == "for":
                return self._parse_for()
            if keyword == "while":
                return self._parse_while()
            if keyword == "return":
                return self._parse_return()
            if keyword == "break":
                self.stream.advance()
                self.stream.expect_newline()
                return ast.BreakStatement(line=token.line)
            if keyword == "continue":
                self.stream.advance()
                self.stream.expect_newline()
                return ast.ContinueStatement(line=token.line)
            if keyword == "pass":
                self.stream.advance()
                self.stream.expect_newline()
                return ast.PassStatement(line=token.line)
        return self._parse_assignment_or_expression()

    def _parse_import(self) -> ast.Node:
        token = self.stream.expect_name("import")
        module = self.stream.expect_name().value
        self.stream.expect_newline()
        return ast.ImportStatement(module, line=token.line)

    def _parse_param(self) -> ast.Node:
        token = self.stream.expect_name("param")
        assignments: List[Tuple[str, ast.Node]] = []
        while True:
            name = self.stream.expect_name().value
            self.stream.expect_operator("=")
            value = self.parse_creation_or_expression()
            assignments.append((name, value))
            if not self.stream.match_operator(","):
                break
        self.stream.expect_newline()
        return ast.ParamStatement(assignments, line=token.line)

    def _parse_require(self) -> ast.Node:
        token = self.stream.expect_name("require")
        probability: Optional[ast.Node] = None
        if self.stream.match_operator("["):
            probability = self.parse_expression()
            self.stream.expect_operator("]")
        condition = self.parse_expression()
        self.stream.expect_newline()
        return ast.RequireStatement(condition, probability, line=token.line)

    def _parse_mutate(self) -> ast.Node:
        token = self.stream.expect_name("mutate")
        targets: List[str] = []
        scale: Optional[ast.Node] = None
        while self.stream.peek().kind is TokenKind.NAME and not self.stream.peek().is_name("by"):
            targets.append(self.stream.advance().value)
            if not self.stream.match_operator(","):
                break
        if self.stream.match_name("by"):
            scale = self.parse_expression()
        self.stream.expect_newline()
        return ast.MutateStatement(targets, scale, line=token.line)

    def _parse_class(self) -> ast.Node:
        token = self.stream.expect_name("class")
        name = self.stream.expect_name().value
        superclass: Optional[str] = None
        if self.stream.match_operator("("):
            if not self.stream.peek().is_operator(")"):
                superclass = self.stream.expect_name().value
            self.stream.expect_operator(")")
        self.stream.expect_operator(":")
        properties: List[Tuple[str, ast.Node]] = []
        methods: List[ast.FunctionDefinition] = []
        self.stream.expect_newline()
        if self.stream.peek().kind is TokenKind.INDENT:
            self.stream.advance()
            self.stream.skip_newlines()
            while self.stream.peek().kind is not TokenKind.DEDENT:
                if self.stream.peek().is_name("def"):
                    methods.append(self._parse_function())
                elif self.stream.peek().is_name("pass"):
                    self.stream.advance()
                    self.stream.expect_newline()
                else:
                    property_name = self.stream.expect_name().value
                    self.stream.expect_operator(":")
                    value = self.parse_creation_or_expression()
                    self.stream.expect_newline()
                    properties.append((property_name, value))
                self.stream.skip_newlines()
            self.stream.advance()  # DEDENT
        return ast.ClassDefinition(name, superclass, properties, methods, line=token.line)

    def _parse_function(self) -> ast.FunctionDefinition:
        token = self.stream.expect_name("def")
        name = self.stream.expect_name().value
        self.stream.expect_operator("(")
        parameters: List[str] = []
        defaults: List[Optional[ast.Node]] = []
        while not self.stream.peek().is_operator(")"):
            parameters.append(self.stream.expect_name().value)
            if self.stream.match_operator("="):
                defaults.append(self.parse_expression())
            else:
                defaults.append(None)
            if not self.stream.match_operator(","):
                break
        self.stream.expect_operator(")")
        self.stream.expect_operator(":")
        body = self._parse_block()
        return ast.FunctionDefinition(name, parameters, defaults, body, line=token.line)

    def _parse_if(self) -> ast.Node:
        token = self.stream.expect_name("if")
        condition = self.parse_expression()
        self.stream.expect_operator(":")
        body = self._parse_block()
        orelse: List[ast.Node] = []
        self.stream.skip_newlines()
        if self.stream.peek().is_name("elif"):
            orelse = [self._parse_elif()]
        elif self.stream.peek().is_name("else"):
            self.stream.advance()
            self.stream.expect_operator(":")
            orelse = self._parse_block()
        return ast.IfStatement(condition, body, orelse, line=token.line)

    def _parse_elif(self) -> ast.Node:
        token = self.stream.expect_name("elif")
        condition = self.parse_expression()
        self.stream.expect_operator(":")
        body = self._parse_block()
        orelse: List[ast.Node] = []
        self.stream.skip_newlines()
        if self.stream.peek().is_name("elif"):
            orelse = [self._parse_elif()]
        elif self.stream.peek().is_name("else"):
            self.stream.advance()
            self.stream.expect_operator(":")
            orelse = self._parse_block()
        return ast.IfStatement(condition, body, orelse, line=token.line)

    def _parse_for(self) -> ast.Node:
        token = self.stream.expect_name("for")
        variable = self.stream.expect_name().value
        self.stream.expect_name("in")
        iterable = self.parse_expression()
        self.stream.expect_operator(":")
        body = self._parse_block()
        return ast.ForStatement(variable, iterable, body, line=token.line)

    def _parse_while(self) -> ast.Node:
        token = self.stream.expect_name("while")
        condition = self.parse_expression()
        self.stream.expect_operator(":")
        body = self._parse_block()
        return ast.WhileStatement(condition, body, line=token.line)

    def _parse_return(self) -> ast.Node:
        token = self.stream.expect_name("return")
        value: Optional[ast.Node] = None
        if self.stream.peek().kind not in (TokenKind.NEWLINE, TokenKind.END, TokenKind.DEDENT):
            value = self.parse_creation_or_expression()
        self.stream.expect_newline()
        return ast.ReturnStatement(value, line=token.line)

    def _parse_block(self) -> List[ast.Node]:
        """An indented block of statements (single-line suites are also allowed)."""
        if self.stream.peek().kind is not TokenKind.NEWLINE:
            # Single-line suite: ``if x: y = 1``
            statement = self.parse_statement()
            return [statement]
        self.stream.advance()  # NEWLINE
        self.stream.skip_newlines()
        if self.stream.peek().kind is not TokenKind.INDENT:
            token = self.stream.peek()
            raise syntax_error("expected an indented block", token.line, token.column)
        self.stream.advance()
        statements: List[ast.Node] = []
        self.stream.skip_newlines()
        while self.stream.peek().kind is not TokenKind.DEDENT:
            statements.append(self.parse_statement())
            self.stream.skip_newlines()
        self.stream.advance()  # DEDENT
        return statements

    def _parse_assignment_or_expression(self) -> ast.Node:
        token = self.stream.peek()
        # ``name = value`` (but not ``name == value``).
        if (
            token.kind is TokenKind.NAME
            and self.stream.peek(1).is_operator("=")
        ):
            name_token = self.stream.advance()
            self.stream.advance()  # '='
            value = self.parse_creation_or_expression()
            self.stream.expect_newline()
            return ast.Assignment(ast.Name(name_token.value, line=name_token.line), value, line=name_token.line)
        # ``obj.attr = value`` / ``obj[idx] = value``
        expression = self.parse_creation_or_expression()
        if self.stream.match_operator("="):
            value = self.parse_creation_or_expression()
            self.stream.expect_newline()
            return ast.Assignment(expression, value, line=token.line)
        self.stream.expect_newline()
        return ast.ExpressionStatement(expression, line=token.line)

    # -- object creation ---------------------------------------------------------

    def parse_creation_or_expression(self) -> ast.Node:
        """Parse either an object creation or an ordinary expression."""
        token = self.stream.peek()
        if self._looks_like_creation(token):
            return self._parse_object_creation()
        return self.parse_expression()

    def _looks_like_creation(self, token: Token) -> bool:
        if token.kind is not TokenKind.NAME or not token.value[:1].isupper():
            return False
        if token.value in ("True", "False", "None"):
            return False
        following = self.stream.peek(1)
        if following.kind in (TokenKind.NEWLINE, TokenKind.END, TokenKind.DEDENT):
            return True
        if following.kind is TokenKind.NAME and following.value not in _EXPRESSION_CONTINUATIONS:
            return True
        return False

    def _parse_object_creation(self) -> ast.ObjectCreation:
        name_token = self.stream.expect_name()
        specifiers: List[ast.SpecifierNode] = []
        if self.stream.peek().kind is TokenKind.NAME:
            specifiers.append(self._parse_specifier())
            while self.stream.match_operator(","):
                specifiers.append(self._parse_specifier())
        return ast.ObjectCreation(name_token.value, specifiers, line=name_token.line)

    def _parse_specifier(self) -> ast.SpecifierNode:
        token = self.stream.peek()
        if token.kind is not TokenKind.NAME:
            raise syntax_error(f"expected a specifier, found {token.value!r}", token.line, token.column)
        keyword = token.value
        line = token.line

        if keyword == "with":
            self.stream.advance()
            property_name = self.stream.expect_name().value
            value = self.parse_expression()
            return ast.SpecifierNode("with", [value], name=property_name, line=line)

        if keyword == "at":
            self.stream.advance()
            return ast.SpecifierNode("at", [self.parse_expression()], line=line)

        if keyword == "offset":
            self.stream.advance()
            if self.stream.match_name("along"):
                direction = self.parse_expression()
                self.stream.expect_name("by")
                offset = self.parse_expression()
                return ast.SpecifierNode("offset along", [direction, offset], line=line)
            self.stream.expect_name("by")
            return ast.SpecifierNode("offset by", [self.parse_expression()], line=line)

        if keyword in ("left", "right", "ahead"):
            self.stream.advance()
            self.stream.expect_name("of")
            reference = self.parse_expression()
            operands = [reference]
            if self.stream.match_name("by"):
                operands.append(self.parse_expression())
            kind = {"left": "left of", "right": "right of", "ahead": "ahead of"}[keyword]
            return ast.SpecifierNode(kind, operands, line=line)

        if keyword == "behind":
            self.stream.advance()
            reference = self.parse_expression()
            operands = [reference]
            if self.stream.match_name("by"):
                operands.append(self.parse_expression())
            return ast.SpecifierNode("behind", operands, line=line)

        if keyword == "beyond":
            self.stream.advance()
            base = self.parse_expression()
            self.stream.expect_name("by")
            offset = self.parse_expression()
            operands = [base, offset]
            if self.stream.match_name("from"):
                operands.append(self.parse_expression())
            return ast.SpecifierNode("beyond", operands, line=line)

        if keyword == "visible":
            self.stream.advance()
            operands = []
            if self.stream.match_name("from"):
                operands.append(self.parse_expression())
            return ast.SpecifierNode("visible", operands, line=line)

        if keyword in ("in", "on"):
            self.stream.advance()
            return ast.SpecifierNode("in", [self.parse_expression()], line=line)

        if keyword == "following":
            self.stream.advance()
            field_expr = self.parse_expression()
            operands = [field_expr]
            start: Optional[ast.Node] = None
            if self.stream.match_name("from"):
                start = self.parse_expression()
            self.stream.expect_name("for")
            distance = self.parse_expression()
            operands.append(distance)
            if start is not None:
                operands.append(start)
            return ast.SpecifierNode("following", operands, line=line)

        if keyword == "facing":
            self.stream.advance()
            if self.stream.match_name("toward"):
                return ast.SpecifierNode("facing toward", [self.parse_expression()], line=line)
            if self.stream.match_name("away"):
                self.stream.expect_name("from")
                return ast.SpecifierNode("facing away from", [self.parse_expression()], line=line)
            return ast.SpecifierNode("facing", [self.parse_expression()], line=line)

        if keyword == "apparently":
            self.stream.advance()
            self.stream.expect_name("facing")
            heading = self.parse_expression()
            operands = [heading]
            if self.stream.match_name("from"):
                operands.append(self.parse_expression())
            return ast.SpecifierNode("apparently facing", operands, line=line)

        raise syntax_error(f"unknown specifier starting with {keyword!r}", token.line, token.column)

    # -- expressions ---------------------------------------------------------------

    def parse_expression(self) -> ast.Node:
        self._descend("expression")
        try:
            return self._parse_ternary()
        finally:
            self._expression_depth -= 1

    def _parse_ternary(self) -> ast.Node:
        value = self._parse_disjunction()
        if self.stream.peek().is_name("if"):
            line = self.stream.advance().line
            condition = self._parse_disjunction()
            self.stream.expect_name("else")
            self._descend("expression")
            try:
                else_value = self._parse_ternary()
            finally:
                self._expression_depth -= 1
            return ast.Conditional(value, condition, else_value, line=line)
        return value

    def _parse_disjunction(self) -> ast.Node:
        left = self._parse_conjunction()
        while self.stream.peek().is_name("or"):
            line = self.stream.advance().line
            right = self._parse_conjunction()
            left = ast.BoolOp("or", left, right, line=line)
        return left

    def _parse_conjunction(self) -> ast.Node:
        left = self._parse_negation()
        while self.stream.peek().is_name("and"):
            line = self.stream.advance().line
            right = self._parse_negation()
            left = ast.BoolOp("and", left, right, line=line)
        return left

    def _parse_negation(self) -> ast.Node:
        if self.stream.peek().is_name("not"):
            line = self.stream.advance().line
            self._descend("expression")
            try:
                operand = self._parse_negation()
            finally:
                self._expression_depth -= 1
            return ast.UnaryOp("not", operand, line=line)
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Node:
        left = self._parse_scenic()
        token = self.stream.peek()
        if token.is_operator("==", "!=", "<", ">", "<=", ">="):
            operator = self.stream.advance().value
            right = self._parse_scenic()
            return ast.Comparison(operator, left, right, line=token.line)
        if token.is_name("can"):
            self.stream.advance()
            self.stream.expect_name("see")
            right = self._parse_scenic()
            return ast.CanSee(left, right, line=token.line)
        if token.is_name("is"):
            self.stream.advance()
            if self.stream.match_name("in"):
                right = self._parse_scenic()
                return ast.IsIn(left, right, line=token.line)
            if self.stream.match_name("not"):
                right = self._parse_scenic()
                return ast.Comparison("is not", left, right, line=token.line)
            right = self._parse_scenic()
            return ast.Comparison("is", left, right, line=token.line)
        return left

    def _parse_scenic(self) -> ast.Node:
        """Vector construction and the word-phrase operators."""
        left = self._parse_additive()
        while True:
            token = self.stream.peek()
            if token.is_operator("@"):
                line = self.stream.advance().line
                right = self._parse_additive()
                left = ast.VectorLiteral(left, right, line=line)
                continue
            if token.is_name("deg"):
                line = self.stream.advance().line
                left = ast.Degrees(left, line=line)
                continue
            if token.is_name("relative"):
                line = self.stream.advance().line
                self.stream.expect_name("to")
                right = self._parse_additive()
                left = ast.RelativeTo(left, right, line=line)
                continue
            if token.is_name("offset"):
                line = self.stream.advance().line
                if self.stream.match_name("along"):
                    direction = self._parse_additive()
                    self.stream.expect_name("by")
                    offset = self._parse_additive()
                    left = ast.OffsetAlong(left, direction, offset, line=line)
                else:
                    self.stream.expect_name("by")
                    offset = self._parse_additive()
                    left = ast.OffsetBy(left, offset, line=line)
                continue
            if token.is_name("at"):
                line = self.stream.advance().line
                position = self._parse_additive()
                left = ast.FieldAt(left, position, line=line)
                continue
            if token.is_name("visible") and self.stream.peek(1).is_name("from"):
                line = self.stream.advance().line
                self.stream.advance()  # 'from'
                viewer = self._parse_additive()
                left = ast.VisibleRegionExpr(left, viewer, line=line)
                continue
            break
        return left

    def _parse_additive(self) -> ast.Node:
        left = self._parse_multiplicative()
        while self.stream.peek().is_operator("+", "-"):
            token = self.stream.advance()
            right = self._parse_multiplicative()
            left = ast.BinaryOp(token.value, left, right, line=token.line)
        return left

    def _parse_multiplicative(self) -> ast.Node:
        left = self._parse_unary()
        while self.stream.peek().is_operator("*", "/", "//", "%"):
            token = self.stream.advance()
            right = self._parse_unary()
            left = ast.BinaryOp(token.value, left, right, line=token.line)
        return left

    def _parse_unary(self) -> ast.Node:
        token = self.stream.peek()
        if token.is_operator("-", "+"):
            self.stream.advance()
            self._descend("expression")
            try:
                operand = self._parse_unary()
            finally:
                self._expression_depth -= 1
            if token.is_operator("+"):
                return operand
            return ast.UnaryOp("-", operand, line=token.line)
        return self._parse_power()

    def _parse_power(self) -> ast.Node:
        base = self._parse_postfix()
        if self.stream.peek().is_operator("**"):
            token = self.stream.advance()
            self._descend("expression")
            try:
                exponent = self._parse_unary()
            finally:
                self._expression_depth -= 1
            return ast.BinaryOp("**", base, exponent, line=token.line)
        return base

    def _parse_postfix(self) -> ast.Node:
        value = self._parse_atom()
        while True:
            token = self.stream.peek()
            if token.is_operator("."):
                self.stream.advance()
                attribute = self.stream.expect_name().value
                value = ast.Attribute(value, attribute, line=token.line)
                continue
            if token.is_operator("("):
                self.stream.advance()
                args, keyword_args = self._parse_call_arguments()
                value = ast.Call(value, args, keyword_args, line=token.line)
                continue
            if token.is_operator("["):
                self.stream.advance()
                index = self.parse_expression()
                self.stream.expect_operator("]")
                value = ast.Subscript(value, index, line=token.line)
                continue
            break
        return value

    def _parse_call_arguments(self) -> Tuple[List[ast.Node], List[Tuple[str, ast.Node]]]:
        args: List[ast.Node] = []
        keyword_args: List[Tuple[str, ast.Node]] = []
        self.stream.skip_newlines()
        while not self.stream.peek().is_operator(")"):
            token = self.stream.peek()
            if token.kind is TokenKind.NAME and self.stream.peek(1).is_operator("=") :
                name = self.stream.advance().value
                self.stream.advance()  # '='
                keyword_args.append((name, self.parse_expression()))
            else:
                args.append(self.parse_expression())
            self.stream.skip_newlines()
            if not self.stream.match_operator(","):
                break
            self.stream.skip_newlines()
        self.stream.expect_operator(")")
        return args, keyword_args

    def _parse_atom(self) -> ast.Node:
        token = self.stream.peek()

        if token.kind is TokenKind.NUMBER:
            self.stream.advance()
            text = token.value
            value = float(text) if ("." in text or "e" in text or "E" in text) else int(text)
            return ast.NumberLiteral(value, line=token.line)

        if token.kind is TokenKind.STRING:
            self.stream.advance()
            return ast.StringLiteral(token.value, line=token.line)

        if token.kind is TokenKind.NAME:
            return self._parse_name_atom()

        if token.is_operator("("):
            return self._parse_parenthesised()

        if token.is_operator("["):
            self.stream.advance()
            elements: List[ast.Node] = []
            self.stream.skip_newlines()
            while not self.stream.peek().is_operator("]"):
                elements.append(self.parse_expression())
                self.stream.skip_newlines()
                if not self.stream.match_operator(","):
                    break
                self.stream.skip_newlines()
            self.stream.expect_operator("]")
            return ast.ListLiteral(elements, line=token.line)

        if token.is_operator("{"):
            self.stream.advance()
            items: List[Tuple[ast.Node, ast.Node]] = []
            self.stream.skip_newlines()
            while not self.stream.peek().is_operator("}"):
                key = self.parse_expression()
                self.stream.expect_operator(":")
                value = self.parse_expression()
                items.append((key, value))
                self.stream.skip_newlines()
                if not self.stream.match_operator(","):
                    break
                self.stream.skip_newlines()
            self.stream.expect_operator("}")
            return ast.DictLiteral(items, line=token.line)

        raise syntax_error(f"unexpected token {token.value!r}", token.line, token.column)

    def _parse_name_atom(self) -> ast.Node:
        token = self.stream.peek()
        name = token.value

        if name in ("True", "False"):
            self.stream.advance()
            return ast.BooleanLiteral(name == "True", line=token.line)
        if name == "None":
            self.stream.advance()
            return ast.NoneLiteral(line=token.line)

        # Prefix constructs.
        if name == "visible":
            self.stream.advance()
            region = self._parse_additive()
            return ast.VisibleRegionExpr(region, None, line=token.line)

        if name == "follow":
            self.stream.advance()
            field_expr = self._parse_additive()
            start: Optional[ast.Node] = None
            if self.stream.match_name("from"):
                start = self._parse_additive()
            self.stream.expect_name("for")
            distance = self._parse_additive()
            return ast.Follow(field_expr, distance, start, line=token.line)

        if name == "distance":
            self.stream.advance()
            origin: Optional[ast.Node] = None
            if self.stream.match_name("from"):
                origin = self._parse_additive()
            self.stream.expect_name("to")
            target = self._parse_additive()
            return ast.DistanceTo(target, origin, line=token.line)

        if name == "angle":
            self.stream.advance()
            origin = None
            if self.stream.match_name("from"):
                origin = self._parse_additive()
            self.stream.expect_name("to")
            target = self._parse_additive()
            return ast.AngleTo(target, origin, line=token.line)

        if name == "relative" and self.stream.peek(1).is_name("heading"):
            self.stream.advance()
            self.stream.advance()
            self.stream.expect_name("of")
            heading = self._parse_additive()
            reference: Optional[ast.Node] = None
            if self.stream.match_name("from"):
                reference = self._parse_additive()
            return ast.RelativeHeading(heading, reference, line=token.line)

        if name == "apparent" and self.stream.peek(1).is_name("heading"):
            self.stream.advance()
            self.stream.advance()
            self.stream.expect_name("of")
            target = self._parse_additive()
            origin = None
            if self.stream.match_name("from"):
                origin = self._parse_additive()
            return ast.ApparentHeading(target, origin, line=token.line)

        if name in ("front", "back") and self.stream.peek(1).is_name("left", "right"):
            self.stream.advance()
            side = self.stream.advance().value
            self.stream.expect_name("of")
            target = self._parse_additive()
            return ast.EdgeOf(f"{name} {side}", target, line=token.line)

        if name in ("front", "back", "left", "right") and self.stream.peek(1).is_name("of"):
            self.stream.advance()
            self.stream.advance()
            target = self._parse_additive()
            return ast.EdgeOf(name, target, line=token.line)

        self.stream.advance()
        return ast.Name(name, line=token.line)

    def _parse_parenthesised(self) -> ast.Node:
        token = self.stream.expect_operator("(")
        self.stream.skip_newlines()
        first = self.parse_creation_or_expression()
        self.stream.skip_newlines()
        if self.stream.match_operator(","):
            self.stream.skip_newlines()
            elements = [first]
            while not self.stream.peek().is_operator(")"):
                elements.append(self.parse_expression())
                self.stream.skip_newlines()
                if not self.stream.match_operator(","):
                    break
                self.stream.skip_newlines()
            self.stream.expect_operator(")")
            if len(elements) == 2:
                return ast.IntervalDistribution(elements[0], elements[1], line=token.line)
            return ast.ListLiteral(elements, line=token.line)
        self.stream.expect_operator(")")
        return first


def parse_program(source: str) -> ast.Program:
    """Tokenize and parse a complete Scenic program."""
    return Parser(tokenize(source)).parse_program()


__all__ = ["Parser", "parse_program"]

"""Compile-once, sample-many: scenario artifacts and the artifact cache.

The paper treats a Scenic program as an artifact that is *compiled once and
sampled many times* (Sec. 5), but historically every ``Scenario``
construction re-lexed, re-parsed and re-interpreted the source.  This module
splits compilation into an explicit, reusable step:

``compile_scenario(source)`` returns a :class:`CompiledScenario` — the
parsed AST plus lazily-derived static metadata (resolved class table,
dependency-group structure, per-object sampling facts) — and caches it,
keyed by a content hash of the source, in a process-wide LRU
(:class:`ArtifactCache`) with an optional on-disk layer.  Warm-path
construction therefore skips the lexer and parser entirely; the fully
interned fast path (``compile_scenario(source).scenario()``) also skips the
interpreter and returns a shared, ready-to-sample
:class:`~repro.core.scenario.Scenario`.

Typical use::

    from repro.language import compile_scenario

    artifact = compile_scenario(open("two_cars.scenic").read())
    artifact.fingerprint            # content address (sha256, stable)
    scenario = artifact.scenario()  # shared instance; parser+interpreter skipped when warm
    scene = scenario.generate(seed=0)

    fresh = artifact.scenario(fresh=True)   # independent Scenario (e.g. for pruning)
    artifact.metadata.class_table           # {'Car': ClassSummary(...), ...}

Artifacts are picklable (the live interned :class:`Scenario` is dropped and
rebuilt lazily on first use), which is what lets :mod:`repro.service`
workers ship and cache them across process boundaries, and what backs the
disk layer of :class:`ArtifactCache`.

Sharing caveat: ``artifact.scenario()`` returns one shared ``Scenario``
instance per artifact.  The ``"pruning"`` strategy rewrites sampling regions
in place, so anything that mutates a scenario should request
``scenario(fresh=True)`` (``SamplerEngine`` does this automatically when
given an artifact and the pruning strategy).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import ScenicError
from ..core.scenario import Scenario
from . import ast_nodes as ast
from .parser import parse_program

#: Bumped whenever the AST node set or the artifact layout changes in a way
#: that makes previously pickled artifacts unusable; stale disk entries are
#: then treated as cache misses and recompiled, never deserialized.
#: Version 2 added the cached static-analysis ``PruneBounds``.
ARTIFACT_FORMAT_VERSION = 2

#: Environment variable naming a directory for the default cache's disk
#: layer.  Unset (the default) keeps the default cache memory-only.
CACHE_DIR_ENV = "REPRO_SCENIC_CACHE_DIR"


class StaleArtifactError(ScenicError):
    """A pickled artifact was produced by an incompatible format version."""


# ---------------------------------------------------------------------------
# Content addressing
# ---------------------------------------------------------------------------


def normalize_source(source: str) -> str:
    """Canonical text form used for fingerprinting.

    Differences that cannot change the token stream — line-ending style,
    trailing whitespace, trailing blank lines — are erased, so equivalent
    sources share one artifact.
    """
    text = source.replace("\r\n", "\n").replace("\r", "\n")
    lines = [line.rstrip() for line in text.split("\n")]
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines) + "\n" if lines else ""


def source_fingerprint(source: str) -> str:
    """The artifact cache key: a stable sha256 over the normalized source.

    The format version is folded into the hash so a format bump re-addresses
    every artifact at once (old disk entries simply stop being referenced).
    """
    digest = hashlib.sha256()
    digest.update(f"scenic-artifact-v{ARTIFACT_FORMAT_VERSION}\n".encode("utf-8"))
    digest.update(normalize_source(source).encode("utf-8"))
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Static metadata
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClassSummary:
    """One entry of the resolved class table: a class defined by the program."""

    name: str
    superclass: Optional[str]  # None = implicit Object base
    properties: Tuple[str, ...]  # property names given default values


@dataclass(frozen=True)
class ObjectSummary:
    """Static sampling facts about one scenario object (by scenario index)."""

    index: int
    class_name: str
    random_properties: Tuple[str, ...]  # properties that draw from the RNG
    is_static: bool  # concretizes identically on every draw
    mutation_enabled: bool


@dataclass(frozen=True)
class ArtifactMetadata:
    """Per-program static analysis, derived once and shipped with the artifact.

    Everything here is plain picklable data: the service uses it for request
    diagnostics, and strategies could use it to pre-size their buffers
    without touching the live scenario.
    """

    object_count: int
    ego_index: int
    param_names: Tuple[str, ...]
    requirement_count: int
    soft_requirement_count: int
    class_table: Tuple[ClassSummary, ...]
    objects: Tuple[ObjectSummary, ...]
    #: Independence partition as scenario-object indices, mirroring
    #: :class:`repro.sampling.DependencyGraph` groups in scenario order.
    dependency_groups: Tuple[Tuple[int, ...], ...]


def _class_table_from_program(program: ast.Program) -> Tuple[ClassSummary, ...]:
    """Collect every class definition in the program (including nested ones)."""
    summaries: List[ClassSummary] = []
    stack: List[Any] = list(program.statements)
    while stack:
        node = stack.pop(0)
        if isinstance(node, ast.ClassDefinition):
            summaries.append(
                ClassSummary(
                    name=node.name,
                    superclass=node.superclass,
                    properties=tuple(name for name, _ in node.properties),
                )
            )
        for value in vars(node).values():
            if isinstance(value, ast.Node):
                stack.append(value)
            elif isinstance(value, (list, tuple)):
                stack.extend(item for item in value if isinstance(item, ast.Node))
    return tuple(summaries)


def _metadata_from_scenario(program: ast.Program, scenario: Scenario) -> ArtifactMetadata:
    from ..core.distributions import needs_sampling
    from ..core.lazy import is_lazy
    from ..sampling.dependency import DependencyGraph, closure_nodes, _random_ids

    object_summaries: List[ObjectSummary] = []
    for index, scenic_object in enumerate(scenario.objects):
        random_properties = tuple(
            sorted(
                name
                for name, value in scenic_object.properties.items()
                if needs_sampling(value) or is_lazy(value)
            )
        )
        closure = closure_nodes(scenic_object)
        scale = scenic_object.properties.get("mutationScale", 0.0)
        try:
            mutation = needs_sampling(scale) or float(scale) != 0.0
        except (TypeError, ValueError):
            mutation = True
        object_summaries.append(
            ObjectSummary(
                index=index,
                class_name=type(scenic_object).__name__,
                random_properties=random_properties,
                is_static=not _random_ids(closure),
                mutation_enabled=mutation,
            )
        )

    graph = DependencyGraph(scenario)
    index_of = {id(obj): index for index, obj in enumerate(scenario.objects)}
    groups = tuple(
        tuple(index_of[id(member)] for member in group.objects) for group in graph.groups
    )

    return ArtifactMetadata(
        object_count=len(scenario.objects),
        ego_index=scenario.objects.index(scenario.ego),
        param_names=tuple(sorted(scenario.params)),
        requirement_count=len(scenario.requirements),
        soft_requirement_count=sum(
            1 for requirement in scenario.requirements if requirement.probability < 1.0
        ),
        class_table=_class_table_from_program(program),
        objects=tuple(object_summaries),
        dependency_groups=groups,
    )


# ---------------------------------------------------------------------------
# The compiled artifact
# ---------------------------------------------------------------------------


class CompiledScenario:
    """A compile-once, sample-many Scenic program artifact.

    Holds the parsed AST (``program``), the content address
    (``fingerprint``) and lazily-computed :class:`ArtifactMetadata`.  The
    interpreter runs only when a :class:`Scenario` is actually requested;
    the default call interns one shared scenario per artifact so repeated
    warm-path construction costs a dictionary lookup.

    Pickling ships the AST and metadata only — the interned scenario (whose
    objects close over live interpreter state) is rebuilt lazily on the
    receiving side.  This is the unit :mod:`repro.service` workers exchange
    and the payload of :class:`ArtifactCache`'s disk layer.
    """

    def __init__(self, source: str, fingerprint: str, program: ast.Program):
        self.source = source
        self.fingerprint = fingerprint
        self.program = program
        self._lock = threading.Lock()
        self._shared_scenario: Optional[Scenario] = None
        self._metadata: Optional[ArtifactMetadata] = None
        self._prune_bounds: Optional[Any] = None
        # Triangle-fan cache of the direct-synthesis subsystem (see
        # ``repro.synthesis.region_sampler``); per-process only, not pickled.
        self._synthesis_cache: Dict[Any, Any] = {}

    # -- scenario construction ---------------------------------------------------

    def scenario(
        self,
        fresh: bool = False,
        workspace: Optional[Any] = None,
        extra_names: Optional[Dict[str, Any]] = None,
    ) -> Scenario:
        """A :class:`Scenario` for this program, skipping the parser entirely.

        With no arguments, returns a *shared* interned scenario (built on
        first use): the warm fast path.  ``fresh=True`` — or passing a
        *workspace* / *extra_names* override — re-runs the interpreter over
        the cached AST and returns an independent scenario; use it whenever
        the scenario will be mutated (the ``"pruning"`` strategy rewrites
        sampling regions in place) or when call sites must not share RNG-free
        state such as engine caches.
        """
        if fresh or workspace is not None or extra_names is not None:
            return self._interpret(workspace=workspace, extra_names=extra_names)
        with self._lock:
            if self._shared_scenario is None:
                self._shared_scenario = self._interpret()
            return self._shared_scenario

    def _interpret(
        self,
        workspace: Optional[Any] = None,
        extra_names: Optional[Dict[str, Any]] = None,
    ) -> Scenario:
        from .interpreter import Interpreter

        interpreter = Interpreter(extra_names=extra_names)
        scenario = interpreter.run_program(self.program, workspace=workspace)
        scenario.compiled_fingerprint = self.fingerprint
        # Back-reference for bound resolution: pruning asks the artifact for
        # its cached static-analysis bounds (see ``prune_bounds``).
        scenario.compiled_artifact = self
        return scenario

    # -- static analysis -----------------------------------------------------------

    @property
    def metadata(self) -> ArtifactMetadata:
        """Static facts about the program (computed once, then cached).

        Deriving per-object sampling metadata needs one interpretation, so
        first access builds (and interns) the shared scenario as a side
        effect; subsequent accesses are free.
        """
        with self._lock:
            if self._metadata is not None:
                return self._metadata
        scenario = self.scenario()
        with self._lock:
            if self._metadata is None:
                self._metadata = _metadata_from_scenario(self.program, scenario)
            return self._metadata

    def prune_bounds(self) -> Any:
        """Static pruning bounds for this program (Sec. 5.2's analysis).

        Runs :func:`repro.analysis.analyze_program` over the cached AST and
        metadata on first call, then returns the cached
        :class:`~repro.analysis.PruneBounds`.  The result travels with the
        pickled artifact, so a service worker (or a disk-cache hit) never
        re-analyzes a program it has seen before — warm requests pay zero
        analysis cost.
        """
        with self._lock:
            if self._prune_bounds is not None:
                return self._prune_bounds
        from ..analysis import analyze_program

        bounds = analyze_program(self.program, self.metadata)
        with self._lock:
            if self._prune_bounds is None:
                self._prune_bounds = bounds
            return self._prune_bounds

    # -- pickling ------------------------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        return {
            "format_version": ARTIFACT_FORMAT_VERSION,
            "source": self.source,
            "fingerprint": self.fingerprint,
            "program": self.program,
            "metadata": self._metadata,
            "prune_bounds": self._prune_bounds,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        if state.get("format_version") != ARTIFACT_FORMAT_VERSION:
            raise StaleArtifactError(
                f"artifact format {state.get('format_version')!r} does not match "
                f"this build's version {ARTIFACT_FORMAT_VERSION}"
            )
        self.source = state["source"]
        self.fingerprint = state["fingerprint"]
        self.program = state["program"]
        self._lock = threading.Lock()
        self._shared_scenario = None
        self._metadata = state.get("metadata")
        self._synthesis_cache = {}
        bounds = state.get("prune_bounds")
        from ..analysis.bounds import PRUNE_BOUNDS_VERSION

        if bounds is not None and getattr(bounds, "version", None) != PRUNE_BOUNDS_VERSION:
            bounds = None  # re-analyze rather than trust stale bounds
        self._prune_bounds = bounds

    def __repr__(self) -> str:
        return f"CompiledScenario({self.fingerprint[:12]}…, {len(self.source)} chars)"


# ---------------------------------------------------------------------------
# The artifact cache
# ---------------------------------------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss counters for one :class:`ArtifactCache`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.memory_hits + self.disk_hits + self.misses

    def as_dict(self) -> Dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class ArtifactCache:
    """Content-addressed cache of :class:`CompiledScenario` artifacts.

    Two layers, checked in order:

    * an in-process LRU (``max_memory`` artifacts, thread-safe), and
    * an optional on-disk layer (``disk_dir``) of pickled artifacts named by
      fingerprint — shared between processes and across runs.  Disk writes
      are atomic (temp file + rename); unreadable or stale entries are
      treated as misses and silently recompiled.

    ``get`` is the only entry point most callers need::

        cache = ArtifactCache(max_memory=64, disk_dir="~/.cache/scenic")
        artifact = cache.get(source)      # compiles at most once per content
        cache.stats.memory_hits
    """

    def __init__(self, max_memory: int = 128, disk_dir: Optional[Any] = None):
        self.max_memory = max(1, int(max_memory))
        self.disk_dir = Path(disk_dir).expanduser() if disk_dir else None
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._memory: "OrderedDict[str, CompiledScenario]" = OrderedDict()

    # -- lookup -------------------------------------------------------------------

    def get(self, source: str) -> CompiledScenario:
        """The artifact for *source*: memory hit, disk hit, or fresh compile."""
        fingerprint = source_fingerprint(source)
        artifact = self._lookup(fingerprint)
        if artifact is not None:
            return artifact
        with self._lock:
            self.stats.misses += 1
        artifact = CompiledScenario(source, fingerprint, parse_program(source))
        self.put(artifact)
        return artifact

    def lookup_fingerprint(self, fingerprint: str) -> Optional[CompiledScenario]:
        """The cached artifact for a known content address, or ``None``.

        Lets clients address previously published programs by hash alone
        (the :mod:`repro.service` protocol does this); unlike :meth:`get`
        it can not compile, so a miss is just ``None``.
        """
        return self._lookup(fingerprint)

    def _lookup(self, fingerprint: str) -> Optional[CompiledScenario]:
        with self._lock:
            artifact = self._memory.get(fingerprint)
            if artifact is not None:
                self._memory.move_to_end(fingerprint)
                self.stats.memory_hits += 1
                return artifact
        artifact = self._read_disk(fingerprint)
        if artifact is not None:
            with self._lock:
                self.stats.disk_hits += 1
                self._remember(artifact)
        return artifact

    # -- insertion ----------------------------------------------------------------

    def put(self, artifact: CompiledScenario) -> None:
        """Insert an artifact into both layers (evicting LRU entries as needed)."""
        with self._lock:
            self._remember(artifact)
        self._write_disk(artifact)

    def _remember(self, artifact: CompiledScenario) -> None:
        self._memory[artifact.fingerprint] = artifact
        self._memory.move_to_end(artifact.fingerprint)
        while len(self._memory) > self.max_memory:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def clear(self, disk: bool = False) -> None:
        """Drop the memory layer (and, with ``disk=True``, the disk entries)."""
        with self._lock:
            self._memory.clear()
        if disk and self.disk_dir is not None and self.disk_dir.exists():
            for path in self.disk_dir.glob("*.scenic-artifact.pkl"):
                try:
                    path.unlink()
                except OSError:
                    pass

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._memory

    # -- disk layer ---------------------------------------------------------------

    def _disk_path(self, fingerprint: str) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        return self.disk_dir / f"{fingerprint}.scenic-artifact.pkl"

    def _read_disk(self, fingerprint: str) -> Optional[CompiledScenario]:
        path = self._disk_path(fingerprint)
        if path is None or not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                artifact = pickle.load(handle)
        except Exception:
            # Corrupt, truncated or format-stale entry: recompile instead.
            return None
        if not isinstance(artifact, CompiledScenario) or artifact.fingerprint != fingerprint:
            return None
        return artifact

    def _write_disk(self, artifact: CompiledScenario) -> None:
        path = self._disk_path(artifact.fingerprint)
        if path is None:
            return
        try:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                mode="wb", dir=self.disk_dir, suffix=".tmp", delete=False
            )
            try:
                with handle:
                    pickle.dump(artifact, handle)
                os.replace(handle.name, path)
            except BaseException:
                os.unlink(handle.name)
                raise
        except OSError:
            pass  # disk layer is best-effort; the memory layer already has it


# ---------------------------------------------------------------------------
# Module-level default cache and entry points
# ---------------------------------------------------------------------------

_default_cache = ArtifactCache(disk_dir=os.environ.get(CACHE_DIR_ENV) or None)
_default_cache_lock = threading.Lock()

#: Sentinel distinguishing "use the default cache" from "no cache at all".
_USE_DEFAULT = object()


def get_default_cache() -> ArtifactCache:
    """The process-wide artifact cache used when no cache is passed explicitly."""
    return _default_cache


def set_default_cache(cache: ArtifactCache) -> ArtifactCache:
    """Replace the process-wide cache; returns the previous one."""
    global _default_cache
    with _default_cache_lock:
        previous, _default_cache = _default_cache, cache
    return previous


def compile_scenario(source: str, cache: Optional[ArtifactCache] = _USE_DEFAULT) -> CompiledScenario:
    """Compile Scenic *source* into a cached :class:`CompiledScenario`.

    The single front door to compilation: the artifact is looked up in
    *cache* (the process-wide default unless overridden; pass ``None`` to
    force an uncached fresh compile) by content hash, so compiling the same
    program twice parses it once.  Syntax errors surface immediately as
    :class:`~repro.core.errors.ScenicError` subclasses and are never cached;
    runtime errors surface when a scenario is requested from the artifact.
    """
    if cache is None:
        source_text = str(source)
        return CompiledScenario(
            source_text, source_fingerprint(source_text), parse_program(source_text)
        )
    if cache is _USE_DEFAULT:
        cache = _default_cache
    return cache.get(str(source))


def scenario_from_string(
    source: str,
    workspace: Optional[Any] = None,
    extra_names: Optional[Dict[str, Any]] = None,
) -> Scenario:
    """Compile a Scenic program given as a string into a Scenario.

    Routed through the artifact cache: repeated compilation of the same
    source skips the lexer and parser and re-runs only the interpreter, so
    each call still gets an *independent* scenario (matching the historical
    semantics — callers may prune or otherwise mutate the result freely).
    For the fully interned fast path that also skips the interpreter, use
    ``compile_scenario(source).scenario()``.
    """
    return compile_scenario(source).scenario(
        fresh=True, workspace=workspace, extra_names=extra_names
    )


def scenario_from_file(
    path: Any,
    workspace: Optional[Any] = None,
    extra_names: Optional[Dict[str, Any]] = None,
) -> Scenario:
    """Compile a ``.scenic`` file into a Scenario (see :func:`scenario_from_string`)."""
    source = Path(path).read_text()
    return scenario_from_string(source, workspace=workspace, extra_names=extra_names)


__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactCache",
    "ArtifactMetadata",
    "CacheStats",
    "ClassSummary",
    "CompiledScenario",
    "ObjectSummary",
    "StaleArtifactError",
    "compile_scenario",
    "get_default_cache",
    "normalize_source",
    "scenario_from_file",
    "scenario_from_string",
    "set_default_cache",
    "source_fingerprint",
]

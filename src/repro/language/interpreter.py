"""Tree-walking interpreter for Scenic programs.

Executing a program's statements has the side effects described in Sec. 5.1:
objects are created (and registered with the active scenario context), the
ego is assigned, requirements are declared, and global parameters are set.
Random sub-expressions evaluate to distribution nodes rather than concrete
values, so the interpreter's output — a :class:`repro.core.Scenario` — is a
symbolic description of the scene distribution, later sampled by rejection.

Following the paper's restriction (Sec. 4), conditional control flow may not
depend on random values; the interpreter raises an error if a branch
condition is random.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core import specifiers as core_specifiers
from ..core.context import ScenarioContext, pop_context, push_context
from ..core.distributions import (
    AttributeDistribution,
    Discrete,
    Distribution,
    Normal,
    OperatorDistribution,
    Options,
    Range,
    TruncatedNormal,
    Uniform,
    needs_sampling,
    resample,
)
from ..core.errors import InterpreterError, ScenicError
from ..core.lazy import (
    DelayedArgument,
    is_lazy,
    make_delayed_function,
)
from ..core.objects import Object, OrientedPoint, Point
from ..core.operators import (
    angle_between,
    apparent_heading,
    back_left_of,
    back_of,
    back_right_of,
    can_see,
    distance_between,
    follow_field,
    front_left_of,
    front_of,
    front_right_of,
    heading_of,
    heading_relative_to,
    is_in_region,
    left_edge_of,
    oriented_point_relative_to,
    position_of,
    region_visible_from,
    relative_heading,
    right_edge_of,
    vector_offset_along_direction,
)
from ..core.regions import Region
from ..core.requirements import Requirement
from ..core.scenario import Scenario
from ..core.vectorfields import VectorField, field_sum
from ..core.vectors import Vector
from ..core.workspace import Workspace
from . import ast_nodes as ast
from .parser import parse_program

DEGREES_TO_RADIANS = math.pi / 180.0


class _ReturnValue(Exception):
    """Internal control flow for ``return`` statements."""

    def __init__(self, value: Any, line: Optional[int] = None):
        self.value = value
        self.line = line


class _BreakLoop(Exception):
    def __init__(self, line: Optional[int] = None):
        self.line = line
        super().__init__()


class _ContinueLoop(Exception):
    def __init__(self, line: Optional[int] = None):
        self.line = line
        super().__init__()


#: Python-level exceptions that user programs can trigger at evaluation time
#: (bad arithmetic, bad indexing, bad coercions in the core runtime, ...).
#: They are converted to :class:`InterpreterError` with the source line so
#: the front end never leaks a raw Python traceback for a program bug.
_RUNTIME_ERRORS = (
    TypeError,
    ValueError,
    KeyError,
    IndexError,
    AttributeError,
    ArithmeticError,  # includes ZeroDivisionError and OverflowError
    RecursionError,
)


class _SelfPlaceholder:
    """Stands for ``self`` inside class default-value expressions.

    Attribute access on the placeholder produces a :class:`DelayedArgument`
    depending on that property, which is how default values such as
    ``roadDirection at self.position`` become dependencies resolved by
    Algorithm 1.
    """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<self>"


class Environment:
    """A lexical scope: name bindings with an optional parent scope."""

    def __init__(self, parent: Optional["Environment"] = None):
        self.bindings: Dict[str, Any] = {}
        self.parent = parent

    def lookup(self, name: str) -> Any:
        scope: Optional[Environment] = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        raise InterpreterError(f"name '{name}' is not defined")

    def contains(self, name: str) -> bool:
        scope: Optional[Environment] = self
        while scope is not None:
            if name in scope.bindings:
                return True
            scope = scope.parent
        return False

    def assign(self, name: str, value: Any) -> None:
        self.bindings[name] = value


class ScenicFunction:
    """A function defined inside a Scenic program."""

    def __init__(self, definition: ast.FunctionDefinition, closure: Environment, interpreter: "Interpreter"):
        self.definition = definition
        self.closure = closure
        self.interpreter = interpreter

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        definition = self.definition
        interpreter = self.interpreter
        if interpreter.call_depth >= interpreter.MAX_CALL_DEPTH:
            raise InterpreterError(
                f"maximum call depth ({interpreter.MAX_CALL_DEPTH}) exceeded "
                f"while calling {definition.name}()",
                definition.line,
            )
        scope = Environment(self.closure)
        parameters = definition.parameters
        if len(args) > len(parameters):
            raise InterpreterError(
                f"{definition.name}() takes at most {len(parameters)} arguments", definition.line
            )
        bound = dict(zip(parameters, args))
        for name, value in kwargs.items():
            if name not in parameters:
                raise InterpreterError(f"{definition.name}() got unexpected argument '{name}'", definition.line)
            if name in bound:
                raise InterpreterError(f"{definition.name}() got duplicate argument '{name}'", definition.line)
            bound[name] = value
        for parameter, default in zip(parameters, definition.defaults):
            if parameter not in bound:
                if default is None:
                    raise InterpreterError(
                        f"{definition.name}() missing required argument '{parameter}'", definition.line
                    )
                bound[parameter] = self.interpreter.evaluate(default, self.closure)
        for name, value in bound.items():
            scope.assign(name, value)
        interpreter.call_depth += 1
        try:
            self.interpreter.execute_block(definition.body, scope)
        except _ReturnValue as result:
            return result.value
        except _BreakLoop as escape:
            raise InterpreterError("'break' outside a loop", escape.line) from None
        except _ContinueLoop as escape:
            raise InterpreterError("'continue' outside a loop", escape.line) from None
        finally:
            interpreter.call_depth -= 1
        return None

    def __repr__(self) -> str:
        return f"<scenic function {self.definition.name}>"


def _make_builtins() -> Dict[str, Any]:
    """Names available to every Scenic program."""
    return {
        "Uniform": Uniform,
        "Discrete": Discrete,
        "Normal": Normal,
        "TruncatedNormal": TruncatedNormal,
        "Range": Range,
        "resample": resample,
        "Point": Point,
        "OrientedPoint": OrientedPoint,
        "Object": Object,
        "Vector": Vector,
        # A subset of Python builtins that scenario code tends to use.
        "range": range,
        "len": len,
        "abs": _scenic_abs,
        "min": min,
        "max": max,
        "int": int,
        "float": float,
        "str": str,
        "round": round,
        "print": print,
        "math": math,
        "True": True,
        "False": False,
        "None": None,
    }


def _scenic_abs(value: Any) -> Any:
    """``abs`` that also works on random values (returns a derived distribution)."""
    if isinstance(value, Distribution):
        return OperatorDistribution("abs", value)
    if isinstance(value, DelayedArgument):
        return make_delayed_function(_scenic_abs, value)
    return abs(value)


class Interpreter:
    """Executes Scenic programs against the core runtime."""

    #: Maximum nesting of Scenic-level function calls before the interpreter
    #: reports unbounded recursion instead of dying with a RecursionError.
    #: Each Scenic call costs a couple of dozen Python frames, so the cap
    #: must fire well before CPython's own recursion limit would.
    MAX_CALL_DEPTH = 32

    def __init__(self, extra_names: Optional[Dict[str, Any]] = None):
        self.globals = Environment()
        for name, value in _make_builtins().items():
            self.globals.assign(name, value)
        if extra_names:
            for name, value in extra_names.items():
                self.globals.assign(name, value)
        self.context: Optional[ScenarioContext] = None
        self.workspace: Optional[Workspace] = None
        self.call_depth = 0

    # -- top level ---------------------------------------------------------------

    def run(self, source: str, workspace: Optional[Workspace] = None) -> Scenario:
        """Parse and execute *source*, returning the resulting scenario.

        Equivalent to ``run_program(parse_program(source))``; callers with a
        pre-parsed AST (the compiled-artifact warm path of
        :mod:`repro.language.compiler`) should call :meth:`run_program`
        directly and skip the lexer and parser entirely.
        """
        return self.run_program(parse_program(source), workspace=workspace)

    def run_program(self, program: ast.Program, workspace: Optional[Workspace] = None) -> Scenario:
        """Execute an already-parsed *program* and return the resulting scenario.

        Program failures surface as :class:`~repro.core.errors.ScenicError`
        subclasses, with source lines wherever they are known; ``break`` /
        ``continue`` / ``return`` at module level are reported rather than
        leaking the interpreter's internal control-flow exceptions, and any
        residual Python exception is converted as a last resort (the
        "never crashes" contract relied on by :mod:`repro.fuzz`).

        The AST is treated as read-only: one parsed program may be executed
        any number of times (each run yields an independent scenario), which
        is what makes :class:`~repro.language.compiler.CompiledScenario`
        artifacts reusable and shareable across threads and processes.
        """
        self.context = push_context()
        self.workspace = workspace
        try:
            self.execute_block(program.statements, self.globals)
        except _BreakLoop as escape:
            raise InterpreterError("'break' outside a loop", escape.line) from None
        except _ContinueLoop as escape:
            raise InterpreterError("'continue' outside a loop", escape.line) from None
        except _ReturnValue as escape:
            raise InterpreterError("'return' outside a function", escape.line) from None
        except ScenicError:
            raise
        except Exception as error:
            raise InterpreterError(f"internal error: {type(error).__name__}: {error}") from error
        finally:
            context = pop_context()
        self.context = None
        scenario = Scenario.from_context(context, workspace=self.workspace)
        return scenario

    # -- statements ---------------------------------------------------------------

    def execute_block(self, statements: Sequence[ast.Node], env: Environment) -> None:
        for statement in statements:
            self.execute(statement, env)

    def execute(self, node: ast.Node, env: Environment) -> None:
        method = getattr(self, f"_execute_{type(node).__name__}", None)
        if method is None:
            raise InterpreterError(f"cannot execute {type(node).__name__} statement", node.line)
        method(node, env)

    def _execute_ImportStatement(self, node: ast.ImportStatement, env: Environment) -> None:
        from ..worlds.registry import load_world, registered_worlds

        namespace, workspace = load_world(node.module)
        if namespace is None:
            known = ", ".join(registered_worlds(include_aliases=True))
            raise InterpreterError(
                f"unknown Scenic library '{node.module}' (registered: {known})",
                node.line,
            )
        for name, value in namespace.items():
            self.globals.assign(name, value)
        if workspace is not None and self.workspace is None:
            self.workspace = workspace

    def _execute_Assignment(self, node: ast.Assignment, env: Environment) -> None:
        value = self.evaluate(node.value, env)
        target = node.target
        if isinstance(target, ast.Name):
            env.assign(target.identifier, value)
            if target.identifier == "ego":
                self._require_context(node).set_ego(value)
            return
        if isinstance(target, ast.Attribute):
            base = self.evaluate(target.target, env)
            self._guard(node, setattr, base, target.attribute, value)
            return
        if isinstance(target, ast.Subscript):
            base = self.evaluate(target.target, env)
            index = self.evaluate(target.index, env)
            self._guard(node, lambda: base.__setitem__(index, value))
            return
        raise InterpreterError("invalid assignment target", node.line)

    def _execute_ParamStatement(self, node: ast.ParamStatement, env: Environment) -> None:
        context = self._require_context(node)
        for name, expression in node.assignments:
            context.set_param(name, self.evaluate(expression, env))

    def _execute_RequireStatement(self, node: ast.RequireStatement, env: Environment) -> None:
        context = self._require_context(node)
        condition = self.evaluate(node.condition, env)
        probability = 1.0
        if node.probability is not None:
            probability_value = self.evaluate(node.probability, env)
            if needs_sampling(probability_value):
                raise InterpreterError("the probability of a soft requirement must be a constant", node.line)
            probability = float(probability_value)
        context.add_requirement(Requirement(condition, probability, line=node.line))

    def _execute_MutateStatement(self, node: ast.MutateStatement, env: Environment) -> None:
        context = self._require_context(node)
        scale: Any = 1.0
        if node.scale is not None:
            scale = self.evaluate(node.scale, env)
        if node.targets:
            targets = [env.lookup(name) for name in node.targets]
        else:
            targets = list(context.objects)
        for target in targets:
            if not isinstance(target, Point):
                raise InterpreterError("mutate targets must be scenario objects", node.line)
            target._assign_property("mutationScale", scale)

    def _execute_ExpressionStatement(self, node: ast.ExpressionStatement, env: Environment) -> None:
        self.evaluate(node.expression, env)

    def _execute_IfStatement(self, node: ast.IfStatement, env: Environment) -> None:
        condition = self.evaluate(node.condition, env)
        self._check_not_random(condition, node, "conditional branching")
        if condition:
            self.execute_block(node.body, env)
        else:
            self.execute_block(node.orelse, env)

    def _execute_ForStatement(self, node: ast.ForStatement, env: Environment) -> None:
        iterable = self.evaluate(node.iterable, env)
        self._check_not_random(iterable, node, "loop iteration")
        iterable = self._guard(node, iter, iterable)
        for item in iterable:
            env.assign(node.variable, item)
            try:
                self.execute_block(node.body, env)
            except _BreakLoop:
                break
            except _ContinueLoop:
                continue

    def _execute_WhileStatement(self, node: ast.WhileStatement, env: Environment) -> None:
        iterations = 0
        while True:
            condition = self.evaluate(node.condition, env)
            self._check_not_random(condition, node, "loop condition")
            if not condition:
                break
            iterations += 1
            if iterations > 1_000_000:
                raise InterpreterError("while loop exceeded 1,000,000 iterations", node.line)
            try:
                self.execute_block(node.body, env)
            except _BreakLoop:
                break
            except _ContinueLoop:
                continue

    def _execute_FunctionDefinition(self, node: ast.FunctionDefinition, env: Environment) -> None:
        env.assign(node.name, ScenicFunction(node, env, self))

    def _execute_ReturnStatement(self, node: ast.ReturnStatement, env: Environment) -> None:
        value = self.evaluate(node.value, env) if node.value is not None else None
        raise _ReturnValue(value, node.line)

    def _execute_BreakStatement(self, node: ast.BreakStatement, env: Environment) -> None:
        raise _BreakLoop(node.line)

    def _execute_ContinueStatement(self, node: ast.ContinueStatement, env: Environment) -> None:
        raise _ContinueLoop(node.line)

    def _execute_PassStatement(self, node: ast.PassStatement, env: Environment) -> None:
        return None

    def _execute_ClassDefinition(self, node: ast.ClassDefinition, env: Environment) -> None:
        if node.superclass is not None:
            if not env.contains(node.superclass):
                raise InterpreterError(f"name '{node.superclass}' is not defined", node.line)
            superclass = env.lookup(node.superclass)
            if not (isinstance(superclass, type) and issubclass(superclass, Point)):
                raise InterpreterError(f"'{node.superclass}' is not a Scenic class", node.line)
        else:
            superclass = Object
        defaults: Dict[str, Callable[[], Any]] = {}
        for property_name, expression in node.properties:
            defaults[property_name] = self._make_default_factory(expression, env)
        new_class = type(node.name, (superclass,), {"_scenic_properties": defaults})
        env.assign(node.name, new_class)

    def _make_default_factory(self, expression: ast.Node, env: Environment) -> Callable[[], Any]:
        def factory() -> Any:
            scope = Environment(env)
            scope.assign("self", _SelfPlaceholder())
            return self.evaluate(expression, scope)

        return factory

    # -- expressions ----------------------------------------------------------------

    def evaluate(self, node: ast.Node, env: Environment) -> Any:
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is None:
            raise InterpreterError(f"cannot evaluate {type(node).__name__} expression", node.line)
        return method(node, env)

    # literals

    def _eval_NumberLiteral(self, node: ast.NumberLiteral, env: Environment) -> Any:
        return node.value

    def _eval_StringLiteral(self, node: ast.StringLiteral, env: Environment) -> Any:
        return node.value

    def _eval_BooleanLiteral(self, node: ast.BooleanLiteral, env: Environment) -> Any:
        return node.value

    def _eval_NoneLiteral(self, node: ast.NoneLiteral, env: Environment) -> Any:
        return None

    def _eval_Name(self, node: ast.Name, env: Environment) -> Any:
        if env.contains(node.identifier):
            return env.lookup(node.identifier)
        if node.identifier == "ego":
            context = self._require_context(node)
            if context.ego is not None:
                return context.ego
        raise InterpreterError(f"name '{node.identifier}' is not defined", node.line)

    def _eval_ListLiteral(self, node: ast.ListLiteral, env: Environment) -> Any:
        return [self.evaluate(element, env) for element in node.elements]

    def _eval_DictLiteral(self, node: ast.DictLiteral, env: Environment) -> Any:
        return {self.evaluate(key, env): self.evaluate(value, env) for key, value in node.items}

    def _eval_IntervalDistribution(self, node: ast.IntervalDistribution, env: Environment) -> Any:
        low = self.evaluate(node.low, env)
        high = self.evaluate(node.high, env)
        return Range(low, high)

    # operators

    def _eval_UnaryOp(self, node: ast.UnaryOp, env: Environment) -> Any:
        operand = self.evaluate(node.operand, env)
        if node.operator == "-":
            return self._guard(node, self._unary, "neg", operand, lambda value: -value)
        if node.operator == "not":
            return self._guard(node, self._unary, "not", operand, lambda value: not value)
        raise InterpreterError(f"unknown unary operator {node.operator}", node.line)

    def _eval_BinaryOp(self, node: ast.BinaryOp, env: Environment) -> Any:
        left = self.evaluate(node.left, env)
        right = self.evaluate(node.right, env)
        return self._guard(node, self._binary, node.operator, left, right)

    def _eval_Comparison(self, node: ast.Comparison, env: Environment) -> Any:
        left = self.evaluate(node.left, env)
        right = self.evaluate(node.right, env)
        if node.operator == "is":
            return left is right
        if node.operator == "is not":
            return left is not right
        return self._guard(node, self._binary, node.operator, left, right)

    def _eval_BoolOp(self, node: ast.BoolOp, env: Environment) -> Any:
        left = self.evaluate(node.left, env)
        if not needs_sampling(left) and not is_lazy(left):
            # Short circuit on concrete values, as Python does.
            if node.operator == "and" and not left:
                return left
            if node.operator == "or" and left:
                return left
            return self.evaluate(node.right, env)
        right = self.evaluate(node.right, env)
        return self._binary(node.operator, left, right)

    def _eval_Conditional(self, node: ast.Conditional, env: Environment) -> Any:
        condition = self.evaluate(node.condition, env)
        self._check_not_random(condition, node, "conditional expressions")
        if condition:
            return self.evaluate(node.then_value, env)
        return self.evaluate(node.else_value, env)

    def _eval_Attribute(self, node: ast.Attribute, env: Environment) -> Any:
        target = self.evaluate(node.target, env)
        return self._attribute(target, node.attribute, node)

    def _eval_Subscript(self, node: ast.Subscript, env: Environment) -> Any:
        target = self.evaluate(node.target, env)
        index = self.evaluate(node.index, env)
        if isinstance(target, Distribution) or isinstance(index, Distribution):
            return OperatorDistribution("getitem", target, index)
        return self._guard(node, lambda: target[index])

    def _eval_Call(self, node: ast.Call, env: Environment) -> Any:
        function = self.evaluate(node.function, env)
        args = [self.evaluate(argument, env) for argument in node.args]
        kwargs = {name: self.evaluate(value, env) for name, value in node.keyword_args}
        if not callable(function):
            raise InterpreterError(f"{function!r} is not callable", node.line)
        return self._guard(node, function, *args, **kwargs)

    # Scenic-specific expressions

    def _eval_VectorLiteral(self, node: ast.VectorLiteral, env: Environment) -> Any:
        from ..core.distributions import make_random_vector

        x = self.evaluate(node.x, env)
        y = self.evaluate(node.y, env)
        return self._apply(make_random_vector, x, y, name="vector")

    def _eval_Degrees(self, node: ast.Degrees, env: Environment) -> Any:
        value = self.evaluate(node.value, env)
        return self._binary("*", value, DEGREES_TO_RADIANS)

    def _eval_RelativeTo(self, node: ast.RelativeTo, env: Environment) -> Any:
        value = self.evaluate(node.value, env)
        reference = self.evaluate(node.reference, env)
        return self._relative_to(value, reference, node)

    def _eval_OffsetBy(self, node: ast.OffsetBy, env: Environment) -> Any:
        value = self.evaluate(node.value, env)
        offset = self.evaluate(node.offset, env)
        if isinstance(value, (OrientedPoint,)) or (
            isinstance(value, Object)
        ):
            return oriented_point_relative_to(offset, value)
        return self._binary("+", self._coerce_vector(value), self._coerce_vector(offset))

    def _eval_OffsetAlong(self, node: ast.OffsetAlong, env: Environment) -> Any:
        value = self.evaluate(node.value, env)
        direction = self.evaluate(node.direction, env)
        offset = self.evaluate(node.offset, env)
        return self._apply(
            vector_offset_along_direction, self._coerce_vector(value), direction, self._coerce_vector(offset),
            name="offset along",
        )

    def _eval_FieldAt(self, node: ast.FieldAt, env: Environment) -> Any:
        field = self.evaluate(node.field_expr, env)
        position = self.evaluate(node.position, env)
        if not isinstance(field, VectorField):
            raise InterpreterError("'at' expects a vector field on its left-hand side", node.line)
        return self._apply(field.at, position, name="field at")

    def _eval_CanSee(self, node: ast.CanSee, env: Environment) -> Any:
        viewer = self.evaluate(node.viewer, env)
        target = self.evaluate(node.target, env)
        return self._apply(can_see, viewer, target, name="can see")

    def _eval_IsIn(self, node: ast.IsIn, env: Environment) -> Any:
        value = self.evaluate(node.value, env)
        region = self.evaluate(node.region, env)
        if isinstance(region, Region) or isinstance(region, Distribution):
            return self._apply(is_in_region, value, region, name="is in")
        # Fall back to Python membership for lists/sets.
        return value in region

    def _eval_DistanceTo(self, node: ast.DistanceTo, env: Environment) -> Any:
        target = self.evaluate(node.target, env)
        origin = self.evaluate(node.origin, env) if node.origin is not None else self._ego(node)
        return self._apply(distance_between, position_of(origin), position_of(target), name="distance")

    def _eval_AngleTo(self, node: ast.AngleTo, env: Environment) -> Any:
        target = self.evaluate(node.target, env)
        origin = self.evaluate(node.origin, env) if node.origin is not None else self._ego(node)
        return self._apply(angle_between, position_of(origin), position_of(target), name="angle")

    def _eval_RelativeHeading(self, node: ast.RelativeHeading, env: Environment) -> Any:
        heading = self.evaluate(node.heading, env)
        reference = (
            self.evaluate(node.reference, env) if node.reference is not None else self._ego(node)
        )
        return self._apply(relative_heading, heading_of(heading), heading_of(reference), name="relative heading")

    def _eval_ApparentHeading(self, node: ast.ApparentHeading, env: Environment) -> Any:
        target = self.evaluate(node.target, env)
        origin = self.evaluate(node.origin, env) if node.origin is not None else self._ego(node)
        return self._apply(apparent_heading, target, position_of(origin), name="apparent heading")

    def _eval_VisibleRegionExpr(self, node: ast.VisibleRegionExpr, env: Environment) -> Any:
        region = self.evaluate(node.region, env)
        viewer = self.evaluate(node.viewer, env) if node.viewer is not None else self._ego(node)
        return self._apply(region_visible_from, region, viewer, name="visible region")

    def _eval_Follow(self, node: ast.Follow, env: Environment) -> Any:
        field = self.evaluate(node.field_expr, env)
        distance = self.evaluate(node.distance, env)
        start = self.evaluate(node.start, env) if node.start is not None else self._ego(node)
        if not isinstance(field, VectorField):
            raise InterpreterError("'follow' expects a vector field", node.line)
        return self._apply(follow_field, field, position_of(start), distance, name="follow")

    def _eval_EdgeOf(self, node: ast.EdgeOf, env: Environment) -> Any:
        target = self.evaluate(node.target, env)
        functions = {
            "front": front_of,
            "back": back_of,
            "left": left_edge_of,
            "right": right_edge_of,
            "front left": front_left_of,
            "front right": front_right_of,
            "back left": back_left_of,
            "back right": back_right_of,
        }
        return self._apply(functions[node.which], target, name=node.which)

    def _eval_ObjectCreation(self, node: ast.ObjectCreation, env: Environment) -> Any:
        klass = env.lookup(node.class_name) if env.contains(node.class_name) else None
        if klass is None:
            raise InterpreterError(f"unknown class '{node.class_name}'", node.line)
        if not (isinstance(klass, type) and issubclass(klass, Point)):
            raise InterpreterError(f"'{node.class_name}' is not a Scenic class", node.line)
        specifiers = [
            self._guard(spec, self._build_specifier, spec, env) for spec in node.specifiers
        ]
        return self._guard(node, klass, *specifiers)

    # -- specifier construction ------------------------------------------------------

    def _build_specifier(self, node: ast.SpecifierNode, env: Environment) -> core_specifiers.Specifier:
        kind = node.kind
        operands = [self.evaluate(operand, env) for operand in node.operands]

        if kind == "with":
            return core_specifiers.With(node.name, operands[0])
        if kind == "at":
            return core_specifiers.At(operands[0])
        if kind == "offset by":
            return core_specifiers.OffsetBy(operands[0], ego=self._ego(node))
        if kind == "offset along":
            return core_specifiers.OffsetAlong(operands[0], operands[1], ego=self._ego(node))
        if kind == "left of":
            return core_specifiers.LeftOf(operands[0], operands[1] if len(operands) > 1 else 0)
        if kind == "right of":
            return core_specifiers.RightOf(operands[0], operands[1] if len(operands) > 1 else 0)
        if kind == "ahead of":
            return core_specifiers.AheadOf(operands[0], operands[1] if len(operands) > 1 else 0)
        if kind == "behind":
            return core_specifiers.Behind(operands[0], operands[1] if len(operands) > 1 else 0)
        if kind == "beyond":
            from_point = operands[2] if len(operands) > 2 else self._ego(node)
            return core_specifiers.Beyond(operands[0], operands[1], from_point)
        if kind == "visible":
            viewer = operands[0] if operands else self._ego(node)
            return core_specifiers.Visible(viewer)
        if kind == "in":
            return core_specifiers.In(operands[0])
        if kind == "following":
            field = operands[0]
            distance = operands[1]
            start = operands[2] if len(operands) > 2 else self._ego(node)
            return core_specifiers.Following(field, distance, start)
        if kind == "facing":
            return core_specifiers.Facing(operands[0])
        if kind == "facing toward":
            return core_specifiers.FacingToward(operands[0])
        if kind == "facing away from":
            return core_specifiers.FacingAwayFrom(operands[0])
        if kind == "apparently facing":
            from_point = operands[1] if len(operands) > 1 else self._ego(node)
            return core_specifiers.ApparentlyFacing(operands[0], from_point)
        raise InterpreterError(f"unknown specifier kind '{kind}'", node.line)

    # -- helpers -----------------------------------------------------------------------

    def _guard(self, node: ast.Node, function: Callable, *args: Any, **kwargs: Any) -> Any:
        """Run *function*, converting raw Python errors to InterpreterErrors.

        ScenicErrors (including RejectSample and errors already carrying a
        line) pass through untouched; everything in :data:`_RUNTIME_ERRORS`
        becomes an :class:`InterpreterError` pinned to *node*'s source line.
        """
        try:
            return function(*args, **kwargs)
        except ScenicError:
            raise
        except (_ReturnValue, _BreakLoop, _ContinueLoop):
            raise
        except _RUNTIME_ERRORS as error:
            message = str(error) or type(error).__name__
            raise InterpreterError(f"{type(error).__name__}: {message}", node.line) from error

    def _require_context(self, node: ast.Node) -> ScenarioContext:
        if self.context is None:
            raise InterpreterError("no active scenario context", node.line)
        return self.context

    def _ego(self, node: ast.Node) -> Any:
        context = self._require_context(node)
        if context.ego is None:
            raise InterpreterError("the ego object is not defined yet", node.line)
        return context.ego

    def _check_not_random(self, value: Any, node: ast.Node, construct: str) -> None:
        if needs_sampling(value) or is_lazy(value):
            raise InterpreterError(
                f"{construct} may not depend on random values (Scenic restriction, Sec. 4)",
                node.line,
            )

    def _apply(self, function: Callable, *args: Any, name: str = "operator") -> Any:
        """Apply an operator, deferring if any argument is lazy (``self``-dependent)."""
        if any(is_lazy(argument) for argument in args):
            return make_delayed_function(function, *args)
        return function(*args)

    def _unary(self, operator: str, operand: Any, concrete: Callable[[Any], Any]) -> Any:
        if is_lazy(operand):
            return make_delayed_function(lambda value: self._unary(operator, value, concrete), operand)
        if needs_sampling(operand):
            return OperatorDistribution(operator, operand)
        return concrete(operand)

    def _binary(self, operator: str, left: Any, right: Any) -> Any:
        if is_lazy(left) or is_lazy(right):
            return make_delayed_function(lambda a, b: self._binary(operator, a, b), left, right)
        if needs_sampling(left) or needs_sampling(right):
            return OperatorDistribution(operator, left, right)
        from ..core.distributions import _BINARY_OPERATIONS

        if operator not in _BINARY_OPERATIONS:
            raise ScenicError(f"unsupported binary operator '{operator}'")
        return _BINARY_OPERATIONS[operator](left, right)

    def _attribute(self, target: Any, attribute: str, node: ast.Node) -> Any:
        if isinstance(target, _SelfPlaceholder):
            return DelayedArgument({attribute}, lambda obj: getattr(obj, attribute))
        if is_lazy(target):
            return make_delayed_function(lambda value: self._attribute(value, attribute, node), target)
        if isinstance(target, Distribution):
            return AttributeDistribution(target, attribute)
        try:
            return getattr(target, attribute)
        except AttributeError as error:
            raise InterpreterError(str(error), node.line)

    def _coerce_vector(self, value: Any) -> Any:
        if isinstance(value, (Point,)):
            return value.position
        return value

    def _relative_to(self, value: Any, reference: Any, node: ast.Node) -> Any:
        """The (heavily overloaded) ``X relative to Y`` operator."""
        value_is_field = isinstance(value, VectorField)
        reference_is_field = isinstance(reference, VectorField)
        if value_is_field and reference_is_field:
            # F1 relative to F2: a heading depending on the object's position.
            return DelayedArgument(
                {"position"},
                lambda obj: self._binary("+", value.at(obj.position), reference.at(obj.position)),
            )
        if reference_is_field:
            # H relative to F: offset the field's heading at the object's position.
            return DelayedArgument(
                {"position"},
                lambda obj: self._binary("+", heading_of(value), reference.at(obj.position)),
            )
        if value_is_field:
            # F relative to H.
            return DelayedArgument(
                {"position"},
                lambda obj: self._binary("+", value.at(obj.position), heading_of(reference)),
            )
        if is_lazy(value) or is_lazy(reference):
            return make_delayed_function(lambda a, b: self._relative_to(a, b, node), value, reference)

        value_vectorish = self._is_vector_like(value)
        reference_oriented = isinstance(reference, OrientedPoint)
        reference_vectorish = self._is_vector_like(reference) and not reference_oriented
        if value_vectorish and reference_oriented:
            return oriented_point_relative_to(value, reference)
        if value_vectorish and reference_vectorish:
            return self._binary("+", self._coerce_vector(value), self._coerce_vector(reference))
        if value_vectorish and isinstance(reference, Distribution):
            return oriented_point_relative_to(value, reference)
        # Otherwise interpret both sides as headings.
        return self._apply(heading_relative_to, heading_of(value), heading_of(reference), name="relative to")

    @staticmethod
    def _is_vector_like(value: Any) -> bool:
        from ..core.distributions import VectorDistribution

        if isinstance(value, (Vector, VectorDistribution)):
            return True
        if isinstance(value, (tuple, list)) and len(value) == 2:
            return True
        if isinstance(value, Point) and not isinstance(value, OrientedPoint):
            return True
        return False


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


def scenario_from_string(
    source: str,
    workspace: Optional[Workspace] = None,
    extra_names: Optional[Dict[str, Any]] = None,
) -> Scenario:
    """Compile a Scenic program given as a string into a Scenario.

    Delegates to :mod:`repro.language.compiler`, which caches the parsed AST
    by content hash — repeated compilations of the same source skip the
    lexer and parser while still returning independent scenarios.
    """
    from .compiler import scenario_from_string as _compile

    return _compile(source, workspace=workspace, extra_names=extra_names)


def scenario_from_file(
    path: Any,
    workspace: Optional[Workspace] = None,
    extra_names: Optional[Dict[str, Any]] = None,
) -> Scenario:
    """Compile a ``.scenic`` file into a Scenario (see :func:`scenario_from_string`)."""
    source = Path(path).read_text()
    return scenario_from_string(source, workspace=workspace, extra_names=extra_names)


__all__ = ["Interpreter", "scenario_from_string", "scenario_from_file", "Environment", "ScenicFunction"]

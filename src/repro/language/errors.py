"""Error-reporting helpers for the Scenic front end."""

from __future__ import annotations

from typing import Optional

from ..core.errors import ScenicSyntaxError


def syntax_error(message: str, line: Optional[int] = None, column: Optional[int] = None) -> ScenicSyntaxError:
    """Construct a :class:`ScenicSyntaxError` with source location."""
    return ScenicSyntaxError(message, line=line, column=column)


def format_syntax_error(source: str, error: ScenicSyntaxError) -> str:
    """A human-readable report showing the offending source line with a caret."""
    if error.line is None:
        return str(error)
    lines = source.splitlines()
    if not (1 <= error.line <= len(lines)):
        return str(error)
    source_line = lines[error.line - 1]
    pointer = ""
    if error.column is not None:
        pointer = "\n    " + " " * max(error.column - 1, 0) + "^"
    return f"{error}\n    {source_line}{pointer}"


__all__ = ["syntax_error", "format_syntax_error"]

"""The Scenic domain-specific language: lexer, parser and interpreter.

This package implements the surface syntax of Fig. 5 (and Appendix A's
gallery of scenarios): Python-like statements plus Scenic's specifiers,
geometric operators, distributions, ``require``/``mutate``/``param``
statements, and class definitions with default-value properties.

The top-level entry points are :func:`scenario_from_string` and
:func:`scenario_from_file`, which compile a Scenic program into a
:class:`repro.core.Scenario` ready for sampling.
"""

from .lexer import tokenize, Token, TokenKind
from .parser import parse_program
from .interpreter import Interpreter, scenario_from_string, scenario_from_file
from .errors import format_syntax_error

__all__ = [
    "tokenize",
    "Token",
    "TokenKind",
    "parse_program",
    "Interpreter",
    "scenario_from_string",
    "scenario_from_file",
    "format_syntax_error",
]

"""The Scenic domain-specific language: lexer, parser, interpreter, compiler.

This package implements the surface syntax of Fig. 5 (and Appendix A's
gallery of scenarios): Python-like statements plus Scenic's specifiers,
geometric operators, distributions, ``require``/``mutate``/``param``
statements, and class definitions with default-value properties.

The top-level entry points are :func:`compile_scenario` — which turns a
program into a cached, picklable :class:`CompiledScenario` artifact (the
compile-once, sample-many unit; see ``docs/index.md``) — and the classic
:func:`scenario_from_string` / :func:`scenario_from_file`, which compile a
Scenic program straight into a :class:`repro.core.Scenario` ready for
sampling (routed through the artifact cache, so repeated compiles skip the
lexer and parser).
"""

from .lexer import tokenize, Token, TokenKind
from .parser import parse_program
from .interpreter import Interpreter
from .compiler import (
    ArtifactCache,
    ArtifactMetadata,
    CompiledScenario,
    compile_scenario,
    get_default_cache,
    scenario_from_file,
    scenario_from_string,
    set_default_cache,
    source_fingerprint,
)
from .errors import format_syntax_error

__all__ = [
    "tokenize",
    "Token",
    "TokenKind",
    "parse_program",
    "Interpreter",
    "ArtifactCache",
    "ArtifactMetadata",
    "CompiledScenario",
    "compile_scenario",
    "get_default_cache",
    "set_default_cache",
    "source_fingerprint",
    "scenario_from_string",
    "scenario_from_file",
    "format_syntax_error",
]

"""A uniform-grid spatial index over axis-aligned bounding boxes.

Two hot paths need "which items are near X" queries:

* the pairwise collision check — :meth:`SpatialGrid.candidate_pairs` prunes
  the O(n²) pair enumeration down to pairs sharing at least one grid cell;
* point location in large polygonal regions (triangulated road maps) —
  :meth:`SpatialGrid.candidates_for_points` buckets query points by cell and
  returns, per point, only the polygons whose bounds cover that cell.

The grid is conservative by construction: an item is registered in every
cell its (optionally margin-expanded) bounding box touches, so a query can
only over-approximate, never miss.  Exact predicates (separating-axis
overlap, ray-casting containment) run on the surviving candidates.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


class SpatialGrid:
    """A uniform grid over ``(N, 4)`` boxes of (minx, miny, maxx, maxy) rows."""

    def __init__(
        self,
        boxes: np.ndarray,
        cell_size: Optional[float] = None,
        margin: float = 0.0,
    ):
        boxes = np.asarray(boxes, dtype=float).reshape(-1, 4)
        if margin:
            boxes = boxes + np.array([-margin, -margin, margin, margin])
        self.boxes = boxes
        self.count = len(boxes)
        if self.count == 0:
            self.cell_size = 1.0
            self.origin = (0.0, 0.0)
            self._cells: Dict[Tuple[int, int], List[int]] = {}
            self._occupied_bounds = (0, 0, -1, -1)
            return
        if cell_size is None:
            # Twice the median box extent keeps most items in O(1) cells
            # while cells stay small enough to separate distant items.
            extents = np.maximum(boxes[:, 2] - boxes[:, 0], boxes[:, 3] - boxes[:, 1])
            cell_size = 2.0 * float(np.median(extents))
            if cell_size <= 0.0:
                cell_size = 1.0
        self.cell_size = float(cell_size)
        self.origin = (float(boxes[:, 0].min()), float(boxes[:, 1].min()))
        self._cells = {}
        for index in range(self.count):
            for key in self._covered_cells(boxes[index]):
                self._cells.setdefault(key, []).append(index)
        occupied_x = [key[0] for key in self._cells]
        occupied_y = [key[1] for key in self._cells]
        self._occupied_bounds = (
            min(occupied_x), min(occupied_y), max(occupied_x), max(occupied_y)
        )

    @classmethod
    def from_polygons(cls, polygons: Sequence[Any], margin: float = 1e-6,
                      cell_size: Optional[float] = None) -> "SpatialGrid":
        """A grid over polygon bounding boxes (margin absorbs edge tolerances)."""
        boxes = np.empty((len(polygons), 4), dtype=float)
        for index, polygon in enumerate(polygons):
            box = polygon.bounding_box()
            boxes[index] = (box.min_x, box.min_y, box.max_x, box.max_y)
        return cls(boxes, cell_size=cell_size, margin=margin)

    # -- cell arithmetic ---------------------------------------------------------

    def _cell_range(self, box: np.ndarray) -> Tuple[int, int, int, int]:
        ox, oy = self.origin
        size = self.cell_size
        min_cx = int(np.floor((box[0] - ox) / size))
        min_cy = int(np.floor((box[1] - oy) / size))
        max_cx = int(np.floor((box[2] - ox) / size))
        max_cy = int(np.floor((box[3] - oy) / size))
        return min_cx, min_cy, max_cx, max_cy

    def _covered_cells(self, box: np.ndarray) -> Iterable[Tuple[int, int]]:
        min_cx, min_cy, max_cx, max_cy = self._cell_range(box)
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                yield (cx, cy)

    # -- queries -----------------------------------------------------------------

    def query_box(self, box: Any) -> np.ndarray:
        """Indices of items whose cells intersect *box*, sorted ascending.

        *box* is (minx, miny, maxx, maxy) or a ``BoundingBox``.  The result
        over-approximates true AABB intersection (cell granularity), never
        misses.
        """
        if hasattr(box, "min_x"):
            box = (box.min_x, box.min_y, box.max_x, box.max_y)
        box = np.asarray(box, dtype=float)
        if not self._cells:
            return np.zeros(0, dtype=int)
        # Clamp to the occupied cell range: a query box spanning the whole
        # workspace must not iterate millions of empty cells.
        min_cx, min_cy, max_cx, max_cy = self._cell_range(box)
        low_x, low_y, high_x, high_y = self._occupied_bounds
        found: set = set()
        for cx in range(max(min_cx, low_x), min(max_cx, high_x) + 1):
            for cy in range(max(min_cy, low_y), min(max_cy, high_y) + 1):
                bucket = self._cells.get((cx, cy))
                if bucket:
                    found.update(bucket)
        return np.array(sorted(found), dtype=int)

    def query_point(self, x: float, y: float) -> np.ndarray:
        """Indices of items whose cells cover the point, sorted ascending."""
        return self.query_box((x, y, x, y))

    def bucket_for_point(self, x: float, y: float) -> Sequence[int]:
        """Item indices of the single cell covering ``(x, y)``, ascending.

        The allocation-free fast path for scalar point location: a point maps
        to exactly one grid cell, and buckets are built by inserting item
        indices in ascending order, so the returned list is already sorted —
        scanning it in order visits items in the same order a linear scan
        over all items would.
        """
        if not self._cells:
            return ()
        ox, oy = self.origin
        size = self.cell_size
        key = (int(np.floor((x - ox) / size)), int(np.floor((y - oy) / size)))
        return self._cells.get(key, ())

    def candidate_pairs(self) -> np.ndarray:
        """All item pairs sharing at least one cell, as ``(M, 2)`` with i < j.

        Pairs come out in lexicographic order, so downstream results match
        the scalar double loop's enumeration order.
        """
        pairs: set = set()
        for bucket in self._cells.values():
            if len(bucket) < 2:
                continue
            for position, first in enumerate(bucket):
                for second in bucket[position + 1:]:
                    if first < second:
                        pairs.add((first, second))
                    else:
                        pairs.add((second, first))
        if not pairs:
            return np.zeros((0, 2), dtype=int)
        return np.array(sorted(pairs), dtype=int)

    def candidates_for_points(self, points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Point→item candidate assignments for batched point location.

        Returns ``(point_indices, item_indices)`` — parallel int arrays where
        item ``item_indices[k]``'s cells cover point ``point_indices[k]``.
        Grouping by item index then lets the caller run one vectorized
        containment test per polygon over just its nearby points.
        """
        pts = np.asarray(points, dtype=float).reshape(-1, 2)
        if len(pts) == 0 or not self._cells:
            return np.zeros(0, dtype=int), np.zeros(0, dtype=int)
        ox, oy = self.origin
        cell_x = np.floor((pts[:, 0] - ox) / self.cell_size).astype(int)
        cell_y = np.floor((pts[:, 1] - oy) / self.cell_size).astype(int)
        point_indices: List[int] = []
        item_indices: List[int] = []
        # Group points by cell so each bucket is looked up once.
        order = np.lexsort((cell_y, cell_x))
        sorted_x, sorted_y = cell_x[order], cell_y[order]
        boundaries = np.flatnonzero(
            (np.diff(sorted_x) != 0) | (np.diff(sorted_y) != 0)
        )
        starts = np.concatenate([[0], boundaries + 1])
        ends = np.concatenate([boundaries + 1, [len(order)]])
        for start, end in zip(starts, ends):
            bucket = self._cells.get((int(sorted_x[start]), int(sorted_y[start])))
            if not bucket:
                continue
            members = order[start:end]
            for item in bucket:
                point_indices.extend(members)
                item_indices.extend([item] * len(members))
        return np.array(point_indices, dtype=int), np.array(item_indices, dtype=int)

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"SpatialGrid({self.count} items, cell={self.cell_size:g}, "
            f"{len(self._cells)} occupied cells)"
        )


__all__ = ["SpatialGrid"]

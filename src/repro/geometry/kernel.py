"""Vectorized batch-geometry kernel for the sampling hot path.

The scene-improvisation loop (Sec. 5) spends essentially all of its time on
three predicates: is a point inside a region, is an object's bounding box
inside a region, and do two objects' bounding boxes overlap.  The scalar
implementations in :mod:`repro.geometry.polygon` and
:mod:`repro.core.regions` evaluate them one point / one pair at a time in
pure Python; this module evaluates them over whole *batches* with numpy:

* :func:`contains_points` — membership of ``N`` points in a region at once,
  dispatching to the region's ``contains_points_batch`` (every built-in
  region implements a genuinely vectorized one; the :class:`~repro.core.regions.Region`
  base class provides a scalar fallback so third-party regions keep
  working).
* :func:`objects_contained` — containment of ``N`` objects given their
  corner arrays, using the same corners-plus-edge-midpoints test as
  ``Region.contains_object``.
* :func:`pairwise_collisions` — all overlapping pairs among ``N`` convex
  quadrilaterals via a batched separating-axis test, with an AABB prefilter
  and a :class:`~repro.geometry.spatial_index.SpatialGrid` pruning the
  O(n²) pair enumeration for large ``N``.

The predicates agree with the scalar implementations: the separating-axis
test uses closed intervals (touching counts as overlap, exactly like
``polygons_intersect``) and :func:`points_in_polygon` replicates the scalar
ray-casting code operation for operation, so results are bit-identical away
from ~1-ulp boundary coincidences.

Since PR 9 the *compute* lives in pluggable backends
(:mod:`repro.geometry.backends`): this module keeps the coercion helpers and
region dispatch, while :func:`points_in_polygon`, :func:`objects_contained`,
:func:`pairwise_collisions` and :func:`batch_collision_free` forward to the
process-global active backend (numpy by default — same code as before, moved
verbatim, so results are unchanged bit for bit).  Select backends globally
with :func:`repro.geometry.backends.use_backend` or per engine with
``SamplerEngine(..., backend=...)``.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

import numpy as np

#: Object counts below this skip the spatial grid: enumerating all pairs is
#: cheaper than building the index.
GRID_PAIR_THRESHOLD = 16


# ---------------------------------------------------------------------------
# coercion helpers
# ---------------------------------------------------------------------------


def as_points(points: Any) -> np.ndarray:
    """Coerce vectors / pairs / arrays into an ``(N, 2)`` float array."""
    if isinstance(points, np.ndarray):
        if points.size == 0:
            return points.reshape(0, 2).astype(float, copy=False)
        return points.reshape(-1, 2).astype(float, copy=False)
    rows: List = []
    for point in points:
        if hasattr(point, "x"):
            rows.append((point.x, point.y))
        else:
            rows.append((point[0], point[1]))
    if not rows:
        return np.zeros((0, 2), dtype=float)
    return np.asarray(rows, dtype=float)


def corners_array(objects: Sequence[Any]) -> np.ndarray:
    """The bounding-box corners of concrete objects as an ``(N, 4, 2)`` array.

    Corner order matches ``Object.corners``: front-right first, then
    anticlockwise — so midpoint and SAT results line up with the scalar path.
    """
    n = len(objects)
    if n == 0:
        return np.zeros((0, 4, 2), dtype=float)
    positions = np.empty((n, 2), dtype=float)
    headings = np.empty(n, dtype=float)
    half_w = np.empty(n, dtype=float)
    half_h = np.empty(n, dtype=float)
    for index, scenic_object in enumerate(objects):
        position = scenic_object.position
        if hasattr(position, "x"):
            positions[index, 0] = position.x
            positions[index, 1] = position.y
        else:
            positions[index, 0] = position[0]
            positions[index, 1] = position[1]
        headings[index] = float(scenic_object.heading)
        half_w[index] = float(scenic_object.width) / 2.0
        half_h[index] = float(scenic_object.height) / 2.0
    # Local corner offsets (front-right, front-left, back-left, back-right).
    local_x = np.stack([half_w, -half_w, -half_w, half_w], axis=1)
    local_y = np.stack([half_h, half_h, -half_h, -half_h], axis=1)
    cos_h = np.cos(headings)[:, None]
    sin_h = np.sin(headings)[:, None]
    world_x = local_x * cos_h - local_y * sin_h + positions[:, 0:1]
    world_y = local_x * sin_h + local_y * cos_h + positions[:, 1:2]
    return np.stack([world_x, world_y], axis=2)


def object_test_points(corners: np.ndarray) -> np.ndarray:
    """Corners plus edge midpoints: the ``(N, 8, 2)`` containment test points.

    Matches ``Region.contains_object``: four corners and the midpoint of each
    bounding-box edge (the midpoints catch boxes straddling concave notches
    that a corner-only test wrongly accepts).
    """
    corners = np.asarray(corners, dtype=float)
    midpoints = (corners + np.roll(corners, -1, axis=1)) / 2.0
    return np.concatenate([corners, midpoints], axis=1)


# ---------------------------------------------------------------------------
# point containment
# ---------------------------------------------------------------------------


def contains_points(region: Any, points: Any) -> np.ndarray:
    """Membership of each point in *region* as a boolean array.

    Dispatches to ``region.contains_points_batch`` when present (all
    built-in regions), otherwise falls back to looping the region's scalar
    ``contains_point`` — so the kernel accepts any region-like object.
    """
    pts = as_points(points)
    batch = getattr(region, "contains_points_batch", None)
    if batch is not None:
        return np.asarray(batch(pts), dtype=bool)
    return np.fromiter(
        (bool(region.contains_point((x, y))) for x, y in pts), dtype=bool, count=len(pts)
    )


def points_in_polygon(vertices: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Vectorized ray casting; boundary points count as inside.

    Dispatches to the active backend.  The numpy reference implementation
    (:class:`~repro.geometry.backends.numpy_backend.NumpyBackend`) is a
    faithful replication of :func:`repro.geometry.polygon.point_in_polygon`
    — same operations in the same order, evaluated for all points at once
    with one numpy pass per polygon edge.
    """
    from . import backends

    return backends.active_backend().points_in_polygon(vertices, points)


# ---------------------------------------------------------------------------
# object containment
# ---------------------------------------------------------------------------


def region_supports_batch_objects(region: Any) -> bool:
    """True when *region* uses the default corners-plus-midpoints object test.

    Regions overriding ``contains_object`` (e.g. ``EverywhereRegion``) carry
    their own semantics; the kernel defers to the scalar method for those.
    """
    from ..core.regions import Region  # deferred: core imports this module

    contains = getattr(type(region), "contains_object", None)
    return contains is Region.contains_object


def objects_contained(region: Any, corners: np.ndarray) -> np.ndarray:
    """Containment of ``N`` objects (given their ``(N, 4, 2)`` corners).

    Evaluates the default ``Region.contains_object`` semantics — all four
    corners and all four edge midpoints inside — in one batched containment
    query, dispatched to the active backend.  Only valid for regions where
    :func:`region_supports_batch_objects` holds; callers keep the scalar
    path otherwise.
    """
    from . import backends

    return backends.active_backend().objects_contained(region, corners)


# ---------------------------------------------------------------------------
# pairwise collisions
# ---------------------------------------------------------------------------


def quads_overlap(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Batched separating-axis overlap test for convex quadrilateral pairs.

    *first* and *second* are ``(M, 4, 2)`` corner arrays; the result is a
    boolean ``(M,)`` array.  Intervals are closed (projections merely touching
    count as overlap), matching ``polygons_intersect``.  Degenerate
    zero-length edges produce zero axes, which can never separate — safe.
    """
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    if first.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    edges = np.concatenate(
        [np.roll(first, -1, axis=1) - first, np.roll(second, -1, axis=1) - second], axis=1
    )  # (M, 8, 2)
    axes = np.stack([-edges[..., 1], edges[..., 0]], axis=-1)  # outward-ish normals
    projections_first = axes @ first.transpose(0, 2, 1)  # (M, 8, 4)
    projections_second = axes @ second.transpose(0, 2, 1)
    separated = (projections_first.max(axis=2) < projections_second.min(axis=2)) | (
        projections_second.max(axis=2) < projections_first.min(axis=2)
    )
    return ~separated.any(axis=1)


def aabbs_of(corners: np.ndarray) -> np.ndarray:
    """Axis-aligned bounds of each quad: ``(N, 4)`` rows of (minx, miny, maxx, maxy)."""
    corners = np.asarray(corners, dtype=float)
    if corners.shape[0] == 0:
        return np.zeros((0, 4), dtype=float)
    return np.concatenate([corners.min(axis=1), corners.max(axis=1)], axis=1)


def pairwise_collisions(
    corners: np.ndarray,
    collidable: Optional[np.ndarray] = None,
    grid_threshold: int = GRID_PAIR_THRESHOLD,
) -> np.ndarray:
    """All overlapping object pairs as an ``(M, 2)`` array of index pairs.

    *corners* is ``(N, 4, 2)``; *collidable* optionally masks objects out of
    the check (``allowCollisions`` objects).  For ``N >= grid_threshold`` the
    candidate pairs come from a uniform :class:`SpatialGrid` instead of the
    full upper triangle, pruning the O(n²) enumeration.  Pairs are returned
    in lexicographic order with ``i < j``, matching the scalar nested loop.
    Dispatches to the active backend.
    """
    from . import backends

    return backends.active_backend().pairwise_collisions(
        corners, collidable, grid_threshold=grid_threshold
    )


def batch_collision_free(
    corners: np.ndarray, collidable: Optional[np.ndarray] = None
) -> np.ndarray:
    """Collision-freedom of ``K`` candidate scenes at once.

    *corners* is ``(K, N, 4, 2)`` (same object count per candidate, as
    produced by concretizing one scenario ``K`` times); *collidable* is an
    optional ``(K, N)`` mask.  Returns a boolean ``(K,)`` array that is True
    where no collidable pair overlaps — the bulk form of
    ``no_pairwise_collisions`` used by the vectorized sampling strategy.
    Dispatches to the active backend.
    """
    from . import backends

    return backends.active_backend().batch_collision_free(corners, collidable)


__all__ = [
    "GRID_PAIR_THRESHOLD",
    "as_points",
    "corners_array",
    "object_test_points",
    "contains_points",
    "points_in_polygon",
    "region_supports_batch_objects",
    "objects_contained",
    "quads_overlap",
    "aabbs_of",
    "pairwise_collisions",
    "batch_collision_free",
]

"""Ear-clipping triangulation and uniform sampling inside polygons.

Scenic's ``on region`` specifier needs uniformly random points inside
polygonal regions (roads, curbs, workspaces).  We triangulate the polygon
once, then sample a triangle with probability proportional to its area and a
uniform point inside that triangle.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..core.vectors import Vector, VectorLike
from .polygon import Polygon, point_in_polygon

Triangle = Tuple[Vector, Vector, Vector]


def _triangle_area(a: Vector, b: Vector, c: Vector) -> float:
    return abs((b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)) / 2.0


def _is_ear(vertices: Sequence[Vector], indices: List[int], position: int) -> bool:
    count = len(indices)
    prev_vertex = vertices[indices[(position - 1) % count]]
    ear_vertex = vertices[indices[position]]
    next_vertex = vertices[indices[(position + 1) % count]]
    # The candidate ear must be a convex corner (polygon stored anticlockwise).
    cross = (ear_vertex.x - prev_vertex.x) * (next_vertex.y - prev_vertex.y) - (
        ear_vertex.y - prev_vertex.y
    ) * (next_vertex.x - prev_vertex.x)
    if cross <= 0:
        return False
    # No other vertex may lie inside the candidate ear triangle.
    for other_position in range(count):
        if other_position in (
            (position - 1) % count,
            position,
            (position + 1) % count,
        ):
            continue
        other = vertices[indices[other_position]]
        if _point_in_triangle(other, prev_vertex, ear_vertex, next_vertex):
            return False
    return True


def _point_in_triangle(point: Vector, a: Vector, b: Vector, c: Vector) -> bool:
    d1 = (point.x - b.x) * (a.y - b.y) - (a.x - b.x) * (point.y - b.y)
    d2 = (point.x - c.x) * (b.y - c.y) - (b.x - c.x) * (point.y - c.y)
    d3 = (point.x - a.x) * (c.y - a.y) - (c.x - a.x) * (point.y - a.y)
    has_negative = (d1 < 0) or (d2 < 0) or (d3 < 0)
    has_positive = (d1 > 0) or (d2 > 0) or (d3 > 0)
    return not (has_negative and has_positive)


def triangulate(polygon: Polygon) -> List[Triangle]:
    """Split a simple polygon into triangles by ear clipping.

    The polygon's vertices are assumed to be in anticlockwise order (the
    :class:`Polygon` constructor guarantees this).  Runs in O(n^2), which is
    ample for the map polygons used in the reproduction.
    """
    vertices = list(polygon.vertices)
    if len(vertices) == 3:
        return [tuple(vertices)]  # type: ignore[return-value]
    indices = list(range(len(vertices)))
    triangles: List[Triangle] = []
    guard = 0
    max_iterations = len(vertices) ** 2 + 10
    while len(indices) > 3 and guard < max_iterations:
        guard += 1
        ear_found = False
        for position in range(len(indices)):
            if _is_ear(vertices, indices, position):
                count = len(indices)
                prev_vertex = vertices[indices[(position - 1) % count]]
                ear_vertex = vertices[indices[position]]
                next_vertex = vertices[indices[(position + 1) % count]]
                if _triangle_area(prev_vertex, ear_vertex, next_vertex) > 1e-15:
                    triangles.append((prev_vertex, ear_vertex, next_vertex))
                del indices[position]
                ear_found = True
                break
        if not ear_found:
            # Degenerate input (e.g. collinear runs).  Fall back to a fan from
            # the centroid, which still covers the polygon for convex-ish
            # inputs and keeps sampling well-defined.
            break
    if len(indices) == 3:
        a, b, c = (vertices[i] for i in indices)
        if _triangle_area(a, b, c) > 1e-15:
            triangles.append((a, b, c))
    if not triangles:
        centroid = polygon.centroid
        verts = polygon.vertices
        for i in range(len(verts)):
            a, b = verts[i], verts[(i + 1) % len(verts)]
            if _triangle_area(centroid, a, b) > 1e-15:
                triangles.append((centroid, a, b))
    return triangles


def sample_point_in_triangle(triangle: Triangle, random_source) -> Vector:
    """Uniformly random point inside a triangle via the square-root trick."""
    a, b, c = triangle
    r1 = math.sqrt(random_source.random())
    r2 = random_source.random()
    return a * (1 - r1) + b * (r1 * (1 - r2)) + c * (r1 * r2)


class TriangulatedSampler:
    """Caches a polygon's triangulation to draw many uniform samples cheaply."""

    def __init__(self, polygon: Polygon):
        self.polygon = polygon
        self.triangles = triangulate(polygon)
        self._areas = [_triangle_area(*t) for t in self.triangles]
        total = sum(self._areas)
        if total <= 0:
            raise ValueError("cannot sample from a polygon with zero area")
        self._cumulative = []
        running = 0.0
        for area in self._areas:
            running += area / total
            self._cumulative.append(running)

    def sample(self, random_source) -> Vector:
        u = random_source.random()
        for triangle, threshold in zip(self.triangles, self._cumulative):
            if u <= threshold:
                return sample_point_in_triangle(triangle, random_source)
        return sample_point_in_triangle(self.triangles[-1], random_source)


def sample_point_in_polygon(polygon: Polygon, random_source) -> Vector:
    """Uniformly random point inside *polygon* (one-shot convenience wrapper)."""
    return TriangulatedSampler(polygon).sample(random_source)


def sample_point_on_boundary(polygon: Polygon, random_source) -> Tuple[Vector, float]:
    """Random point on the polygon boundary, uniform by arc length.

    Returns the point together with the heading of the edge it lies on
    (useful for curb-like regions whose preferred orientation follows the
    boundary).
    """
    edges = polygon.edges()
    lengths = [a.distance_to(b) for a, b in edges]
    total = sum(lengths)
    if total <= 0:
        raise ValueError("cannot sample on a degenerate boundary")
    target = random_source.random() * total
    running = 0.0
    for (a, b), length in zip(edges, lengths):
        if running + length >= target:
            t = (target - running) / length if length > 0 else 0.0
            point = a + (b - a) * t
            heading = (b - a).angle()
            return point, heading
        running += length
    a, b = edges[-1]
    return b, (b - a).angle()

"""Ear-clipping triangulation and uniform sampling inside polygons.

Scenic's ``on region`` specifier needs uniformly random points inside
polygonal regions (roads, curbs, workspaces).  We triangulate the polygon
once, then sample a triangle with probability proportional to its area and a
uniform point inside that triangle.

Beyond the original simple-polygon path this module supports:

* **robust ear clipping** — polygons with duplicate or collinear vertices
  (the normal output of region clipping during pruning) are rescued by a
  cleanup-and-retry pass instead of silently falling back to a centroid fan
  that under- or over-covers non-convex inputs;
* **polygons with holes** — :func:`triangulate_with_holes` splices each hole
  into the outer ring with a bridge edge and ear-clips the result;
* **multi-polygon unions** — :func:`triangulate_union` concatenates the
  fans of a region's (disjoint) pieces;
* **O(1) area-weighted sampling** — :class:`TriangleFan` builds a Vose
  alias table over the triangle areas, so drawing a uniform point costs a
  constant three RNG calls regardless of triangle count.  This is the
  constructive-sampling primitive of :mod:`repro.synthesis`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..core.vectors import Vector, VectorLike
from .polygon import Polygon, point_in_polygon

Triangle = Tuple[Vector, Vector, Vector]

#: Cross products (twice the corner area) below this count as collinear in
#: the robust cleanup pass.
_COLLINEAR_EPS = 1e-12


def _triangle_area(a: Vector, b: Vector, c: Vector) -> float:
    return abs((b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)) / 2.0


def _is_ear(vertices: Sequence[Vector], indices: List[int], position: int) -> bool:
    count = len(indices)
    prev_vertex = vertices[indices[(position - 1) % count]]
    ear_vertex = vertices[indices[position]]
    next_vertex = vertices[indices[(position + 1) % count]]
    # The candidate ear must be a convex corner (polygon stored anticlockwise).
    cross = (ear_vertex.x - prev_vertex.x) * (next_vertex.y - prev_vertex.y) - (
        ear_vertex.y - prev_vertex.y
    ) * (next_vertex.x - prev_vertex.x)
    if cross <= 0:
        return False
    # No other vertex may lie inside the candidate ear triangle.
    for other_position in range(count):
        if other_position in (
            (position - 1) % count,
            position,
            (position + 1) % count,
        ):
            continue
        other = vertices[indices[other_position]]
        if _point_in_triangle(other, prev_vertex, ear_vertex, next_vertex):
            return False
    return True


def _point_in_triangle(point: Vector, a: Vector, b: Vector, c: Vector) -> bool:
    d1 = (point.x - b.x) * (a.y - b.y) - (a.x - b.x) * (point.y - b.y)
    d2 = (point.x - c.x) * (b.y - c.y) - (b.x - c.x) * (point.y - c.y)
    d3 = (point.x - a.x) * (c.y - a.y) - (c.x - a.x) * (point.y - a.y)
    has_negative = (d1 < 0) or (d2 < 0) or (d3 < 0)
    has_positive = (d1 > 0) or (d2 > 0) or (d3 > 0)
    return not (has_negative and has_positive)


def _ear_clip(vertices: Sequence[Vector], robust: bool = False) -> Optional[List[Triangle]]:
    """Ear-clip a vertex ring; ``None`` when the loop stalls before finishing.

    With ``robust=True`` the ear test skips coincident vertices and only
    counts strictly interior points as blockers (needed for the zero-width
    bridge edges of :func:`triangulate_with_holes`); the default test is the
    original, stricter one, kept bit-for-bit so previously-triangulable
    polygons produce the identical fan (the golden corpus pins the sampling
    streams built on it).
    """
    if len(vertices) < 3:
        return []
    if len(vertices) == 3:
        if _triangle_area(*vertices) > 1e-15:
            return [tuple(vertices)]  # type: ignore[return-value]
        return []
    ear_test = _is_ear_robust if robust else _is_ear
    indices = list(range(len(vertices)))
    triangles: List[Triangle] = []
    guard = 0
    max_iterations = len(vertices) ** 2 + 10
    while len(indices) > 3 and guard < max_iterations:
        guard += 1
        ear_found = False
        for position in range(len(indices)):
            if ear_test(vertices, indices, position):
                count = len(indices)
                prev_vertex = vertices[indices[(position - 1) % count]]
                ear_vertex = vertices[indices[position]]
                next_vertex = vertices[indices[(position + 1) % count]]
                if _triangle_area(prev_vertex, ear_vertex, next_vertex) > 1e-15:
                    triangles.append((prev_vertex, ear_vertex, next_vertex))
                del indices[position]
                ear_found = True
                break
        if not ear_found:
            return None
    if len(indices) == 3:
        a, b, c = (vertices[i] for i in indices)
        if _triangle_area(a, b, c) > 1e-15:
            triangles.append((a, b, c))
    return triangles


def _is_ear_robust(vertices: Sequence[Vector], indices: List[int], position: int) -> bool:
    """Ear test tolerant of duplicate vertices and bridge edges."""
    count = len(indices)
    prev_vertex = vertices[indices[(position - 1) % count]]
    ear_vertex = vertices[indices[position]]
    next_vertex = vertices[indices[(position + 1) % count]]
    cross = (ear_vertex.x - prev_vertex.x) * (next_vertex.y - prev_vertex.y) - (
        ear_vertex.y - prev_vertex.y
    ) * (next_vertex.x - prev_vertex.x)
    if cross <= _COLLINEAR_EPS:
        return False
    corners = (prev_vertex, ear_vertex, next_vertex)
    for other_position in range(count):
        if other_position in (
            (position - 1) % count,
            position,
            (position + 1) % count,
        ):
            continue
        other = vertices[indices[other_position]]
        if any(_coincident(other, corner) for corner in corners):
            continue
        if _point_strictly_in_triangle(other, prev_vertex, ear_vertex, next_vertex):
            return False
        # A vertex exactly on the ear's *diagonal* (prev -> next) also
        # blocks: the boundary chain touches the cut there, and clipping
        # would pinch the ring into a weakly self-overlapping remainder
        # that double-covers area.  Points on the two existing polygon
        # edges are fine — the boundary genuinely runs along them.
        if _point_on_open_segment(other, prev_vertex, next_vertex):
            return False
    return True


def _point_on_open_segment(
    point: Vector, a: Vector, b: Vector, tolerance: float = 1e-9
) -> bool:
    """Whether *point* lies on segment ``a-b``, excluding the endpoints."""
    ab_x, ab_y = b.x - a.x, b.y - a.y
    length_sq = ab_x * ab_x + ab_y * ab_y
    if length_sq <= tolerance * tolerance:
        return False
    ap_x, ap_y = point.x - a.x, point.y - a.y
    t = (ap_x * ab_x + ap_y * ab_y) / length_sq
    if t <= 0.0 or t >= 1.0:
        return False
    cross = ap_x * ab_y - ap_y * ab_x
    return cross * cross <= (tolerance * tolerance) * length_sq


def _coincident(a: Vector, b: Vector, tolerance: float = 1e-12) -> bool:
    return abs(a.x - b.x) <= tolerance and abs(a.y - b.y) <= tolerance


def _point_strictly_in_triangle(point: Vector, a: Vector, b: Vector, c: Vector) -> bool:
    d1 = (point.x - b.x) * (a.y - b.y) - (a.x - b.x) * (point.y - b.y)
    d2 = (point.x - c.x) * (b.y - c.y) - (b.x - c.x) * (point.y - c.y)
    d3 = (point.x - a.x) * (c.y - a.y) - (c.x - a.x) * (point.y - a.y)
    return (d1 > _COLLINEAR_EPS and d2 > _COLLINEAR_EPS and d3 > _COLLINEAR_EPS) or (
        d1 < -_COLLINEAR_EPS and d2 < -_COLLINEAR_EPS and d3 < -_COLLINEAR_EPS
    )


def _drop_degenerate_vertices(vertices: Sequence[Vector]) -> List[Vector]:
    """Remove consecutive duplicates and exactly-collinear middle vertices.

    Region clipping routinely emits both (a clip edge grazing a vertex
    duplicates it; a cut through a straight edge leaves a collinear middle
    point); either can stall the strict ear test, so the rescue pass clips
    the cleaned ring instead.  The polygon's shape — and therefore its area
    — is unchanged.
    """
    cleaned: List[Vector] = []
    for vertex in vertices:
        if cleaned and _coincident(vertex, cleaned[-1]):
            continue
        cleaned.append(vertex)
    while len(cleaned) > 1 and _coincident(cleaned[0], cleaned[-1]):
        cleaned.pop()
    changed = True
    while changed and len(cleaned) > 3:
        changed = False
        for index in range(len(cleaned)):
            prev_vertex = cleaned[index - 1]
            mid_vertex = cleaned[index]
            next_vertex = cleaned[(index + 1) % len(cleaned)]
            cross = (mid_vertex.x - prev_vertex.x) * (next_vertex.y - prev_vertex.y) - (
                mid_vertex.y - prev_vertex.y
            ) * (next_vertex.x - prev_vertex.x)
            scale = 1.0 + prev_vertex.distance_to(mid_vertex) * mid_vertex.distance_to(next_vertex)
            if abs(cross) <= _COLLINEAR_EPS * scale:
                del cleaned[index]
                changed = True
                break
    return cleaned


def triangulate(polygon: Polygon) -> List[Triangle]:
    """Split a simple polygon into triangles by ear clipping.

    The polygon's vertices are assumed to be in anticlockwise order (the
    :class:`Polygon` constructor guarantees this).  Runs in O(n^2), which is
    ample for the map polygons used in the reproduction.

    Polygons the strict ear test stalls on — duplicate vertices, collinear
    runs, both common in clipped pruned regions — are retried on a cleaned
    vertex ring with the tolerant ear test; only if that also fails does the
    legacy centroid-fan fallback apply (exact for convex input, best-effort
    otherwise).
    """
    vertices = list(polygon.vertices)
    triangles = _ear_clip(vertices)
    if triangles is None:
        cleaned = _drop_degenerate_vertices(vertices)
        if len(cleaned) >= 3:
            triangles = _ear_clip(cleaned, robust=True)
    if not triangles:
        triangles = []
        centroid = polygon.centroid
        verts = polygon.vertices
        for i in range(len(verts)):
            a, b = verts[i], verts[(i + 1) % len(verts)]
            if _triangle_area(centroid, a, b) > 1e-15:
                triangles.append((centroid, a, b))
    return triangles


def triangulate_with_holes(outer: Polygon, holes: Sequence[Polygon]) -> List[Triangle]:
    """Triangulate a polygon with holes by bridge-splicing each hole.

    Each hole is connected to the enclosing ring through a zero-width bridge
    edge at its rightmost vertex (the classic Eberly construction), turning
    the region into one simple (weakly self-touching) ring that the tolerant
    ear test can clip.  Holes are assumed to be pairwise disjoint and
    strictly inside *outer*; the triangle areas sum to
    ``outer.area - sum(hole.area)``.
    """
    ring = [Vector.from_any(vertex) for vertex in outer.vertices]
    # Rightmost holes first: once a hole is spliced its bridge is part of
    # the ring, so later (more leftward) bridges can cross it safely.
    ordered = sorted(holes, key=lambda hole: -max(v.x for v in hole.vertices))
    for hole in ordered:
        if hole.area <= 1e-15:
            continue
        # Hole rings must wind opposite to the outer ring for ear clipping;
        # Polygon normalizes to anticlockwise, so traverse it backwards.
        hole_ring = [Vector.from_any(vertex) for vertex in reversed(hole.vertices)]
        anchor_position = max(range(len(hole_ring)), key=lambda i: hole_ring[i].x)
        anchor = hole_ring[anchor_position]
        bridge_position = _visible_ring_vertex(ring, anchor)
        spliced = ring[: bridge_position + 1]
        spliced.extend(hole_ring[anchor_position:])
        spliced.extend(hole_ring[: anchor_position + 1])
        spliced.extend(ring[bridge_position:])
        ring = spliced
    triangles = _ear_clip(ring, robust=True)
    if triangles is None:
        cleaned = _drop_degenerate_vertices(ring)
        triangles = _ear_clip(cleaned, robust=True) if len(cleaned) >= 3 else None
    if triangles is None:
        raise ValueError("failed to triangulate polygon with holes")
    return triangles


def _visible_ring_vertex(ring: Sequence[Vector], anchor: Vector) -> int:
    """Index of a ring vertex the bridge segment from *anchor* can reach.

    Prefers the nearest vertex to *anchor*'s right whose connecting segment
    crosses no ring edge; falls back to the nearest vertex outright (the
    tolerant ear test copes with mildly crossing bridges on the degenerate
    inputs where perfect visibility is unattainable).
    """
    from .polygon import segments_intersect

    candidates = sorted(range(len(ring)), key=lambda i: anchor.distance_to(ring[i]))
    for index in candidates:
        vertex = ring[index]
        if vertex.x < anchor.x - 1e-12:
            continue
        visible = True
        for j in range(len(ring)):
            a, b = ring[j], ring[(j + 1) % len(ring)]
            if _coincident(a, vertex) or _coincident(b, vertex):
                continue
            if _coincident(a, anchor) or _coincident(b, anchor):
                continue
            if segments_intersect(anchor, vertex, a, b):
                visible = False
                break
        if visible:
            return index
    return candidates[0]


def triangulate_union(polygons: Sequence[Polygon]) -> List[Triangle]:
    """Triangulate a union of disjoint polygon pieces into one fan.

    Pieces are assumed pairwise disjoint — the invariant
    :class:`~repro.core.regions.PolygonalRegion` maintains (its ``area``
    sums piece areas and ``uniform_point`` picks pieces by area weight);
    overlapping input would double-weight the overlap.
    """
    triangles: List[Triangle] = []
    for polygon in polygons:
        triangles.extend(triangulate(polygon))
    return triangles


def sample_point_in_triangle(triangle: Triangle, random_source) -> Vector:
    """Uniformly random point inside a triangle via the square-root trick."""
    a, b, c = triangle
    r1 = math.sqrt(random_source.random())
    r2 = random_source.random()
    return a * (1 - r1) + b * (r1 * (1 - r2)) + c * (r1 * r2)


class TriangleFan:
    """An area-weighted triangle fan with O(1) uniform point sampling.

    Selection uses a Vose alias table over the triangle areas, so each draw
    costs one RNG call for the (column, coin) pair plus the two in-triangle
    calls — constant regardless of triangle count, unlike the linear
    cumulative scan of :class:`TriangulatedSampler` (kept unchanged because
    the golden corpus pins its RNG stream).
    """

    def __init__(self, triangles: Sequence[Triangle]):
        kept = [(t, _triangle_area(*t)) for t in triangles]
        kept = [(t, area) for t, area in kept if area > 1e-15]
        self.triangles: Tuple[Triangle, ...] = tuple(t for t, _ in kept)
        self._areas = [area for _, area in kept]
        self.total_area = float(sum(self._areas))
        if not kept or self.total_area <= 0.0:
            raise ValueError("cannot build a triangle fan with zero total area")
        self._prob, self._alias = _vose_alias_table(
            [area / self.total_area for area in self._areas]
        )

    @classmethod
    def of_polygons(cls, polygons: Sequence[Polygon]) -> "TriangleFan":
        return cls(triangulate_union(polygons))

    @classmethod
    def of_polygon_with_holes(cls, outer: Polygon, holes: Sequence[Polygon]) -> "TriangleFan":
        return cls(triangulate_with_holes(outer, holes))

    def __len__(self) -> int:
        return len(self.triangles)

    def sample(self, random_source) -> Vector:
        count = len(self.triangles)
        scaled = random_source.random() * count
        column = int(scaled)
        # Reuse the fractional part as the alias coin: both are uniform and
        # independent, so the draw stays a single RNG call.
        index = column if (scaled - column) <= self._prob[column] else self._alias[column]
        return sample_point_in_triangle(self.triangles[index], random_source)


def _vose_alias_table(probabilities: Sequence[float]) -> Tuple[List[float], List[int]]:
    """Vose's alias method: O(n) setup for O(1) categorical sampling."""
    count = len(probabilities)
    prob = [0.0] * count
    alias = list(range(count))
    scaled = [p * count for p in probabilities]
    small = [i for i, p in enumerate(scaled) if p < 1.0]
    large = [i for i, p in enumerate(scaled) if p >= 1.0]
    while small and large:
        lo = small.pop()
        hi = large.pop()
        prob[lo] = scaled[lo]
        alias[lo] = hi
        scaled[hi] = (scaled[hi] + scaled[lo]) - 1.0
        (small if scaled[hi] < 1.0 else large).append(hi)
    for remaining in large + small:
        prob[remaining] = 1.0
    return prob, alias


class TriangulatedSampler:
    """Caches a polygon's triangulation to draw many uniform samples cheaply."""

    def __init__(self, polygon: Polygon):
        self.polygon = polygon
        self.triangles = triangulate(polygon)
        self._areas = [_triangle_area(*t) for t in self.triangles]
        total = sum(self._areas)
        if total <= 0:
            raise ValueError("cannot sample from a polygon with zero area")
        self._cumulative = []
        running = 0.0
        for area in self._areas:
            running += area / total
            self._cumulative.append(running)

    def sample(self, random_source) -> Vector:
        u = random_source.random()
        for triangle, threshold in zip(self.triangles, self._cumulative):
            if u <= threshold:
                return sample_point_in_triangle(triangle, random_source)
        return sample_point_in_triangle(self.triangles[-1], random_source)


def sample_point_in_polygon(polygon: Polygon, random_source) -> Vector:
    """Uniformly random point inside *polygon* (one-shot convenience wrapper)."""
    return TriangulatedSampler(polygon).sample(random_source)


def sample_point_on_boundary(polygon: Polygon, random_source) -> Tuple[Vector, float]:
    """Random point on the polygon boundary, uniform by arc length.

    Returns the point together with the heading of the edge it lies on
    (useful for curb-like regions whose preferred orientation follows the
    boundary).
    """
    edges = polygon.edges()
    lengths = [a.distance_to(b) for a, b in edges]
    total = sum(lengths)
    if total <= 0:
        raise ValueError("cannot sample on a degenerate boundary")
    target = random_source.random() * total
    running = 0.0
    for (a, b), length in zip(edges, lengths):
        if running + length >= target:
            t = (target - running) / length if length > 0 else 0.0
            point = a + (b - a) * t
            heading = (b - a).angle()
            return point, heading
        running += length
    a, b = edges[-1]
    return b, (b - a).angle()

"""Conservative polygon erosion and dilation for the pruning algorithms.

Section 5.2 of the paper prunes the sample space using ``erode(C, r)`` and
``dilate(Q, M)``.  Soundness of pruning only requires that

* the computed erosion is a *superset* of the true erosion (we may fail to
  prune some invalid centre positions, but never discard a valid one), and
* the computed dilation is a *superset* of the true dilation (ditto).

We therefore implement exact operations for convex polygons (the synthetic
road map is built from convex pieces) and fall back to sound conservative
approximations for non-convex inputs.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..core.vectors import Vector
from .polygon import Polygon, convex_hull


def erode_polygon(polygon: Polygon, radius: float) -> Optional[Polygon]:
    """Shrink *polygon* inward by *radius*.

    For convex polygons the result is the exact erosion (intersection of the
    half-planes bounded by each edge moved inward by *radius*); if the
    erosion is empty, returns ``None``.  For non-convex polygons we return
    the polygon unchanged, which is a sound (if useless) over-approximation.
    """
    if radius <= 0:
        return polygon
    if not polygon.is_convex():
        return polygon
    vertices = polygon.vertices
    count = len(vertices)
    # Move each edge inward along its inward normal, then intersect
    # consecutive edge lines to recover the eroded vertices.
    lines = []  # (point_on_line, direction)
    for i in range(count):
        a, b = vertices[i], vertices[(i + 1) % count]
        direction = b - a
        length = direction.norm()
        if length == 0:
            continue
        direction = direction / length
        # Vertices are anticlockwise, so the inward normal is the left normal.
        inward = Vector(-direction.y, direction.x)
        lines.append((a + inward * radius, direction))
    if len(lines) < 3:
        return None
    new_vertices: List[Vector] = []
    for i in range(len(lines)):
        p1, d1 = lines[i]
        p2, d2 = lines[(i + 1) % len(lines)]
        intersection = _line_intersection(p1, d1, p2, d2)
        if intersection is None:
            continue
        new_vertices.append(intersection)
    if len(new_vertices) < 3:
        return None
    # When the radius exceeds the inradius the offset edge lines cross over
    # and the vertex loop inverts; detect this via the raw signed area.
    signed_area = 0.0
    for i in range(len(new_vertices)):
        a, b = new_vertices[i], new_vertices[(i + 1) % len(new_vertices)]
        signed_area += a.x * b.y - b.x * a.y
    if signed_area <= 1e-12:
        return None
    try:
        eroded = Polygon(new_vertices)
    except ValueError:
        return None
    if eroded.area < 1e-12:
        return None
    # Every eroded vertex must really be at least ``radius`` from the boundary
    # (up to numerical tolerance); otherwise the erosion is degenerate.
    tolerance = 1e-6 * max(1.0, radius)
    for vertex in eroded.vertices:
        if not polygon.contains_point(vertex):
            return None
        boundary_distance = min(
            _point_segment_distance(vertex, a, b) for a, b in polygon.edges()
        )
        if boundary_distance + tolerance < radius:
            return None
    return eroded


def dilate_polygon(polygon: Polygon, radius: float) -> Polygon:
    """Grow *polygon* outward by *radius* (sound superset of the true dilation).

    Implemented as the Minkowski sum of the polygon's convex hull with the
    square ``[-radius, radius]^2``, which contains the disc of radius
    *radius* and therefore contains the true (disc) dilation.
    """
    if radius <= 0:
        return polygon
    hull_source = polygon if polygon.is_convex() else convex_hull(polygon.vertices)
    offsets = [
        Vector(-radius, -radius),
        Vector(radius, -radius),
        Vector(radius, radius),
        Vector(-radius, radius),
    ]
    points = [v + offset for v in hull_source.vertices for offset in offsets]
    return convex_hull(points)


def inradius_lower_bound(polygon: Polygon) -> float:
    """A cheap lower bound on how far the centroid is from the boundary."""
    centroid = polygon.centroid
    return min(
        _point_segment_distance(centroid, a, b) for a, b in polygon.edges()
    )


def minimum_width(polygon: Polygon) -> float:
    """Smallest distance between two parallel supporting lines (rotating calipers).

    Used by size-based pruning (Alg. 3) to decide whether a map polygon is
    "narrow".  Exact for convex polygons; for non-convex polygons we compute
    the width of the convex hull, which is an upper bound on the true width
    and therefore conservative (we only mark a polygon as narrow when even
    its hull is narrow).
    """
    hull = polygon if polygon.is_convex() else convex_hull(polygon.vertices)
    vertices = hull.vertices
    count = len(vertices)
    best = math.inf
    for i in range(count):
        a, b = vertices[i], vertices[(i + 1) % count]
        edge = b - a
        length = edge.norm()
        if length == 0:
            continue
        direction = edge / length
        normal = Vector(-direction.y, direction.x)
        distances = [(v - a).dot(normal) for v in vertices]
        width = max(distances) - min(distances)
        best = min(best, width)
    return best if best is not math.inf else 0.0


def _line_intersection(p1: Vector, d1: Vector, p2: Vector, d2: Vector) -> Optional[Vector]:
    denominator = d1.cross(d2)
    if abs(denominator) < 1e-12:
        return None
    t = (p2 - p1).cross(d2) / denominator
    return p1 + d1 * t


def _point_segment_distance(point: Vector, a: Vector, b: Vector) -> float:
    segment = b - a
    length_sq = segment.dot(segment)
    if length_sq == 0:
        return point.distance_to(a)
    t = max(0.0, min(1.0, (point - a).dot(segment) / length_sq))
    return point.distance_to(a + segment * t)

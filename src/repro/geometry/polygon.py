"""Simple polygons and the predicates the Scenic runtime needs.

A :class:`Polygon` is a simple (non-self-intersecting) polygon given by its
vertices in order (either orientation).  The runtime uses polygons for

* object bounding boxes (always convex quadrilaterals),
* road / curb / workspace regions (unions of convex pieces in the synthetic
  GTA-like map, arbitrary simple polygons elsewhere), and
* the pruning algorithms of Sec. 5.2, which intersect, dilate, and erode
  polygonal pieces of the map.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.vectors import Vector, VectorLike


class BoundingBox:
    """An axis-aligned rectangle given by its min/max corners."""

    __slots__ = ("min_x", "min_y", "max_x", "max_y")

    def __init__(self, min_x: float, min_y: float, max_x: float, max_y: float):
        if min_x > max_x or min_y > max_y:
            raise ValueError("bounding box corners are inverted")
        self.min_x = float(min_x)
        self.min_y = float(min_y)
        self.max_x = float(max_x)
        self.max_y = float(max_y)

    @staticmethod
    def of_points(points: Iterable[VectorLike]) -> "BoundingBox":
        xs, ys = [], []
        for point in points:
            vec = Vector.from_any(point)
            xs.append(vec.x)
            ys.append(vec.y)
        if not xs:
            raise ValueError("bounding box of empty point set")
        return BoundingBox(min(xs), min(ys), max(xs), max(ys))

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def center(self) -> Vector:
        return Vector((self.min_x + self.max_x) / 2, (self.min_y + self.max_y) / 2)

    def contains_point(self, point: VectorLike) -> bool:
        vec = Vector.from_any(point)
        return self.min_x <= vec.x <= self.max_x and self.min_y <= vec.y <= self.max_y

    def intersects(self, other: "BoundingBox") -> bool:
        return not (
            self.max_x < other.min_x
            or other.max_x < self.min_x
            or self.max_y < other.min_y
            or other.max_y < self.min_y
        )

    def expanded(self, margin: float) -> "BoundingBox":
        return BoundingBox(
            self.min_x - margin, self.min_y - margin, self.max_x + margin, self.max_y + margin
        )

    def to_polygon(self) -> "Polygon":
        return Polygon(
            [
                (self.min_x, self.min_y),
                (self.max_x, self.min_y),
                (self.max_x, self.max_y),
                (self.min_x, self.max_y),
            ]
        )

    def sample_point(self, random_source) -> Vector:
        """Uniformly random point inside the box, using ``random_source.uniform``."""
        return Vector(
            random_source.uniform(self.min_x, self.max_x),
            random_source.uniform(self.min_y, self.max_y),
        )

    def __repr__(self) -> str:
        return (
            f"BoundingBox({self.min_x:g}, {self.min_y:g}, {self.max_x:g}, {self.max_y:g})"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, BoundingBox):
            return NotImplemented
        return (self.min_x, self.min_y, self.max_x, self.max_y) == (
            other.min_x,
            other.min_y,
            other.max_x,
            other.max_y,
        )


def _orientation(a: Vector, b: Vector, c: Vector) -> float:
    """Twice the signed area of triangle abc (positive = anticlockwise)."""
    return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)


def segments_intersect(
    p1: VectorLike, p2: VectorLike, q1: VectorLike, q2: VectorLike
) -> bool:
    """True iff the closed segments ``p1p2`` and ``q1q2`` intersect."""
    p1, p2 = Vector.from_any(p1), Vector.from_any(p2)
    q1, q2 = Vector.from_any(q1), Vector.from_any(q2)
    d1 = _orientation(q1, q2, p1)
    d2 = _orientation(q1, q2, p2)
    d3 = _orientation(p1, p2, q1)
    d4 = _orientation(p1, p2, q2)
    if ((d1 > 0 and d2 < 0) or (d1 < 0 and d2 > 0)) and (
        (d3 > 0 and d4 < 0) or (d3 < 0 and d4 > 0)
    ):
        return True

    def on_segment(a: Vector, b: Vector, c: Vector) -> bool:
        return (
            min(a.x, b.x) <= c.x <= max(a.x, b.x)
            and min(a.y, b.y) <= c.y <= max(a.y, b.y)
        )

    if d1 == 0 and on_segment(q1, q2, p1):
        return True
    if d2 == 0 and on_segment(q1, q2, p2):
        return True
    if d3 == 0 and on_segment(p1, p2, q1):
        return True
    if d4 == 0 and on_segment(p1, p2, q2):
        return True
    return False


def point_in_polygon(point: VectorLike, vertices: Sequence[Vector]) -> bool:
    """Ray-casting containment test; boundary points count as inside."""
    point = Vector.from_any(point)
    count = len(vertices)
    inside = False
    j = count - 1
    for i in range(count):
        vi, vj = vertices[i], vertices[j]
        # Boundary check: point exactly on edge vi-vj.
        if _point_on_segment(point, vi, vj):
            return True
        if (vi.y > point.y) != (vj.y > point.y):
            slope_x = vj.x + (point.y - vj.y) * (vi.x - vj.x) / (vi.y - vj.y)
            if point.x < slope_x:
                inside = not inside
        j = i
    return inside


def _point_on_segment(point: Vector, a: Vector, b: Vector, tolerance: float = 1e-9) -> bool:
    cross = (b.x - a.x) * (point.y - a.y) - (b.y - a.y) * (point.x - a.x)
    if abs(cross) > tolerance * max(1.0, a.distance_to(b)):
        return False
    dot = (point.x - a.x) * (b.x - a.x) + (point.y - a.y) * (b.y - a.y)
    return -tolerance <= dot <= (b.x - a.x) ** 2 + (b.y - a.y) ** 2 + tolerance


class Polygon:
    """A simple polygon, stored with anticlockwise vertex order."""

    __slots__ = ("vertices",)

    def __init__(self, vertices: Sequence[VectorLike]):
        points = [Vector.from_any(v) for v in vertices]
        if len(points) < 3:
            raise ValueError("a polygon needs at least 3 vertices")
        if _signed_area(points) < 0:
            points = list(reversed(points))
        self.vertices: Tuple[Vector, ...] = tuple(points)

    # -- basic measures --------------------------------------------------------

    @property
    def area(self) -> float:
        return abs(_signed_area(self.vertices))

    @property
    def centroid(self) -> Vector:
        signed = _signed_area(self.vertices)
        if signed == 0:
            xs = [v.x for v in self.vertices]
            ys = [v.y for v in self.vertices]
            return Vector(sum(xs) / len(xs), sum(ys) / len(ys))
        cx = cy = 0.0
        verts = self.vertices
        for i in range(len(verts)):
            a, b = verts[i], verts[(i + 1) % len(verts)]
            cross = a.x * b.y - b.x * a.y
            cx += (a.x + b.x) * cross
            cy += (a.y + b.y) * cross
        factor = 1.0 / (6.0 * signed)
        return Vector(cx * factor, cy * factor)

    def bounding_box(self) -> BoundingBox:
        return BoundingBox.of_points(self.vertices)

    def edges(self) -> List[Tuple[Vector, Vector]]:
        verts = self.vertices
        return [(verts[i], verts[(i + 1) % len(verts)]) for i in range(len(verts))]

    def is_convex(self, tolerance: float = 1e-9) -> bool:
        verts = self.vertices
        count = len(verts)
        for i in range(count):
            a, b, c = verts[i], verts[(i + 1) % count], verts[(i + 2) % count]
            if _orientation(a, b, c) < -tolerance:
                return False
        return True

    # -- predicates ------------------------------------------------------------

    def contains_point(self, point: VectorLike) -> bool:
        return point_in_polygon(point, self.vertices)

    def contains_polygon(self, other: "Polygon") -> bool:
        """Conservative containment: all of *other*'s vertices inside and no edge crossings."""
        if not all(self.contains_point(v) for v in other.vertices):
            return False
        for a1, a2 in self.edges():
            for b1, b2 in other.edges():
                if segments_intersect(a1, a2, b1, b2):
                    # Edges may touch at shared boundary points; treat proper
                    # crossings only as violations by checking midpoints.
                    mid = (b1 + b2) / 2
                    if not self.contains_point(mid):
                        return False
        return True

    def intersects(self, other: "Polygon") -> bool:
        return polygons_intersect(self, other)

    def distance_to_point(self, point: VectorLike) -> float:
        """Distance from *point* to the polygon (0 if inside)."""
        point = Vector.from_any(point)
        if self.contains_point(point):
            return 0.0
        return min(_point_segment_distance(point, a, b) for a, b in self.edges())

    # -- transforms ------------------------------------------------------------

    def translated(self, offset: VectorLike) -> "Polygon":
        offset = Vector.from_any(offset)
        return Polygon([v + offset for v in self.vertices])

    def rotated(self, angle: float, about: Optional[VectorLike] = None) -> "Polygon":
        pivot = Vector.from_any(about) if about is not None else Vector(0, 0)
        return Polygon([(v - pivot).rotated_by(angle) + pivot for v in self.vertices])

    def scaled(self, factor: float, about: Optional[VectorLike] = None) -> "Polygon":
        pivot = Vector.from_any(about) if about is not None else self.centroid
        return Polygon([(v - pivot) * factor + pivot for v in self.vertices])

    # -- misc -------------------------------------------------------------------

    def __repr__(self) -> str:
        return f"Polygon({[v.to_tuple() for v in self.vertices]})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Polygon):
            return NotImplemented
        return self.vertices == other.vertices

    def __hash__(self) -> int:
        return hash(self.vertices)

    @staticmethod
    def rectangle(center: VectorLike, width: float, height: float, heading: float = 0.0) -> "Polygon":
        """Axis-aligned w×h rectangle rotated to *heading* about its centre.

        This is exactly the bounding box of an :class:`Object` in the paper:
        ``width`` spans the local x axis and ``height`` the local y axis.
        """
        center = Vector.from_any(center)
        half_w, half_h = width / 2.0, height / 2.0
        corners = [
            Vector(-half_w, -half_h),
            Vector(half_w, -half_h),
            Vector(half_w, half_h),
            Vector(-half_w, half_h),
        ]
        return Polygon([center + corner.rotated_by(heading) for corner in corners])


def _signed_area(vertices: Sequence[Vector]) -> float:
    total = 0.0
    count = len(vertices)
    for i in range(count):
        a, b = vertices[i], vertices[(i + 1) % count]
        total += a.x * b.y - b.x * a.y
    return total / 2.0


def _point_segment_distance(point: Vector, a: Vector, b: Vector) -> float:
    segment = b - a
    length_sq = segment.dot(segment)
    if length_sq == 0:
        return point.distance_to(a)
    t = max(0.0, min(1.0, (point - a).dot(segment) / length_sq))
    projection = a + segment * t
    return point.distance_to(projection)


def polygons_intersect(p: Polygon, q: Polygon) -> bool:
    """True iff the two polygons overlap (share interior or boundary points)."""
    if not p.bounding_box().intersects(q.bounding_box()):
        return False
    for a1, a2 in p.edges():
        for b1, b2 in q.edges():
            if segments_intersect(a1, a2, b1, b2):
                return True
    # No edge crossings: one may contain the other entirely.
    return p.contains_point(q.vertices[0]) or q.contains_point(p.vertices[0])


def convex_hull(points: Iterable[VectorLike]) -> Polygon:
    """Andrew's monotone-chain convex hull."""
    pts = sorted({Vector.from_any(p).to_tuple() for p in points})
    if len(pts) < 3:
        raise ValueError("convex hull needs at least 3 distinct points")
    pts = [Vector(x, y) for x, y in pts]

    def half_hull(sequence):
        hull: List[Vector] = []
        for point in sequence:
            while len(hull) >= 2 and _orientation(hull[-2], hull[-1], point) <= 0:
                hull.pop()
            hull.append(point)
        return hull

    lower = half_hull(pts)
    upper = half_hull(reversed(pts))
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:
        # All points collinear: fall back to a degenerate thin rectangle.
        a, b = pts[0], pts[-1]
        direction = (b - a)
        if direction.norm() == 0:
            raise ValueError("convex hull of coincident points")
        normal = Vector(-direction.y, direction.x) * (1e-9 / direction.norm())
        return Polygon([a + normal, b + normal, b - normal, a - normal])
    return Polygon(hull)


def clip_polygon(subject: Polygon, clip: Polygon) -> Optional[Polygon]:
    """Sutherland–Hodgman clipping of *subject* against a convex *clip* polygon.

    Returns the intersection polygon, or ``None`` if it is empty.  The result
    is exact when *clip* is convex (the only case the pruning algorithms
    need); *subject* may be any simple polygon, in which case the output is a
    (possibly degenerate) superset of the true intersection boundary, which
    keeps the pruning algorithms sound.
    """
    output = list(subject.vertices)
    clip_vertices = clip.vertices
    count = len(clip_vertices)
    for i in range(count):
        if not output:
            return None
        a, b = clip_vertices[i], clip_vertices[(i + 1) % count]
        input_list = output
        output = []

        def inside(point: Vector) -> bool:
            return _orientation(a, b, point) >= -1e-12

        def line_intersection(p1: Vector, p2: Vector) -> Vector:
            # Intersection of segment p1p2 with the infinite line ab.
            d1 = _orientation(a, b, p1)
            d2 = _orientation(a, b, p2)
            if d1 == d2:
                return p1
            t = d1 / (d1 - d2)
            return p1 + (p2 - p1) * t

        for index, current in enumerate(input_list):
            previous = input_list[index - 1]
            if inside(current):
                if not inside(previous):
                    output.append(line_intersection(previous, current))
                output.append(current)
            elif inside(previous):
                output.append(line_intersection(previous, current))
    # Remove (near-)duplicate consecutive vertices before constructing.
    cleaned: List[Vector] = []
    for vertex in output:
        if not cleaned or not vertex.is_close_to(cleaned[-1], tolerance=1e-9):
            cleaned.append(vertex)
    if len(cleaned) >= 2 and cleaned[0].is_close_to(cleaned[-1], tolerance=1e-9):
        cleaned.pop()
    if len(cleaned) < 3:
        return None
    result = Polygon(cleaned)
    if result.area < 1e-12:
        return None
    return result

"""Computational-geometry substrate for the Scenic reproduction.

The published Scenic implementation leans on Shapely for polygon operations;
this reproduction implements the needed subset from scratch:

* :mod:`repro.geometry.polygon` — simple polygons: containment, area,
  convexity, intersection tests, convex clipping, bounding boxes.
* :mod:`repro.geometry.triangulation` — ear-clipping triangulation and
  uniform sampling of points inside polygons.
* :mod:`repro.geometry.morphology` — conservative erosion and dilation used
  by the pruning algorithms of Sec. 5.2.
"""

from .polygon import (
    Polygon,
    BoundingBox,
    convex_hull,
    polygons_intersect,
    clip_polygon,
    point_in_polygon,
    segments_intersect,
)
from .triangulation import triangulate, sample_point_in_polygon, sample_point_in_triangle
from .morphology import erode_polygon, dilate_polygon

__all__ = [
    "Polygon",
    "BoundingBox",
    "convex_hull",
    "polygons_intersect",
    "clip_polygon",
    "point_in_polygon",
    "segments_intersect",
    "triangulate",
    "sample_point_in_polygon",
    "sample_point_in_triangle",
    "erode_polygon",
    "dilate_polygon",
]

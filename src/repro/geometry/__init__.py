"""Computational-geometry substrate for the Scenic reproduction.

The published Scenic implementation leans on Shapely for polygon operations;
this reproduction implements the needed subset from scratch:

* :mod:`repro.geometry.polygon` — simple polygons: containment, area,
  convexity, intersection tests, convex clipping, bounding boxes.
* :mod:`repro.geometry.triangulation` — ear-clipping triangulation and
  uniform sampling of points inside polygons.
* :mod:`repro.geometry.morphology` — conservative erosion and dilation used
  by the pruning algorithms of Sec. 5.2.
* :mod:`repro.geometry.kernel` — batch evaluation of the sampling hot
  path's predicates (point containment, object containment, pairwise
  collision) over whole candidate batches at once, dispatched to a
  pluggable compute backend.
* :mod:`repro.geometry.backends` — the kernel-backend registry: the numpy
  reference (default, bit-identical), an optional numba-JIT backend and an
  optional JAX stub, selectable globally or per engine.
* :mod:`repro.geometry.spatial_index` — a uniform-grid index pruning the
  O(n²) collision pair enumeration and accelerating point location in
  large polygonal unions.
"""

from .polygon import (
    Polygon,
    BoundingBox,
    convex_hull,
    polygons_intersect,
    clip_polygon,
    point_in_polygon,
    segments_intersect,
)
from .triangulation import triangulate, sample_point_in_polygon, sample_point_in_triangle
from .morphology import erode_polygon, dilate_polygon
from .kernel import (
    contains_points,
    objects_contained,
    pairwise_collisions,
    quads_overlap,
    points_in_polygon,
)
from .spatial_index import SpatialGrid
from .backends import (
    KernelBackend,
    BackendUnavailableError,
    get_backend,
    available_backends,
    registered_backends,
    use_backend,
)

__all__ = [
    "Polygon",
    "BoundingBox",
    "convex_hull",
    "polygons_intersect",
    "clip_polygon",
    "point_in_polygon",
    "segments_intersect",
    "triangulate",
    "sample_point_in_polygon",
    "sample_point_in_triangle",
    "erode_polygon",
    "dilate_polygon",
    "contains_points",
    "objects_contained",
    "pairwise_collisions",
    "quads_overlap",
    "points_in_polygon",
    "SpatialGrid",
    "KernelBackend",
    "BackendUnavailableError",
    "get_backend",
    "available_backends",
    "registered_backends",
    "use_backend",
]

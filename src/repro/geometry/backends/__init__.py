"""Registry of pluggable geometry-kernel compute backends.

The sampling hot path's batched predicates (:mod:`repro.geometry.kernel`)
dispatch to a :class:`~repro.geometry.backends.base.KernelBackend`.  Three
backends ship built-in:

============  ==========  ========================================================
name          priority    implementation
============  ==========  ========================================================
``numpy``     10          vectorized reference (always available, **default**;
                          bit-identical to the golden corpus)
``numba``     30          lazily JIT-compiled parallel ``prange`` loops
                          (optional; requires ``numba``)
``jax``       20          ``jax.numpy`` mirror stub (optional; requires ``jax``)
============  ==========  ========================================================

Selection API:

* :func:`get_backend` — resolve a name (``"numpy"``, ``"numba"``, ``"jax"``,
  or ``"auto"`` for the highest-priority *available* backend) to a cached
  instance, raising :class:`BackendUnavailableError` when the dependency is
  absent.
* :func:`active_backend` / :func:`set_active_backend` /
  :func:`use_backend` — the process-global default the kernel facade
  dispatches to.  It starts as ``numpy`` (keeping the bit-identical
  determinism contract) unless the ``REPRO_GEOMETRY_BACKEND`` environment
  variable names another backend; an unavailable env selection falls back
  to numpy with a warning rather than failing import.
* Per-engine selection — ``SamplerEngine(..., backend="numba")`` pins one
  engine (and every strategy check it runs) to a backend without touching
  the global default; the service forwards a ``"backend"`` strategy option
  the same way.

Third-party backends subclass :class:`KernelBackend` and call
:func:`register_backend`; see ``docs/backends.md`` for the full contract
and the differential gauntlet every backend must survive.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Type, Union

from .base import BackendUnavailableError, KernelBackend
from .jax_backend import JaxBackend
from .numba_backend import NumbaBackend
from .numpy_backend import NumpyBackend

#: The always-available reference backend and process-global initial default.
DEFAULT_BACKEND = "numpy"

#: Environment variable consulted (once, lazily) for the initial global backend.
BACKEND_ENV_VAR = "REPRO_GEOMETRY_BACKEND"

_REGISTRY: Dict[str, Type[KernelBackend]] = {}
_INSTANCES: Dict[str, KernelBackend] = {}
# Resolved lazily: explicit > env var > default.  Holds a registered name or,
# for ad-hoc `use_backend(instance)` scopes, the instance itself.
_ACTIVE: Optional[Union[str, KernelBackend]] = None


def register_backend(
    backend_class: Type[KernelBackend], *, overwrite: bool = False
) -> Type[KernelBackend]:
    """Register a :class:`KernelBackend` subclass under its ``name``.

    Re-registering an existing name raises ``ValueError`` unless
    *overwrite* is true (mirroring ``register_strategy``).  Returns the
    class, so it can be used as a decorator.
    """
    name = getattr(backend_class, "name", None)
    if not isinstance(name, str) or not name or name in ("auto", "abstract"):
        raise ValueError(
            f"backend class {backend_class!r} must define a non-empty name "
            "(and 'auto'/'abstract' are reserved)"
        )
    if name in _REGISTRY and not overwrite:
        raise ValueError(
            f"geometry backend {name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _REGISTRY[name] = backend_class
    _INSTANCES.pop(name, None)
    return backend_class


def unregister_backend(name: str) -> None:
    """Remove a registered backend (primarily for tests registering fakes)."""
    if name not in _REGISTRY:
        raise ValueError(f"unknown geometry backend {name!r}")
    del _REGISTRY[name]
    _INSTANCES.pop(name, None)
    global _ACTIVE
    if _ACTIVE == name:
        _ACTIVE = DEFAULT_BACKEND


def registered_backends() -> List[str]:
    """Every registered backend name, in capability-fallback order."""
    return sorted(_REGISTRY, key=lambda name: (-_REGISTRY[name].priority, name))


def available_backends() -> List[str]:
    """Registered backends whose dependencies import, in fallback order."""
    return [name for name in registered_backends() if _REGISTRY[name].is_available()]


def get_backend(name: Union[str, KernelBackend, None] = None) -> KernelBackend:
    """Resolve *name* to a backend instance.

    ``None`` returns the process-global active backend; ``"auto"`` picks the
    highest-priority available backend; an explicit name must be registered
    *and* available (:class:`BackendUnavailableError` otherwise).  Instances
    pass through unchanged, so APIs can accept either form.
    """
    if name is None:
        return active_backend()
    if isinstance(name, KernelBackend):
        return name
    if name == "auto":
        for candidate in registered_backends():
            if _REGISTRY[candidate].is_available():
                return get_backend(candidate)
        raise BackendUnavailableError("no registered geometry backend is available")
    backend_class = _REGISTRY.get(name)
    if backend_class is None:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ValueError(f"unknown geometry backend {name!r} (registered: {known})")
    if not backend_class.is_available():
        raise BackendUnavailableError(
            f"geometry backend {name!r} is registered but its dependency is "
            f"not installed (available: {', '.join(available_backends())})"
        )
    instance = _INSTANCES.get(name)
    if instance is None or type(instance) is not backend_class:
        instance = backend_class()
        _INSTANCES[name] = instance
    return instance


def _initial_backend_name() -> str:
    """The env-var selection, degraded to the default with a warning."""
    requested = os.environ.get(BACKEND_ENV_VAR)
    if not requested:
        return DEFAULT_BACKEND
    try:
        return get_backend(requested).name
    except (ValueError, BackendUnavailableError) as error:
        warnings.warn(
            f"{BACKEND_ENV_VAR}={requested!r} is not usable ({error}); "
            f"falling back to the {DEFAULT_BACKEND!r} backend",
            RuntimeWarning,
            stacklevel=3,
        )
        return DEFAULT_BACKEND


def active_backend() -> KernelBackend:
    """The process-global backend the kernel facade dispatches to."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = _initial_backend_name()
    if isinstance(_ACTIVE, KernelBackend):
        return _ACTIVE
    return get_backend(_ACTIVE)


def set_active_backend(name: Union[str, None]) -> str:
    """Set the process-global backend; returns the previous active name.

    ``None`` (or ``"auto"``) resolves through the normal rules; an explicit
    unavailable name raises rather than silently degrading.
    """
    global _ACTIVE
    previous = active_backend().name
    if name is None:
        _ACTIVE = None
    else:
        _ACTIVE = get_backend(name).name
    return previous


@contextmanager
def use_backend(name: Union[str, KernelBackend, None]) -> Iterator[KernelBackend]:
    """Temporarily make *name* the process-global active backend.

    Not async/thread-safe (it swaps process-global state); per-engine
    selection via ``SamplerEngine(backend=...)`` is the concurrent-safe
    alternative.
    """
    global _ACTIVE
    backend = get_backend(name)
    previous = _ACTIVE
    _ACTIVE = backend if isinstance(name, KernelBackend) else backend.name
    try:
        yield backend
    finally:
        _ACTIVE = previous


register_backend(NumpyBackend)
register_backend(NumbaBackend)
register_backend(JaxBackend)


__all__ = [
    "BACKEND_ENV_VAR",
    "BackendUnavailableError",
    "DEFAULT_BACKEND",
    "JaxBackend",
    "KernelBackend",
    "NumbaBackend",
    "NumpyBackend",
    "active_backend",
    "available_backends",
    "get_backend",
    "register_backend",
    "registered_backends",
    "set_active_backend",
    "unregister_backend",
    "use_backend",
]

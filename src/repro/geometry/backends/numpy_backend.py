"""The numpy reference backend: the kernel's original vectorized code.

This is the implementation the golden corpus was recorded against, moved
here verbatim from :mod:`repro.geometry.kernel`.  It is the default active
backend and the bit-identical anchor every other backend is differentially
tested against: the separating-axis test uses closed intervals (touching
counts as overlap, exactly like ``polygons_intersect``) and
:meth:`NumpyBackend.points_in_polygon` replicates the scalar ray-casting
code operation for operation.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from .base import KernelBackend


class NumpyBackend(KernelBackend):
    """Pure-numpy reference implementation (always available, default)."""

    name = "numpy"
    priority = 10

    def points_in_polygon(self, vertices: Any, points: Any) -> np.ndarray:
        """Vectorized ray casting; boundary points count as inside.

        A faithful replication of :func:`repro.geometry.polygon.point_in_polygon`
        (same operations in the same order), evaluated for all points at once
        with one numpy pass per polygon edge.
        """
        from ..kernel import as_points

        vertices = np.asarray(vertices, dtype=float)
        pts = as_points(points)
        x, y = pts[:, 0], pts[:, 1]
        count = len(vertices)
        inside = np.zeros(len(pts), dtype=bool)
        on_edge = np.zeros(len(pts), dtype=bool)
        j = count - 1
        for i in range(count):
            xi, yi = vertices[i]
            xj, yj = vertices[j]
            # Boundary check (scalar `_point_on_segment` with a=v_i, b=v_j).
            edge_x, edge_y = xj - xi, yj - yi
            length_sq = edge_x * edge_x + edge_y * edge_y
            tolerance = 1e-9 * max(1.0, float(np.hypot(edge_x, edge_y)))
            cross = edge_x * (y - yi) - edge_y * (x - xi)
            dot = (x - xi) * edge_x + (y - yi) * edge_y
            on_edge |= (np.abs(cross) <= tolerance) & (dot >= -1e-9) & (dot <= length_sq + 1e-9)
            # Ray crossing (same expression as the scalar code, v_i/v_j swapped
            # roles preserved: slope_x anchored at v_j).
            crosses = (yi > y) != (yj > y)
            if crosses.any():
                with np.errstate(divide="ignore", invalid="ignore"):
                    slope_x = xj + (y - yj) * (xi - xj) / (yi - yj)
                inside ^= crosses & (x < slope_x)
            j = i
        return inside | on_edge

    def pairwise_collisions(
        self,
        corners: Any,
        collidable: Optional[np.ndarray] = None,
        grid_threshold: Optional[int] = None,
    ) -> np.ndarray:
        """All overlapping object pairs as an ``(M, 2)`` array of index pairs.

        *corners* is ``(N, 4, 2)``; *collidable* optionally masks objects out of
        the check (``allowCollisions`` objects).  For ``N >= grid_threshold`` the
        candidate pairs come from a uniform :class:`SpatialGrid` instead of the
        full upper triangle, pruning the O(n²) enumeration.  Pairs are returned
        in lexicographic order with ``i < j``, matching the scalar nested loop.
        """
        from ..kernel import GRID_PAIR_THRESHOLD, aabbs_of, quads_overlap

        if grid_threshold is None:
            grid_threshold = GRID_PAIR_THRESHOLD
        corners = np.asarray(corners, dtype=float)
        n = corners.shape[0]
        if n < 2:
            return np.zeros((0, 2), dtype=int)
        if collidable is None:
            collidable_mask = np.ones(n, dtype=bool)
        else:
            collidable_mask = np.asarray(collidable, dtype=bool)
        boxes = aabbs_of(corners)
        if n >= grid_threshold:
            from ..spatial_index import SpatialGrid

            pairs = SpatialGrid(boxes).candidate_pairs()
        else:
            row, col = np.triu_indices(n, k=1)
            pairs = np.stack([row, col], axis=1)
        if len(pairs) == 0:
            return np.zeros((0, 2), dtype=int)
        i, j = pairs[:, 0], pairs[:, 1]
        keep = collidable_mask[i] & collidable_mask[j]
        # Closed-interval AABB prefilter, identical to BoundingBox.intersects.
        keep &= ~(
            (boxes[i, 2] < boxes[j, 0])
            | (boxes[j, 2] < boxes[i, 0])
            | (boxes[i, 3] < boxes[j, 1])
            | (boxes[j, 3] < boxes[i, 1])
        )
        pairs = pairs[keep]
        if len(pairs) == 0:
            return pairs
        hits = quads_overlap(corners[pairs[:, 0]], corners[pairs[:, 1]])
        return pairs[hits]

    def batch_collision_free(
        self, corners: Any, collidable: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Collision-freedom of ``K`` candidate scenes at once.

        *corners* is ``(K, N, 4, 2)`` (same object count per candidate, as
        produced by concretizing one scenario ``K`` times); *collidable* is an
        optional ``(K, N)`` mask.  Returns a boolean ``(K,)`` array that is True
        where no collidable pair overlaps — the bulk form of
        ``no_pairwise_collisions`` used by the vectorized sampling strategy.
        """
        from ..kernel import quads_overlap

        corners = np.asarray(corners, dtype=float)
        k, n = corners.shape[0], corners.shape[1]
        if k == 0:
            return np.zeros(0, dtype=bool)
        if n < 2:
            return np.ones(k, dtype=bool)
        row, col = np.triu_indices(n, k=1)
        # Cheap AABB prefilter over every (candidate, pair): the exact SAT only
        # runs on pairs whose bounds overlap — usually a small fraction.
        mins = corners.min(axis=2)  # (K, N, 2)
        maxs = corners.max(axis=2)
        candidate = ~(
            (maxs[:, row, 0] < mins[:, col, 0])
            | (maxs[:, col, 0] < mins[:, row, 0])
            | (maxs[:, row, 1] < mins[:, col, 1])
            | (maxs[:, col, 1] < mins[:, row, 1])
        )  # (K, P)
        if collidable is not None:
            mask = np.asarray(collidable, dtype=bool)
            candidate &= mask[:, row] & mask[:, col]
        scene_index, pair_index = np.nonzero(candidate)
        if len(scene_index) == 0:
            return np.ones(k, dtype=bool)
        hits = quads_overlap(
            corners[scene_index, row[pair_index]], corners[scene_index, col[pair_index]]
        )
        free = np.ones(k, dtype=bool)
        free[scene_index[hits]] = False
        return free


__all__ = ["NumpyBackend"]

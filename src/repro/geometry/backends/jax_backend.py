"""Optional JAX backend stub: the numpy predicates mirrored onto ``jax.numpy``.

This is deliberately a *stub*: it proves the registry's capability-gating
shape (lazy import, :meth:`JaxBackend.is_available` via ``find_spec``,
``BackendUnavailableError`` on construction without the dependency) and
gives the differential gauntlet a third backend to hold to the 1e-9
agreement contract when JAX is installed.  It mirrors the reference
implementations op-for-op on ``jax.numpy`` arrays and converts results back
to numpy; it does not yet ``jit``/``vmap`` or place work on accelerators —
see ``docs/backends.md`` for what a production JAX backend would add.
"""

from __future__ import annotations

import importlib.util
from typing import Any, Optional

import numpy as np

from .base import BackendUnavailableError, KernelBackend


class JaxBackend(KernelBackend):
    """JAX array backend (optional stub; requires ``jax``)."""

    name = "jax"
    priority = 20

    @classmethod
    def is_available(cls) -> bool:
        return importlib.util.find_spec("jax") is not None

    def __init__(self) -> None:
        if not self.is_available():
            raise BackendUnavailableError(
                "the 'jax' backend requires the jax package; "
                "install it or select the 'numpy' backend"
            )
        import jax.numpy as jnp  # lazy: only reached when available

        self._jnp = jnp

    def points_in_polygon(self, vertices: Any, points: Any) -> np.ndarray:
        from ..kernel import as_points

        jnp = self._jnp
        vertices = np.asarray(vertices, dtype=float)
        pts = as_points(points)
        if len(pts) == 0 or len(vertices) == 0:
            return np.zeros(len(pts), dtype=bool)
        x = jnp.asarray(pts[:, 0])
        y = jnp.asarray(pts[:, 1])
        count = len(vertices)
        inside = jnp.zeros(len(pts), dtype=bool)
        on_edge = jnp.zeros(len(pts), dtype=bool)
        j = count - 1
        for i in range(count):
            xi, yi = float(vertices[i, 0]), float(vertices[i, 1])
            xj, yj = float(vertices[j, 0]), float(vertices[j, 1])
            edge_x, edge_y = xj - xi, yj - yi
            length_sq = edge_x * edge_x + edge_y * edge_y
            tolerance = 1e-9 * max(1.0, float(np.hypot(edge_x, edge_y)))
            cross = edge_x * (y - yi) - edge_y * (x - xi)
            dot = (x - xi) * edge_x + (y - yi) * edge_y
            on_edge |= (jnp.abs(cross) <= tolerance) & (dot >= -1e-9) & (dot <= length_sq + 1e-9)
            crosses = (yi > y) != (yj > y)
            if yi != yj:
                slope_x = xj + (y - yj) * (xi - xj) / (yi - yj)
                inside ^= crosses & (x < slope_x)
            j = i
        return np.asarray(inside | on_edge)

    def _quads_overlap(self, first: np.ndarray, second: np.ndarray) -> np.ndarray:
        jnp = self._jnp
        first = jnp.asarray(first, dtype=float)
        second = jnp.asarray(second, dtype=float)
        edges = jnp.concatenate(
            [jnp.roll(first, -1, axis=1) - first, jnp.roll(second, -1, axis=1) - second],
            axis=1,
        )
        axes = jnp.stack([-edges[..., 1], edges[..., 0]], axis=-1)
        projections_first = axes @ first.transpose(0, 2, 1)
        projections_second = axes @ second.transpose(0, 2, 1)
        separated = (projections_first.max(axis=2) < projections_second.min(axis=2)) | (
            projections_second.max(axis=2) < projections_first.min(axis=2)
        )
        return np.asarray(~separated.any(axis=1))

    def pairwise_collisions(
        self,
        corners: Any,
        collidable: Optional[np.ndarray] = None,
        grid_threshold: Optional[int] = None,
    ) -> np.ndarray:
        from ..kernel import GRID_PAIR_THRESHOLD, aabbs_of

        if grid_threshold is None:
            grid_threshold = GRID_PAIR_THRESHOLD
        corners = np.asarray(corners, dtype=float)
        n = corners.shape[0]
        if n < 2:
            return np.zeros((0, 2), dtype=int)
        if collidable is None:
            collidable_mask = np.ones(n, dtype=bool)
        else:
            collidable_mask = np.asarray(collidable, dtype=bool)
        boxes = aabbs_of(corners)
        if n >= grid_threshold:
            from ..spatial_index import SpatialGrid

            pairs = SpatialGrid(boxes).candidate_pairs()
        else:
            row, col = np.triu_indices(n, k=1)
            pairs = np.stack([row, col], axis=1)
        if len(pairs) == 0:
            return np.zeros((0, 2), dtype=int)
        i, j = pairs[:, 0], pairs[:, 1]
        keep = collidable_mask[i] & collidable_mask[j]
        keep &= ~(
            (boxes[i, 2] < boxes[j, 0])
            | (boxes[j, 2] < boxes[i, 0])
            | (boxes[i, 3] < boxes[j, 1])
            | (boxes[j, 3] < boxes[i, 1])
        )
        pairs = pairs[keep]
        if len(pairs) == 0:
            return pairs
        hits = self._quads_overlap(corners[pairs[:, 0]], corners[pairs[:, 1]])
        return pairs[hits]

    def batch_collision_free(
        self, corners: Any, collidable: Optional[np.ndarray] = None
    ) -> np.ndarray:
        corners = np.asarray(corners, dtype=float)
        k, n = corners.shape[0], corners.shape[1]
        if k == 0:
            return np.zeros(0, dtype=bool)
        if n < 2:
            return np.ones(k, dtype=bool)
        row, col = np.triu_indices(n, k=1)
        mins = corners.min(axis=2)
        maxs = corners.max(axis=2)
        candidate = ~(
            (maxs[:, row, 0] < mins[:, col, 0])
            | (maxs[:, col, 0] < mins[:, row, 0])
            | (maxs[:, row, 1] < mins[:, col, 1])
            | (maxs[:, col, 1] < mins[:, row, 1])
        )
        if collidable is not None:
            mask = np.asarray(collidable, dtype=bool)
            candidate &= mask[:, row] & mask[:, col]
        scene_index, pair_index = np.nonzero(candidate)
        if len(scene_index) == 0:
            return np.ones(k, dtype=bool)
        hits = self._quads_overlap(
            corners[scene_index, row[pair_index]], corners[scene_index, col[pair_index]]
        )
        free = np.ones(k, dtype=bool)
        free[scene_index[hits]] = False
        return free


__all__ = ["JaxBackend"]

"""Optional numba-JIT backend: parallel ``prange`` loops over the hot predicates.

numba is never imported at module load — :meth:`NumbaBackend.is_available`
only probes ``importlib.util.find_spec``, and the JIT kernels compile lazily
on first use (the compiled dispatchers are cached process-wide, so the
one-time compile cost is paid once per interpreter).  When numba is absent
the backend registers but reports unavailable, and ``get_backend("auto")``
falls through to numpy.

The JIT kernels replicate the scalar predicates' arithmetic (same
expressions, same closed-interval separating-axis comparisons), so results
agree with the numpy reference backend bit-for-bit away from ~1-ulp
boundary coincidences; the differential gauntlet and the golden-corpus
replay pin this within 1e-9.  :meth:`~NumbaBackend.objects_contained`
inherits the shared region-layer default — its polygon membership work is
accelerated whenever this backend is the globally active one, because
``PolygonalRegion`` batch containment routes through the dispatching
:func:`repro.geometry.kernel.points_in_polygon`.
"""

from __future__ import annotations

import importlib.util
from typing import Any, Dict, Optional

import numpy as np

from .base import BackendUnavailableError, KernelBackend

#: Lazily compiled JIT dispatchers, shared by every NumbaBackend instance.
_JIT: Optional[Dict[str, Any]] = None


def _compiled_kernels() -> Dict[str, Any]:
    """Build (once) and return the njit-compiled kernel dispatchers."""
    global _JIT
    if _JIT is not None:
        return _JIT

    from numba import njit, prange  # lazy: only reached when available

    @njit(cache=False)
    def _quad_pair_overlaps(first, second):  # (4, 2), (4, 2) -> bool
        # Separating-axis test over both quads' edge normals; closed
        # intervals (touching counts as overlap), matching the reference.
        for source in range(2):
            quad = first if source == 0 else second
            for edge in range(4):
                nxt = (edge + 1) % 4
                axis_x = -(quad[nxt, 1] - quad[edge, 1])
                axis_y = quad[nxt, 0] - quad[edge, 0]
                first_min = np.inf
                first_max = -np.inf
                second_min = np.inf
                second_max = -np.inf
                for corner in range(4):
                    proj = axis_x * first[corner, 0] + axis_y * first[corner, 1]
                    if proj < first_min:
                        first_min = proj
                    if proj > first_max:
                        first_max = proj
                    proj = axis_x * second[corner, 0] + axis_y * second[corner, 1]
                    if proj < second_min:
                        second_min = proj
                    if proj > second_max:
                        second_max = proj
                if first_max < second_min or second_max < first_min:
                    return False
        return True

    @njit(cache=False, parallel=True)
    def points_in_polygon(vertices, x, y):  # (V, 2), (N,), (N,) -> (N,) bool
        count = vertices.shape[0]
        n = x.shape[0]
        out = np.empty(n, dtype=np.bool_)
        for p in prange(n):
            px = x[p]
            py = y[p]
            inside = False
            on_edge = False
            j = count - 1
            for i in range(count):
                xi = vertices[i, 0]
                yi = vertices[i, 1]
                xj = vertices[j, 0]
                yj = vertices[j, 1]
                edge_x = xj - xi
                edge_y = yj - yi
                length_sq = edge_x * edge_x + edge_y * edge_y
                length = np.sqrt(length_sq)
                tolerance = 1e-9 * (length if length > 1.0 else 1.0)
                cross = edge_x * (py - yi) - edge_y * (px - xi)
                dot = (px - xi) * edge_x + (py - yi) * edge_y
                if abs(cross) <= tolerance and dot >= -1e-9 and dot <= length_sq + 1e-9:
                    on_edge = True
                if (yi > py) != (yj > py):
                    slope_x = xj + (py - yj) * (xi - xj) / (yi - yj)
                    if px < slope_x:
                        inside = not inside
                j = i
            out[p] = inside or on_edge
        return out

    @njit(cache=False, parallel=True)
    def pairs_overlap(first, second):  # (M, 4, 2), (M, 4, 2) -> (M,) bool
        m = first.shape[0]
        out = np.empty(m, dtype=np.bool_)
        for k in prange(m):
            out[k] = _quad_pair_overlaps(first[k], second[k])
        return out

    @njit(cache=False, parallel=True)
    def batch_collision_free(corners, collidable):  # (K, N, 4, 2), (K, N) -> (K,)
        k = corners.shape[0]
        n = corners.shape[1]
        out = np.empty(k, dtype=np.bool_)
        for scene in prange(k):
            free = True
            for i in range(n):
                if not free:
                    break
                if not collidable[scene, i]:
                    continue
                i_min_x = np.inf
                i_min_y = np.inf
                i_max_x = -np.inf
                i_max_y = -np.inf
                for corner in range(4):
                    cx = corners[scene, i, corner, 0]
                    cy = corners[scene, i, corner, 1]
                    if cx < i_min_x:
                        i_min_x = cx
                    if cx > i_max_x:
                        i_max_x = cx
                    if cy < i_min_y:
                        i_min_y = cy
                    if cy > i_max_y:
                        i_max_y = cy
                for j in range(i + 1, n):
                    if not collidable[scene, j]:
                        continue
                    j_min_x = np.inf
                    j_min_y = np.inf
                    j_max_x = -np.inf
                    j_max_y = -np.inf
                    for corner in range(4):
                        cx = corners[scene, j, corner, 0]
                        cy = corners[scene, j, corner, 1]
                        if cx < j_min_x:
                            j_min_x = cx
                        if cx > j_max_x:
                            j_max_x = cx
                        if cy < j_min_y:
                            j_min_y = cy
                        if cy > j_max_y:
                            j_max_y = cy
                    # Closed-interval AABB prefilter, then the exact SAT.
                    if i_max_x < j_min_x or j_max_x < i_min_x:
                        continue
                    if i_max_y < j_min_y or j_max_y < i_min_y:
                        continue
                    if _quad_pair_overlaps(corners[scene, i], corners[scene, j]):
                        free = False
                        break
            out[scene] = free
        return out

    _JIT = {
        "points_in_polygon": points_in_polygon,
        "pairs_overlap": pairs_overlap,
        "batch_collision_free": batch_collision_free,
    }
    return _JIT


class NumbaBackend(KernelBackend):
    """JIT-compiled parallel backend (optional; requires ``numba``)."""

    name = "numba"
    priority = 30

    @classmethod
    def is_available(cls) -> bool:
        return importlib.util.find_spec("numba") is not None

    def __init__(self) -> None:
        if not self.is_available():
            raise BackendUnavailableError(
                "the 'numba' backend requires the numba package; "
                "install it or select the 'numpy' backend"
            )

    def points_in_polygon(self, vertices: Any, points: Any) -> np.ndarray:
        from ..kernel import as_points

        vertices = np.ascontiguousarray(np.asarray(vertices, dtype=float))
        pts = as_points(points)
        if len(pts) == 0 or len(vertices) == 0:
            return np.zeros(len(pts), dtype=bool)
        jit = _compiled_kernels()
        x = np.ascontiguousarray(pts[:, 0])
        y = np.ascontiguousarray(pts[:, 1])
        return np.asarray(jit["points_in_polygon"](vertices, x, y), dtype=bool)

    def pairwise_collisions(
        self,
        corners: Any,
        collidable: Optional[np.ndarray] = None,
        grid_threshold: Optional[int] = None,
    ) -> np.ndarray:
        from ..kernel import GRID_PAIR_THRESHOLD, aabbs_of

        if grid_threshold is None:
            grid_threshold = GRID_PAIR_THRESHOLD
        corners = np.ascontiguousarray(np.asarray(corners, dtype=float))
        n = corners.shape[0]
        if n < 2:
            return np.zeros((0, 2), dtype=int)
        if collidable is None:
            collidable_mask = np.ones(n, dtype=bool)
        else:
            collidable_mask = np.asarray(collidable, dtype=bool)
        boxes = aabbs_of(corners)
        # Same candidate-pair enumeration (and therefore the same output
        # ordering) as the numpy reference; only the SAT loop is JIT-compiled.
        if n >= grid_threshold:
            from ..spatial_index import SpatialGrid

            pairs = SpatialGrid(boxes).candidate_pairs()
        else:
            row, col = np.triu_indices(n, k=1)
            pairs = np.stack([row, col], axis=1)
        if len(pairs) == 0:
            return np.zeros((0, 2), dtype=int)
        i, j = pairs[:, 0], pairs[:, 1]
        keep = collidable_mask[i] & collidable_mask[j]
        keep &= ~(
            (boxes[i, 2] < boxes[j, 0])
            | (boxes[j, 2] < boxes[i, 0])
            | (boxes[i, 3] < boxes[j, 1])
            | (boxes[j, 3] < boxes[i, 1])
        )
        pairs = pairs[keep]
        if len(pairs) == 0:
            return pairs
        jit = _compiled_kernels()
        hits = jit["pairs_overlap"](
            np.ascontiguousarray(corners[pairs[:, 0]]),
            np.ascontiguousarray(corners[pairs[:, 1]]),
        )
        return pairs[np.asarray(hits, dtype=bool)]

    def batch_collision_free(
        self, corners: Any, collidable: Optional[np.ndarray] = None
    ) -> np.ndarray:
        corners = np.ascontiguousarray(np.asarray(corners, dtype=float))
        k, n = corners.shape[0], corners.shape[1]
        if k == 0:
            return np.zeros(0, dtype=bool)
        if n < 2:
            return np.ones(k, dtype=bool)
        if collidable is None:
            mask = np.ones((k, n), dtype=bool)
        else:
            mask = np.ascontiguousarray(np.asarray(collidable, dtype=bool))
        jit = _compiled_kernels()
        return np.asarray(jit["batch_collision_free"](corners, mask), dtype=bool)


__all__ = ["NumbaBackend"]

"""The kernel-backend protocol: what a geometry compute backend must provide.

A :class:`KernelBackend` evaluates the sampling hot path's four batched
predicates (see :mod:`repro.geometry.kernel` for the semantics each must
reproduce):

* :meth:`~KernelBackend.points_in_polygon` — ray-casting membership of ``N``
  points in one simple polygon, boundary points inside;
* :meth:`~KernelBackend.objects_contained` — the corners-plus-edge-midpoints
  object containment test against a region;
* :meth:`~KernelBackend.pairwise_collisions` — all overlapping pairs among
  ``N`` convex quads, lexicographic ``i < j`` order;
* :meth:`~KernelBackend.batch_collision_free` — collision freedom of ``K``
  candidate scenes at once.

The contract is *semantic agreement with the scalar predicates*: the numpy
reference backend is bit-identical to them by construction, and every other
backend must agree within 1e-9 (booleans and index pairs exactly, away from
~1-ulp boundary coincidences).  The backend-parametrized differential
gauntlet (``tests/test_geometry_kernel.py``, ``tests/test_geometry_backends.py``
and fuzz oracle B) holds every registered backend to that contract.

Backends declare availability through :meth:`KernelBackend.is_available`, so
optional compute stacks (numba, jax) register unconditionally and are simply
reported unavailable — never imported — when the dependency is absent.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np


class BackendUnavailableError(RuntimeError):
    """The requested backend's compute dependency is not importable."""


class KernelBackend:
    """Base class for geometry-kernel compute backends.

    Subclasses set :attr:`name` (the registry key), :attr:`priority` (higher
    wins in the ``"auto"`` capability fallback order) and implement the three
    array predicates; :meth:`objects_contained` has a shared default built on
    the region's batched point containment, which itself routes polygon
    membership back through the backend via :func:`repro.geometry.kernel.points_in_polygon`
    dispatch when the backend is globally active.
    """

    #: Registry key; subclasses must override.
    name: str = "abstract"

    #: Capability fallback order for ``get_backend("auto")``: the available
    #: backend with the highest priority wins (ties break alphabetically).
    priority: int = 0

    @classmethod
    def is_available(cls) -> bool:
        """Whether this backend's compute dependency is importable *now*."""
        return True

    # -- the protocol ------------------------------------------------------------

    def points_in_polygon(self, vertices: Any, points: Any) -> np.ndarray:
        """Membership of each point in one simple polygon (boundary = inside)."""
        raise NotImplementedError

    def objects_contained(self, region: Any, corners: Any) -> np.ndarray:
        """Containment of ``N`` objects (``(N, 4, 2)`` corners) in *region*.

        Default implementation: the corners-plus-edge-midpoints test through
        the region's batched point containment — exactly
        ``Region.contains_object`` semantics.  Backends whose acceleration
        lives below the region layer (numba's polygon kernels) inherit this.
        """
        from ..kernel import contains_points, object_test_points

        corners = np.asarray(corners, dtype=float)
        n = corners.shape[0]
        if n == 0:
            return np.zeros(0, dtype=bool)
        test_points = object_test_points(corners).reshape(-1, 2)
        inside = contains_points(region, test_points).reshape(n, 8)
        return inside.all(axis=1)

    def pairwise_collisions(
        self,
        corners: Any,
        collidable: Optional[np.ndarray] = None,
        grid_threshold: Optional[int] = None,
    ) -> np.ndarray:
        """All overlapping pairs as ``(M, 2)`` indices, lexicographic ``i < j``."""
        raise NotImplementedError

    def batch_collision_free(
        self, corners: Any, collidable: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Collision-freedom of ``K`` candidate scenes (``(K, N, 4, 2)`` corners)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r} priority={self.priority}>"


__all__ = ["BackendUnavailableError", "KernelBackend"]

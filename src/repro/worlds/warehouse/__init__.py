"""The indoor warehouse world (``import warehouse``).

The ROADMAP's indoor world: four shelving aisles joined by cross-aisles,
navigated by picking robots among pallets, crates and workers.  The rack
footprints are excluded from the navigable floor, so workspace containment
produces the tight-clearance feasibility pressure the pruning and direct-
synthesis strategies are built for; the ``aisleDirection`` field gives the
same orientation-pruning structure as the road world's traffic direction.

Registered purely as a :class:`~repro.worlds.profile.WorldProfile` plugin
(:mod:`repro.worlds.warehouse.profile`) — no engine subsystem knows this
world by name.
"""

from .layout import WarehouseLayout, default_layout
from .objects import Crate, Pallet, Robot, Shelf, WarehouseObject, Worker
from .interface import scenic_namespace, default_workspace

__all__ = [
    "WarehouseLayout",
    "default_layout",
    "WarehouseObject",
    "Robot",
    "Pallet",
    "Crate",
    "Shelf",
    "Worker",
    "scenic_namespace",
    "default_workspace",
]

"""The namespace a Scenic program sees after ``import warehouse``."""

from __future__ import annotations

from typing import Any, Dict

from ...core.workspace import Workspace
from .layout import default_layout
from .objects import Crate, Pallet, Robot, Shelf, WarehouseObject, Worker


def scenic_namespace() -> Dict[str, Any]:
    layout = default_layout()
    return {
        "WarehouseObject": WarehouseObject,
        "Robot": Robot,
        "Pallet": Pallet,
        "Crate": Crate,
        "Shelf": Shelf,
        "Worker": Worker,
        "floor": layout.floor,
        "aisle": layout.aisle,
        "crossAisle": layout.cross_aisle,
        "racks": layout.racks,
        "aisleDirection": layout.aisle_direction,
    }


def default_workspace() -> Workspace:
    return default_layout().workspace


__all__ = ["scenic_namespace", "default_workspace"]

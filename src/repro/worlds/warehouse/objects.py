"""Object classes for the warehouse world.

Footprints are typical for an automated warehouse: a compact mobile robot,
Euro-pallet-sized pallets, loose crates, free-standing shelf units, and
human workers.  By default every object lands at a uniformly random point
on the navigable floor, facing along the aisle there (plus an
``aisleDeviation``, default 0) — the same field-aligned idiom as the road
world's cars, so orientation-based pruning applies unchanged.
"""

from __future__ import annotations

import math

from ...core.distributions import Range
from ...core.lazy import DelayedArgument
from ...core.objects import Object
from .layout import default_layout


def _default_position():
    return default_layout().floor.uniform_point_distribution()


def _default_heading():
    aisle_direction = default_layout().aisle_direction
    return DelayedArgument(
        {"position", "aisleDeviation"},
        lambda obj: aisle_direction.at(obj.position) + obj.aisleDeviation,
    )


class WarehouseObject(Object):
    """Base class: uniform placement on the floor, aisle-aligned heading."""

    _scenic_properties = {
        "position": _default_position,
        "heading": _default_heading,
        "aisleDeviation": lambda: 0.0,
    }


class Robot(WarehouseObject):
    """A mobile picking robot with a forward-facing sensor cone."""

    _scenic_properties = {
        "width": lambda: 0.6,
        "height": lambda: 0.8,
        "viewAngle": lambda: math.radians(120.0),
        "visibleDistance": lambda: 20.0,
        "viewDistance": lambda: DelayedArgument(
            {"visibleDistance"}, lambda obj: obj.visibleDistance
        ),
    }


class Pallet(WarehouseObject):
    """A loaded pallet — nearly fills an aisle when placed across it."""

    _scenic_properties = {
        "width": lambda: 1.2,
        "height": lambda: 0.8,
    }


class Crate(WarehouseObject):
    """A loose crate of slightly variable size."""

    _scenic_properties = {
        "width": lambda: Range(0.35, 0.6),
        "height": lambda: Range(0.35, 0.6),
    }


class Shelf(WarehouseObject):
    """A free-standing shelf unit, long axis along the aisle."""

    _scenic_properties = {
        "width": lambda: 0.5,
        "height": lambda: 1.8,
    }


class Worker(WarehouseObject):
    """A human picker on foot."""

    _scenic_properties = {
        "width": lambda: 0.5,
        "height": lambda: 0.5,
    }


__all__ = ["WarehouseObject", "Robot", "Pallet", "Crate", "Shelf", "Worker"]

"""The registered :class:`WorldProfile` for the warehouse world."""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ...core.workspace import Workspace
from ..profile import AnalysisProfile, CorpusProfile, EgoSpec, FuzzProfile, WorldProfile


def _load() -> Tuple[Dict[str, Any], Optional[Workspace]]:
    from .interface import default_workspace, scenic_namespace

    return scenic_namespace(), default_workspace()


def _class_facts(
    python_class: type, static_interval: Callable[[str], Any]
) -> Optional[Dict[str, Any]]:
    """Field alignment for warehouse classes.

    Every :class:`WarehouseObject` defaults its heading to the aisle
    direction plus ``aisleDeviation``, so the deviation bound is the static
    interval of that property (0 by default).  Dimensions are plain static
    defaults the analyzer already derives; no patch needed.
    """
    from ...analysis.intervals import Interval
    from .objects import WarehouseObject

    if not (isinstance(python_class, type) and issubclass(python_class, WarehouseObject)):
        return None
    deviation = static_interval("aisleDeviation")
    return {"deviation": deviation if deviation is not None else Interval.point(0.0)}


PROFILE = WorldProfile(
    name="warehouse",
    description="indoor rack warehouse with aisles, robots, pallets and workers",
    loader=_load,
    fuzz=FuzzProfile(
        weight=3,
        # A 2 m aisle leaves ~0.8 m of slack around a pallet, so offsets
        # and gaps stay small; forward offsets may span a few rack bays.
        magnitudes={
            "size": (0.3, 0.9),
            "by": (0.4, 2.2),
            "span": (-1.2, 1.2),
            "forward": (0.8, 4.5),
            "beyond": (0.5, 2.5),
            "lateral": (-0.7, 0.7),
        },
        ego=EgoSpec(classes=("Robot",), allow_deviation=True),
        class_bases=("Crate", "Pallet"),
        object_pool=("Pallet", "Crate", "Robot", "Shelf", "Worker"),
        generous_distance=(18.0, 32.0),
        min_distance_scale=0.5,
        unit=0.6,
        # The robot's 120-degree sensor cone makes beside/behind placements
        # near-infeasible under the default requireVisible; keep a fraction
        # visibility-constrained, relax the rest (same policy as the road
        # world).
        relax_visibility=True,
        orientation_field="aisleDirection",
        deviation_property="aisleDeviation",
        on_regions=("floor", "aisle"),
        supports_visible=True,
        # Uniform boxes mostly land on racks or outside the building;
        # place relative to the ego instead.
        avoid_absolute=True,
        following_distance=(2.0, 6.0),
    ),
    analysis=AnalysisProfile(
        class_facts=_class_facts,
        deviation_properties=("aisleDeviation",),
    ),
    corpus=CorpusProfile(
        feature_tokens=(
            ("on floor", "on"),
            ("on aisle", "on"),
            ("aisleDeviation", "aisleDeviation"),
        ),
    ),
)

__all__ = ["PROFILE"]

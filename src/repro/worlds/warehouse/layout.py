"""The warehouse floor plan: aisles, cross-aisles, racks, and the workspace.

The indoor world the ROADMAP asks for: a rack warehouse whose navigable
floor is four parallel picking aisles joined by a cross-aisle at each end.
The shelving racks between the aisles are *not* part of the floor region,
so workspace containment alone creates the tight-clearance pressure the
pruning strategies exist for: a pallet in a 2 m aisle has roughly 0.8 m of
lateral slack, and placements straddling a rack are rejected outright.

Like the road map, the floor carries a preferred-orientation vector field
(``aisleDirection``): straight down the aisle inside the racks, along the
building in the cross-aisles.  Objects default their heading to the field
plus an ``aisleDeviation``, which is the structure orientation-based
pruning (Sec. 5.2) exploits.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ...core.regions import PolygonalRegion
from ...core.vectorfields import PolygonalVectorField
from ...core.vectors import Vector
from ...core.workspace import Workspace
from ...geometry.polygon import Polygon

#: Floor-plan constants (metres).  Four 2 m aisles separated by 1.4 m
#: racks, 14 m long, with a 2.5 m cross-aisle across each end.
AISLE_COUNT = 4
AISLE_WIDTH = 2.0
RACK_WIDTH = 1.4
AISLE_LENGTH = 14.0
CROSS_AISLE_DEPTH = 2.5

#: Overall building half-extents derived from the constants above.
BUILDING_HALF_WIDTH = (AISLE_COUNT * AISLE_WIDTH + (AISLE_COUNT - 1) * RACK_WIDTH) / 2.0
BUILDING_HALF_LENGTH = AISLE_LENGTH / 2.0 + CROSS_AISLE_DEPTH


def aisle_centers() -> List[float]:
    """The x coordinate of each aisle's centreline, left to right."""
    pitch = AISLE_WIDTH + RACK_WIDTH
    first = -BUILDING_HALF_WIDTH + AISLE_WIDTH / 2.0
    return [first + index * pitch for index in range(AISLE_COUNT)]


class WarehouseLayout:
    """The warehouse floor: regions, the aisle-direction field, workspace."""

    def __init__(self, name: str = "warehouse"):
        self.name = name
        aisle_polygons = [
            Polygon.rectangle(Vector(x, 0.0), AISLE_WIDTH, AISLE_LENGTH)
            for x in aisle_centers()
        ]
        cross_y = AISLE_LENGTH / 2.0 + CROSS_AISLE_DEPTH / 2.0
        cross_polygons = [
            Polygon.rectangle(Vector(0.0, sign * cross_y), 2 * BUILDING_HALF_WIDTH, CROSS_AISLE_DEPTH)
            for sign in (1.0, -1.0)
        ]
        rack_pitch = AISLE_WIDTH + RACK_WIDTH
        rack_first = -BUILDING_HALF_WIDTH + AISLE_WIDTH + RACK_WIDTH / 2.0
        rack_polygons = [
            Polygon.rectangle(
                Vector(rack_first + index * rack_pitch, 0.0), RACK_WIDTH, AISLE_LENGTH
            )
            for index in range(AISLE_COUNT - 1)
        ]
        # Aisles flow along +y (heading 0); cross-aisles along +x.
        cells: List[Tuple[Polygon, float]] = [
            (polygon, 0.0) for polygon in aisle_polygons
        ] + [(polygon, -math.pi / 2.0) for polygon in cross_polygons]
        self.aisle_direction = PolygonalVectorField("aisleDirection", cells)
        self.aisle = PolygonalRegion(
            aisle_polygons, name="aisle", orientation=self.aisle_direction
        )
        self.cross_aisle = PolygonalRegion(
            cross_polygons, name="crossAisle", orientation=self.aisle_direction
        )
        self.floor = PolygonalRegion(
            aisle_polygons + cross_polygons, name="floor", orientation=self.aisle_direction
        )
        #: The shelving footprints — deliberately NOT part of the floor, so
        #: they act as obstacles through workspace containment.
        self.racks = PolygonalRegion(rack_polygons, name="racks")
        self.workspace = Workspace(self.floor, name="warehouse-workspace")

    def __repr__(self) -> str:
        return f"WarehouseLayout({self.name!r}, {AISLE_COUNT} aisles)"


_DEFAULT_LAYOUT: Optional[WarehouseLayout] = None


def default_layout() -> WarehouseLayout:
    """The shared warehouse floor plan (built once, deterministic)."""
    global _DEFAULT_LAYOUT
    if _DEFAULT_LAYOUT is None:
        _DEFAULT_LAYOUT = WarehouseLayout()
    return _DEFAULT_LAYOUT


__all__ = [
    "AISLE_COUNT",
    "AISLE_LENGTH",
    "AISLE_WIDTH",
    "BUILDING_HALF_LENGTH",
    "BUILDING_HALF_WIDTH",
    "CROSS_AISLE_DEPTH",
    "RACK_WIDTH",
    "WarehouseLayout",
    "aisle_centers",
    "default_layout",
]

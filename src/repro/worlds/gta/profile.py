"""The registered :class:`WorldProfile` for the GTA road world (``gtaLib``)."""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ...core.workspace import Workspace
from ..profile import AnalysisProfile, CorpusProfile, EgoSpec, FuzzProfile, WorldProfile


def _load() -> Tuple[Dict[str, Any], Optional[Workspace]]:
    from .interface import default_workspace, scenic_namespace

    return scenic_namespace(), default_workspace()


def _class_facts(
    python_class: type, static_interval: Callable[[str], Any]
) -> Optional[Dict[str, Any]]:
    """Field alignment and model-table dimensions for the GTA car classes.

    Cars default their heading to ``roadDirection`` plus ``roadDeviation``
    and their footprint to a uniformly random :class:`CarModel`, so the
    sound dimension bounds are the min/max over the model table.
    """
    from ...analysis.intervals import Interval
    from .carlib import Car, CarModel

    if not (isinstance(python_class, type) and issubclass(python_class, Car)):
        return None
    deviation = static_interval("roadDeviation")
    widths = [model.width for model in CarModel.models.values()]
    heights = [model.height for model in CarModel.models.values()]
    return {
        "deviation": deviation if deviation is not None else Interval.point(0.0),
        "width": Interval(min(widths), max(widths)),
        "height": Interval(min(heights), max(heights)),
    }


PROFILE = WorldProfile(
    name="gtaLib",
    aliases=("gta",),
    description="procedural road network standing in for Grand Theft Auto V",
    loader=_load,
    fuzz=FuzzProfile(
        weight=4,
        # Placements must stay near the ego to remain feasible on the
        # road map, hence the tight spans and the forward bias.
        magnitudes={
            "size": (1.0, 2.4),
            "by": (0.5, 6.0),
            "span": (-3.0, 3.0),
            "forward": (4.0, 22.0),
            "beyond": (2.0, 8.0),
            "lateral": (-2.0, 2.0),
        },
        ego=EgoSpec(classes=("Car", "EgoCar"), visible_distance=60.0, allow_deviation=True),
        class_bases=("Car",),
        object_pool=("Car", "Car", "Car"),
        generous_distance=(60.0, 120.0),
        # Cars have an 80-degree view cone and requireVisible defaults to
        # True; placements beside/behind the ego are near-infeasible
        # without lifting it.  Keep a fraction visibility-constrained
        # (like the paper's examples), relax the rest.
        relax_visibility=True,
        orientation_field="roadDirection",
        deviation_property="roadDeviation",
        on_regions=("road",),
        supports_visible=True,
        # Absolute placement is feasibility-hostile on the road map;
        # place relative to the ego instead.
        avoid_absolute=True,
    ),
    analysis=AnalysisProfile(
        class_facts=_class_facts,
        deviation_properties=("roadDeviation",),
        model_symbols=("CarModel",),
    ),
    corpus=CorpusProfile(
        feature_tokens=(
            ("on road", "on"),
            ("roadDeviation", "roadDeviation"),
        ),
    ),
)

__all__ = ["PROFILE"]

"""Weather and time-of-day parameters for the GTA-like world.

GTA V exposes 14 discrete weather types and a time of day; the case study
puts distributions on both through ``param`` statements.  This module
provides the weather vocabulary, a realistic default prior (rain is less
likely than shine, matching the observation in Sec. 6.2), and the visibility
degradation factors used by the synthetic renderer.
"""

from __future__ import annotations

from typing import Dict

from ...core.distributions import Discrete, Range

#: The 14 weather types supported by GTA V.
WEATHER_TYPES = (
    "NEUTRAL",
    "CLEAR",
    "EXTRASUNNY",
    "CLOUDS",
    "OVERCAST",
    "RAIN",
    "THUNDER",
    "CLEARING",
    "SMOG",
    "FOGGY",
    "XMAS",
    "SNOWLIGHT",
    "BLIZZARD",
    "SNOW",
)

#: Default prior over weather: clear conditions dominate, precipitation is rare.
_DEFAULT_WEATHER_WEIGHTS: Dict[str, float] = {
    "NEUTRAL": 5.0,
    "CLEAR": 20.0,
    "EXTRASUNNY": 20.0,
    "CLOUDS": 15.0,
    "OVERCAST": 10.0,
    "RAIN": 5.0,
    "THUNDER": 3.0,
    "CLEARING": 5.0,
    "SMOG": 5.0,
    "FOGGY": 4.0,
    "XMAS": 2.0,
    "SNOWLIGHT": 3.0,
    "BLIZZARD": 1.0,
    "SNOW": 2.0,
}

#: How much each weather type degrades image quality in the synthetic
#: renderer (0 = no degradation, 1 = maximal).  Used by the perception
#: substrate to reproduce the "worse on rainy nights" effect of Sec. 6.2.
WEATHER_DIFFICULTY: Dict[str, float] = {
    "NEUTRAL": 0.05,
    "CLEAR": 0.0,
    "EXTRASUNNY": 0.0,
    "CLOUDS": 0.1,
    "OVERCAST": 0.2,
    "RAIN": 0.55,
    "THUNDER": 0.65,
    "CLEARING": 0.15,
    "SMOG": 0.35,
    "FOGGY": 0.5,
    "XMAS": 0.3,
    "SNOWLIGHT": 0.35,
    "BLIZZARD": 0.75,
    "SNOW": 0.45,
}


def default_weather_distribution() -> Discrete:
    """The default prior over weather types."""
    return Discrete(dict(_DEFAULT_WEATHER_WEIGHTS))


def default_time_distribution() -> Range:
    """Time of day in minutes since midnight, uniform over the whole day."""
    return Range(0.0, 24 * 60.0)


def time_difficulty(minutes_since_midnight: float) -> float:
    """Image-quality degradation due to darkness (0 at noon, ~1 at midnight)."""
    hours = (minutes_since_midnight / 60.0) % 24.0
    distance_from_noon = abs(hours - 12.0) / 12.0
    return min(1.0, max(0.0, distance_from_noon ** 1.5))


def weather_difficulty(weather: str) -> float:
    """Image-quality degradation due to the weather type."""
    return WEATHER_DIFFICULTY.get(weather, 0.2)


__all__ = [
    "WEATHER_TYPES",
    "WEATHER_DIFFICULTY",
    "default_weather_distribution",
    "default_time_distribution",
    "time_difficulty",
    "weather_difficulty",
]

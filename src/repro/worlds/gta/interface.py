"""The namespace a Scenic program sees after ``import gtaLib``.

Also provides the platoon helper functions of Appendix A.10/A.11
(``createPlatoonAt``, ``carAheadOfCar``) so gallery scenarios can use them
directly, mirroring the paper's library.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ...core import specifiers as spec
from ...core.distributions import resample
from ...core.objects import OrientedPoint
from ...core.operators import follow_field, front_of, oriented_point_relative_to
from ...core.vectors import Vector
from ...core.workspace import Workspace
from .carlib import Car, CarColor, CarModel, EgoCar
from .roads import RoadMap, default_map
from .weather import default_time_distribution, default_weather_distribution


def car_ahead_of_car(car: Car, gap: Any, offsetX: Any = 0, wiggle: Any = 0) -> Car:
    """Place a new car *gap* metres ahead of *car* (Appendix A.11, Fig. 20)."""
    road_direction = default_map().road_direction
    front = front_of(car)
    pos = oriented_point_relative_to(Vector_from(offsetX, gap), front)
    heading_spec = spec.Facing(_wiggled(road_direction, wiggle))
    return Car(spec.AheadOf(pos), heading_spec)


def create_platoon_at(car: Car, numCars: int, model: Any = None, dist: Any = None,
                      shift: Any = None, wiggle: Any = 0) -> list:
    """Create a platoon of cars behind *car* (Appendix A.10, Fig. 18)."""
    from ...core.distributions import Range

    if dist is None:
        dist = Range(2, 8)
    if shift is None:
        shift = Range(-0.5, 0.5)
    road_direction = default_map().road_direction
    cars = [car]
    last_car = car
    for _ in range(numCars - 1):
        center = follow_field(road_direction, _position_of(front_of(last_car)), resample(dist))
        pos = OrientedPoint(
            spec.RightOf(center, resample(shift)),
            spec.Facing(_wiggled(road_direction, wiggle)),
        )
        chosen_model = car.properties.get("model") if model is None else resample(model)
        last_car = Car(spec.AheadOf(pos), spec.With("model", chosen_model))
        cars.append(last_car)
    return cars


def _wiggled(field, wiggle):
    """A heading value: the field's direction at the object plus a wiggle offset."""
    from ...core.lazy import DelayedArgument

    return DelayedArgument(
        {"position"},
        lambda obj: field.at(obj.position) + resample(wiggle),
    )


def _position_of(value):
    from ...core.operators import position_of

    return position_of(value)


def Vector_from(x, y):
    """Build a possibly-random vector from scalars (helper for the library)."""
    from ...core.distributions import make_random_vector

    return make_random_vector(x, y)


def scenic_namespace(road_map: Optional[RoadMap] = None) -> Dict[str, Any]:
    """All names exported to Scenic programs importing ``gtaLib``."""
    world = road_map if road_map is not None else default_map()
    return {
        "road": world.road,
        "roadSurface": world.road_surface,
        "curb": world.curb,
        "roadDirection": world.road_direction,
        "Car": Car,
        "EgoCar": EgoCar,
        "CarModel": CarModel,
        "CarColor": CarColor,
        "createPlatoonAt": create_platoon_at,
        "carAheadOfCar": car_ahead_of_car,
        "defaultWeather": default_weather_distribution,
        "defaultTime": default_time_distribution,
    }


def default_workspace(road_map: Optional[RoadMap] = None) -> Workspace:
    world = road_map if road_map is not None else default_map()
    return world.workspace


__all__ = [
    "scenic_namespace",
    "default_workspace",
    "create_platoon_at",
    "car_ahead_of_car",
]

"""Procedural generation of the synthetic road network.

The map is a Manhattan-style grid of straight roads.  Each road is split
lengthwise into two carriageways (right-hand traffic) and along its length
into short convex rectangular *cells*; each cell carries the local traffic
direction.  This mirrors the structure the paper extracts from the GTA V
schematic map: polygons over which the ``roadDirection`` vector field is
constant, which is exactly what the orientation/size pruning algorithms of
Sec. 5.2 exploit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ...core.vectors import Vector
from ...geometry.polygon import Polygon


@dataclass
class RoadCell:
    """One convex piece of carriageway with a constant traffic direction."""

    polygon: Polygon
    heading: float
    road_name: str


@dataclass
class RoadSpec:
    """A straight road: a centreline segment plus a width."""

    name: str
    start: Vector
    end: Vector
    width: float = 20.0

    @property
    def heading(self) -> float:
        return (self.end - self.start).angle()

    @property
    def length(self) -> float:
        return self.start.distance_to(self.end)


@dataclass
class GeneratedMap:
    """The output of map generation, consumed by :mod:`repro.worlds.gta.roads`."""

    cells: List[RoadCell] = field(default_factory=list)
    curb_chains: List[List[Vector]] = field(default_factory=list)
    road_polygons: List[Polygon] = field(default_factory=list)
    extent: Tuple[float, float, float, float] = (0.0, 0.0, 0.0, 0.0)


def default_road_specs(size: float = 400.0, spacing: float = 200.0, width: float = 20.0) -> List[RoadSpec]:
    """A small city grid: horizontal and vertical roads every *spacing* metres."""
    specs: List[RoadSpec] = []
    positions = [spacing / 2 + index * spacing for index in range(int(size // spacing))]
    for index, y in enumerate(positions):
        specs.append(RoadSpec(f"ew{index}", Vector(0.0, y), Vector(size, y), width))
    for index, x in enumerate(positions):
        specs.append(RoadSpec(f"ns{index}", Vector(x, 0.0), Vector(x, size), width))
    return specs


def generate_map(
    specs: Sequence[RoadSpec] | None = None,
    cell_length: float = 20.0,
    size: float = 400.0,
) -> GeneratedMap:
    """Build road cells, curb polylines and road polygons from road specs."""
    if specs is None:
        specs = default_road_specs(size=size)
    generated = GeneratedMap()
    min_x = min_y = math.inf
    max_x = max_y = -math.inf

    for spec in specs:
        direction = (spec.end - spec.start)
        length = direction.norm()
        if length <= 0:
            continue
        unit = direction / length
        heading = direction.angle()
        # Right-hand traffic: looking along the road, the right carriageway
        # goes forward, the left one backward.
        right_normal = Vector(unit.y, -unit.x)  # 90° clockwise from direction
        half_width = spec.width / 2.0
        quarter_width = spec.width / 4.0

        cell_count = max(1, int(math.ceil(length / cell_length)))
        for index in range(cell_count):
            a = spec.start + unit * (index * length / cell_count)
            b = spec.start + unit * ((index + 1) * length / cell_count)
            # Forward carriageway (right of the centreline).
            forward_centre_a = a + right_normal * quarter_width
            forward_centre_b = b + right_normal * quarter_width
            forward = _strip_polygon(forward_centre_a, forward_centre_b, right_normal, quarter_width)
            generated.cells.append(RoadCell(forward, heading, spec.name))
            # Backward carriageway (left of the centreline), opposite direction.
            backward_centre_a = a - right_normal * quarter_width
            backward_centre_b = b - right_normal * quarter_width
            backward = _strip_polygon(backward_centre_a, backward_centre_b, right_normal, quarter_width)
            generated.cells.append(
                RoadCell(backward, _flip_heading(heading), spec.name)
            )

        # Whole-road polygon (for the workspace and containment checks).
        road_polygon = _strip_polygon(spec.start, spec.end, right_normal, half_width)
        generated.road_polygons.append(road_polygon)

        # Curbs run along both edges of the road, oriented with the traffic on
        # their side of the road.
        right_edge = [spec.start + right_normal * half_width, spec.end + right_normal * half_width]
        left_edge = [spec.end - right_normal * half_width, spec.start - right_normal * half_width]
        generated.curb_chains.append(right_edge)
        generated.curb_chains.append(left_edge)

        for point in (spec.start, spec.end):
            min_x = min(min_x, point.x - half_width)
            max_x = max(max_x, point.x + half_width)
            min_y = min(min_y, point.y - half_width)
            max_y = max(max_y, point.y + half_width)

    generated.extent = (min_x, min_y, max_x, max_y)
    return generated


def _strip_polygon(a: Vector, b: Vector, normal: Vector, half_width: float) -> Polygon:
    """A rectangle of the given half-width around the segment ``a``–``b``."""
    offset = normal * half_width
    return Polygon([a + offset, b + offset, b - offset, a - offset])


def _flip_heading(heading: float) -> float:
    flipped = heading + math.pi
    if flipped > math.pi:
        flipped -= 2 * math.pi
    return flipped


__all__ = ["RoadSpec", "RoadCell", "GeneratedMap", "default_road_specs", "generate_map"]

"""Road map assembly: regions, vector fields and the workspace for ``gtaLib``."""

from __future__ import annotations

from typing import List, Optional, Sequence

from ...core.regions import PolygonalRegion, PolylineRegion
from ...core.vectorfields import PolygonalVectorField, PolylineVectorField
from ...core.workspace import Workspace
from .map_generation import GeneratedMap, RoadSpec, generate_map


class RoadMap:
    """The road world: road/curb regions, the traffic-direction field, workspace.

    ``road`` is the union of the per-carriageway cells (so its preferred
    orientation is the traffic direction); ``road_surface`` is the union of
    whole-road polygons used as the workspace; ``curb`` is a polyline region
    along the road edges, oriented along the road.
    """

    def __init__(self, generated: GeneratedMap, name: str = "gta"):
        self.name = name
        self.generated = generated
        cells = [(cell.polygon, cell.heading) for cell in generated.cells]
        self.road_direction = PolygonalVectorField("roadDirection", cells)
        self.road = PolygonalRegion(
            [cell.polygon for cell in generated.cells],
            name="road",
            orientation=self.road_direction,
        )
        self.road_surface = PolygonalRegion(
            generated.road_polygons, name="roadSurface", orientation=self.road_direction
        )
        self.curb = PolylineRegion(generated.curb_chains, name="curb")
        self.curb.orientation = PolylineVectorField("curbDirection", self.curb)
        self.workspace = Workspace(self.road_surface, name="gta-workspace")

    @classmethod
    def generate(
        cls,
        specs: Optional[Sequence[RoadSpec]] = None,
        cell_length: float = 20.0,
        size: float = 400.0,
        name: str = "gta",
    ) -> "RoadMap":
        return cls(generate_map(specs, cell_length=cell_length, size=size), name=name)

    def cell_polygons(self) -> List:
        return [cell.polygon for cell in self.generated.cells]

    def __repr__(self) -> str:
        return f"RoadMap({self.name!r}, {len(self.generated.cells)} cells)"


_DEFAULT_MAP: Optional[RoadMap] = None


def default_map() -> RoadMap:
    """The shared default road network (generated once, deterministic)."""
    global _DEFAULT_MAP
    if _DEFAULT_MAP is None:
        _DEFAULT_MAP = RoadMap.generate()
    return _DEFAULT_MAP


__all__ = ["RoadMap", "default_map"]

"""Car models, colours and the ``Car`` / ``EgoCar`` classes of ``gtaLib``.

Follows the class definition in Appendix A.1 of the paper: a ``Car``'s
default position is a uniformly random point on the road, its default
heading is the road direction plus a ``roadDeviation`` (default 0), its size
comes from its (random) model, it has an 80° view cone with a 30 m view
distance, and its colour follows real-world colour statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ...core.distributions import Discrete, Options
from ...core.lazy import DelayedArgument
from ...core.objects import Object
from .roads import default_map


@dataclass(frozen=True)
class CarModel:
    """A car model with its bounding-box dimensions (metres).

    ``CarModel.models`` maps the 13 model names used in the case study to
    instances (dimensions are typical values for the corresponding vehicle
    segments; GTA V's exact meshes are not available, and only width/height
    matter to Scenic).
    """

    name: str
    width: float
    height: float

    @classmethod
    def default_model(cls) -> Options:
        """Uniform distribution over the 13 models (as in the paper)."""
        return Options(list(cls.models.values()))

    def __repr__(self) -> str:
        return f"CarModel({self.name!r}, {self.width}x{self.height})"


# Kept for compatibility with the paper's snippets (camelCase).
CarModel.defaultModel = CarModel.default_model


_MODEL_SPECS: List[Tuple[str, float, float]] = [
    ("BLISTA", 1.85, 4.10),      # compact hatchback
    ("BUS", 2.55, 11.0),         # city bus
    ("NINEF", 1.95, 4.50),       # sports coupe
    ("ASEA", 1.80, 4.40),        # sedan
    ("BALLER", 2.00, 4.90),      # luxury SUV
    ("BISON", 2.05, 5.30),       # pickup truck
    ("BUFFALO", 1.95, 4.80),     # muscle sedan
    ("BOBCATXL", 2.10, 5.40),    # utility pickup
    ("DOMINATOR", 1.90, 4.70),   # muscle car
    ("GRANGER", 2.10, 5.60),     # full-size SUV
    ("JACKAL", 1.90, 4.60),      # executive coupe
    ("ORACLE", 1.95, 4.90),      # executive sedan
    ("PATRIOT", 2.20, 5.10),     # off-road SUV
]

CarModel.models = {name: CarModel(name, width, height) for name, width, height in _MODEL_SPECS}


class CarColor:
    """RGB car colours with the real-world popularity prior of [8] (DuPont 2012)."""

    #: (colour name, rgb in [0, 1], weight %) following the 2012 DuPont report.
    POPULARITY: List[Tuple[str, Tuple[float, float, float], float]] = [
        ("white", (0.95, 0.95, 0.95), 23.0),
        ("black", (0.05, 0.05, 0.05), 21.0),
        ("silver", (0.75, 0.75, 0.78), 16.0),
        ("gray", (0.50, 0.50, 0.52), 15.0),
        ("red", (0.75, 0.10, 0.10), 10.0),
        ("blue", (0.10, 0.20, 0.65), 7.0),
        ("brown", (0.45, 0.30, 0.15), 5.0),
        ("green", (0.10, 0.45, 0.15), 2.0),
        ("yellow", (0.90, 0.80, 0.10), 1.0),
    ]

    @classmethod
    def default_color(cls) -> Discrete:
        """Weighted distribution over RGB triples matching real-world statistics."""
        return Discrete({rgb: weight for _name, rgb, weight in cls.POPULARITY})

    defaultColor = default_color

    @staticmethod
    def byte_to_real(rgb_bytes) -> Tuple[float, float, float]:
        """Convert a ``[0, 255]`` RGB triple to the ``[0, 1]`` range."""
        red, green, blue = rgb_bytes
        return (red / 255.0, green / 255.0, blue / 255.0)

    byteToReal = byte_to_real


def _default_position():
    return default_map().road.uniform_point_distribution()


def _default_heading():
    road_direction = default_map().road_direction
    return DelayedArgument(
        {"position", "roadDeviation"},
        lambda obj: road_direction.at(obj.position) + obj.roadDeviation,
    )


class Car(Object):
    """A car on the road (Appendix A.1).

    By default it sits at a uniformly random point on the road, faces the
    traffic direction there (offset by ``roadDeviation``), and draws its
    dimensions from a random model and its colour from real-world statistics.
    """

    _scenic_properties = {
        "position": _default_position,
        "heading": _default_heading,
        "roadDeviation": lambda: 0.0,
        "model": lambda: CarModel.default_model(),
        "width": lambda: DelayedArgument({"model"}, lambda obj: obj.model.width),
        "height": lambda: DelayedArgument({"model"}, lambda obj: obj.model.height),
        "color": lambda: CarColor.default_color(),
        "viewAngle": lambda: math.radians(80.0),
        "visibleDistance": lambda: 30.0,
        "viewDistance": lambda: DelayedArgument(
            {"visibleDistance"}, lambda obj: obj.visibleDistance
        ),
    }


class EgoCar(Car):
    """The camera car: a fixed model, as in the paper's GTA V interface."""

    _scenic_properties = {
        "model": lambda: CarModel.models["ASEA"],
    }


__all__ = ["Car", "EgoCar", "CarModel", "CarColor"]

"""The GTA-like road world (``gtaLib``).

The paper's case study renders scenes in Grand Theft Auto V, whose map is
closed source; the authors reconstructed the road geometry from a schematic
bird's-eye view (Appendix D).  This reproduction instead *generates* a road
network procedurally (:mod:`repro.worlds.gta.map_generation`), which plays
exactly the same role: polygonal road cells carrying the prevailing traffic
direction, curb polylines, and a workspace.

The library exposes the same names the paper's ``gtaLib`` does: ``road``,
``curb``, ``roadDirection``, ``Car``, ``EgoCar``, ``CarModel``, ``CarColor``,
and the platoon helper functions used in Appendix A.
"""

from .roads import RoadMap, default_map
from .carlib import Car, EgoCar, CarModel, CarColor
from .interface import scenic_namespace, default_workspace

__all__ = [
    "RoadMap",
    "default_map",
    "Car",
    "EgoCar",
    "CarModel",
    "CarColor",
    "scenic_namespace",
    "default_workspace",
]

"""Simulator interface layer: exporting scenes to external tools.

The paper's workflow hands Scenic's output configurations to a simulator
through a thin interface layer (Sec. 1: "writing an interface layer
converting the configurations output by Scenic into the simulator's input
format").  This module provides two such exporters that need no external
dependencies:

* :func:`scene_to_json` — a stable JSON document with every object's class,
  position, heading, size and simple-typed properties, plus the global
  parameters; suitable as the input format of an external renderer or robot
  simulator.
* :func:`scene_to_svg` — a bird's-eye SVG drawing of the scene (objects as
  oriented rectangles, the ego highlighted, its view cone sketched), useful
  for quickly eyeballing generated scenes without a simulator at all.
"""

from __future__ import annotations

import json
import math
from typing import Iterable, Optional

from ..core.scene import Scene
from ..core.vectors import Vector


def scene_to_json(scene: Scene, indent: Optional[int] = 2) -> str:
    """Serialise *scene* to a JSON document (see :meth:`Scene.to_dict`)."""
    return json.dumps(scene.to_dict(), indent=indent, sort_keys=True)


def scenes_to_json_lines(scenes: Iterable[Scene]) -> str:
    """One JSON document per line (the common bulk-export format)."""
    return "\n".join(scene_to_json(scene, indent=None) for scene in scenes)


def _svg_polygon(points, fill: str, opacity: float = 1.0) -> str:
    coordinates = " ".join(f"{p.x:.2f},{p.y:.2f}" for p in points)
    return f'<polygon points="{coordinates}" fill="{fill}" fill-opacity="{opacity:.2f}" />'


def scene_to_svg(scene: Scene, scale: float = 4.0, margin: float = 10.0) -> str:
    """Render *scene* as a bird's-eye SVG image (y axis pointing up).

    The ego is drawn in red with its view cone, other objects in blue.  The
    drawing is fitted to the objects' bounding box plus *margin* metres.
    """
    positions = [Vector.from_any(obj.position) for obj in scene.objects]
    min_x = min(p.x for p in positions) - margin
    max_x = max(p.x for p in positions) + margin
    min_y = min(p.y for p in positions) - margin
    max_y = max(p.y for p in positions) + margin
    width = (max_x - min_x) * scale
    height = (max_y - min_y) * scale

    def to_svg(point: Vector) -> Vector:
        return Vector((point.x - min_x) * scale, (max_y - point.y) * scale)

    elements = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" height="{height:.0f}" '
        f'viewBox="0 0 {width:.2f} {height:.2f}">',
        f'<rect width="{width:.2f}" height="{height:.2f}" fill="#d9d9d9" />',
    ]

    # Ego view cone (a filled triangle approximating the sector).
    ego = scene.ego
    view_distance = float(getattr(ego, "viewDistance", 50.0))
    view_angle = float(getattr(ego, "viewAngle", math.tau))
    if view_angle < math.tau - 1e-9:
        origin = Vector.from_any(ego.position)
        heading = float(ego.heading)
        left = origin.offset_rotated(heading + view_angle / 2, Vector(0, view_distance))
        right = origin.offset_rotated(heading - view_angle / 2, Vector(0, view_distance))
        elements.append(
            _svg_polygon([to_svg(origin), to_svg(left), to_svg(right)], "#ffd27f", opacity=0.5)
        )

    for scenic_object in scene.objects:
        corners = [to_svg(corner) for corner in scenic_object.corners]
        color = "#d62728" if scenic_object is scene.ego else "#1f77b4"
        elements.append(_svg_polygon(corners, color, opacity=0.9))

    elements.append("</svg>")
    return "\n".join(elements)


def save_scene_svg(scene: Scene, path) -> None:
    """Write :func:`scene_to_svg` output to *path*."""
    with open(path, "w") as handle:
        handle.write(scene_to_svg(scene))


__all__ = ["scene_to_json", "scenes_to_json_lines", "scene_to_svg", "save_scene_svg"]

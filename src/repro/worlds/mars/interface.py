"""The namespace a Scenic program sees after ``import mars``."""

from __future__ import annotations

from typing import Any, Dict

from ...core.workspace import Workspace
from .objects import BigRock, Goal, MarsObject, Pipe, Rock, Rover
from .planner import GridPlanner
from .workspace import ground_region, mars_workspace


def scenic_namespace() -> Dict[str, Any]:
    return {
        "Rover": Rover,
        "Goal": Goal,
        "Rock": Rock,
        "BigRock": BigRock,
        "Pipe": Pipe,
        "MarsObject": MarsObject,
        "ground": ground_region(),
        "GridPlanner": GridPlanner,
    }


def default_workspace() -> Workspace:
    return mars_workspace()


__all__ = ["scenic_namespace", "default_workspace"]

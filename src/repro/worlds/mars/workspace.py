"""The Mars arena: a square patch of ground centred at the origin."""

from __future__ import annotations

from ...core.regions import RectangularRegion
from ...core.vectors import Vector
from ...core.workspace import Workspace

#: Half the side length of the square arena, in metres (a 5 m x 5 m patch,
#: matching the Webots rubble-field world used in the paper's Fig. 4/23).
GROUND_HALF_EXTENT = 2.5


def ground_region(half_extent: float = GROUND_HALF_EXTENT) -> RectangularRegion:
    """The ground plane objects may occupy."""
    return RectangularRegion(
        Vector(0.0, 0.0), 0.0, 2 * half_extent, 2 * half_extent, name="ground"
    )


def mars_workspace(half_extent: float = GROUND_HALF_EXTENT) -> Workspace:
    return Workspace(ground_region(half_extent), name="mars-workspace")


__all__ = ["ground_region", "mars_workspace", "GROUND_HALF_EXTENT"]

"""A grid-based motion planner for evaluating generated Mars workspaces.

The paper uses Scenic to generate "challenging cases for a planner to
solve": rubble fields with a bottleneck that forces the planner to consider
climbing over a rock (Sec. 3, Fig. 4).  Webots and the original planner are
not available, so this module provides the substrate the scenario exercises:
an occupancy-grid A* planner in which climbable obstacles (rocks) incur a
traversal cost and unclimbable ones (pipes) are impassable.  The examples
and tests use it to check that generated scenes really do exhibit the
intended structure (e.g. the direct route requires climbing).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...core.scene import Scene
from ...core.vectors import Vector
from .objects import Goal, Pipe, Rock, Rover
from .workspace import GROUND_HALF_EXTENT


@dataclass
class PlanResult:
    """The outcome of a planning query."""

    success: bool
    path: List[Vector]
    cost: float
    climbs: int

    @property
    def length(self) -> float:
        if len(self.path) < 2:
            return 0.0
        return sum(self.path[i].distance_to(self.path[i + 1]) for i in range(len(self.path) - 1))


class GridPlanner:
    """A* over an occupancy grid with climb costs.

    Cells covered by a pipe are impassable; cells covered by a rock cost
    ``climb_penalty`` extra to enter (modelling the slow, risky climb); free
    cells cost their Euclidean step length.
    """

    def __init__(self, scene: Scene, resolution: float = 0.1,
                 half_extent: float = GROUND_HALF_EXTENT, climb_penalty: float = 5.0,
                 clearance: float = 0.05):
        self.scene = scene
        self.resolution = resolution
        self.half_extent = half_extent
        self.climb_penalty = climb_penalty
        self.clearance = clearance
        self.size = int(round(2 * half_extent / resolution))
        self._blocked: Dict[Tuple[int, int], bool] = {}
        self._climb: Dict[Tuple[int, int], bool] = {}
        self._build_occupancy()

    # -- occupancy grid ----------------------------------------------------------

    def _build_occupancy(self) -> None:
        obstacles = []
        for scenic_object in self.scene.objects:
            if isinstance(scenic_object, Pipe):
                obstacles.append((scenic_object, True))
            elif isinstance(scenic_object, Rock):
                obstacles.append((scenic_object, False))
        for row in range(self.size):
            for column in range(self.size):
                center = self._cell_center(row, column)
                for obstacle, impassable in obstacles:
                    polygon = obstacle.bounding_polygon
                    if polygon.distance_to_point(center) <= self.clearance:
                        key = (row, column)
                        if impassable:
                            self._blocked[key] = True
                        else:
                            self._climb[key] = True

    def _cell_center(self, row: int, column: int) -> Vector:
        x = -self.half_extent + (column + 0.5) * self.resolution
        y = -self.half_extent + (row + 0.5) * self.resolution
        return Vector(x, y)

    def _cell_of(self, point: Vector) -> Tuple[int, int]:
        column = int((point.x + self.half_extent) / self.resolution)
        row = int((point.y + self.half_extent) / self.resolution)
        return (
            min(max(row, 0), self.size - 1),
            min(max(column, 0), self.size - 1),
        )

    # -- planning ----------------------------------------------------------------

    def plan(self, start: Vector, goal: Vector) -> PlanResult:
        """A* search from *start* to *goal*; diagonal moves allowed."""
        start_cell = self._cell_of(Vector.from_any(start))
        goal_cell = self._cell_of(Vector.from_any(goal))
        frontier: List[Tuple[float, Tuple[int, int]]] = [(0.0, start_cell)]
        came_from: Dict[Tuple[int, int], Optional[Tuple[int, int]]] = {start_cell: None}
        cost_so_far: Dict[Tuple[int, int], float] = {start_cell: 0.0}

        while frontier:
            _priority, current = heapq.heappop(frontier)
            if current == goal_cell:
                break
            for neighbor, step_cost in self._neighbors(current):
                new_cost = cost_so_far[current] + step_cost
                if neighbor not in cost_so_far or new_cost < cost_so_far[neighbor]:
                    cost_so_far[neighbor] = new_cost
                    heuristic = self._heuristic(neighbor, goal_cell)
                    heapq.heappush(frontier, (new_cost + heuristic, neighbor))
                    came_from[neighbor] = current

        if goal_cell not in came_from:
            return PlanResult(False, [], math.inf, 0)

        path_cells: List[Tuple[int, int]] = []
        cell: Optional[Tuple[int, int]] = goal_cell
        while cell is not None:
            path_cells.append(cell)
            cell = came_from[cell]
        path_cells.reverse()
        path = [self._cell_center(row, column) for row, column in path_cells]
        climbs = sum(1 for cell in path_cells if self._climb.get(cell, False))
        return PlanResult(True, path, cost_so_far[goal_cell], climbs)

    def plan_for_scene(self) -> PlanResult:
        """Plan from the scene's rover to its goal (both must be present)."""
        rovers = self.scene.objects_of_class(Rover)
        goals = self.scene.objects_of_class(Goal)
        if not rovers or not goals:
            raise ValueError("the scene needs both a Rover and a Goal to plan")
        return self.plan(Vector.from_any(rovers[0].position), Vector.from_any(goals[0].position))

    def _neighbors(self, cell: Tuple[int, int]):
        row, column = cell
        for delta_row in (-1, 0, 1):
            for delta_column in (-1, 0, 1):
                if delta_row == 0 and delta_column == 0:
                    continue
                neighbor = (row + delta_row, column + delta_column)
                if not (0 <= neighbor[0] < self.size and 0 <= neighbor[1] < self.size):
                    continue
                if self._blocked.get(neighbor, False):
                    continue
                step = math.hypot(delta_row, delta_column) * self.resolution
                if self._climb.get(neighbor, False):
                    step += self.climb_penalty * self.resolution
                yield neighbor, step

    def _heuristic(self, cell: Tuple[int, int], goal: Tuple[int, int]) -> float:
        return math.hypot(cell[0] - goal[0], cell[1] - goal[1]) * self.resolution


__all__ = ["GridPlanner", "PlanResult"]

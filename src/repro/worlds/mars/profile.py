"""The registered :class:`WorldProfile` for the Mars rover world (``mars``)."""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ...core.workspace import Workspace
from ..profile import CorpusProfile, EgoSpec, FuzzProfile, WorldProfile


def _load() -> Tuple[Dict[str, Any], Optional[Workspace]]:
    from .interface import default_workspace, scenic_namespace

    return scenic_namespace(), default_workspace()


PROFILE = WorldProfile(
    name="mars",
    aliases=("webotsLib",),
    description="Webots-like Mars rover arena with rocks, pipes and a planner",
    loader=_load,
    fuzz=FuzzProfile(
        weight=2,
        # The arena is a 5 m square with decimetre-scale objects, so every
        # magnitude is shrunk accordingly.
        magnitudes={
            "size": (0.08, 0.35),
            "by": (0.15, 1.0),
            "span": (-1.6, 1.6),
            "forward": (0.3, 1.5),
            "beyond": (0.3, 1.2),
            "lateral": (-0.6, 0.6),
        },
        # Keep the rover's 0.5 x 0.7 footprint inside the 5 m arena.
        ego=EgoSpec(classes=("Rover",), placement=((-1.0, 1.0), (-2.0, -1.2))),
        class_bases=("Rock", "Pipe"),
        object_pool=("Rock", "BigRock", "Pipe"),
        generous_distance=(9.0, 15.0),
        min_distance_scale=0.2,
        unit=0.25,
    ),
    analysis=None,  # MarsObject defaults are static; no hooks needed
    corpus=CorpusProfile(),
)

__all__ = ["PROFILE"]

"""Object classes for the Mars rover world.

Dimensions follow the Webots rubble-field world used in the paper: the rover
is roughly 0.5 m x 0.7 m, pipes are long and thin (their length is usually
randomised by the scenario with ``with height (1, 2)``), and rocks come in
two sizes.  By default every object lands at a uniformly random position on
the ground facing a uniformly random direction, so that bare statements like
``Rock`` scatter obstacles around the arena (Appendix A.12).
"""

from __future__ import annotations

import math

from ...core.distributions import Range
from ...core.objects import Object
from .workspace import ground_region

_GROUND = ground_region()


def _random_ground_position():
    return _GROUND.uniform_point_distribution()


def _random_heading():
    return Range(-math.pi, math.pi)


class MarsObject(Object):
    """Base class: uniformly random placement on the ground."""

    _scenic_properties = {
        "position": _random_ground_position,
        "heading": _random_heading,
    }


class Rover(MarsObject):
    """The robot whose motion planner the generated workspaces exercise."""

    _scenic_properties = {
        "width": lambda: 0.5,
        "height": lambda: 0.7,
        #: Rovers can climb obstacles no taller than this (metres).
        "climbHeight": lambda: 0.2,
    }


class Goal(MarsObject):
    """The flag marking the rover's navigation goal."""

    _scenic_properties = {
        "width": lambda: 0.2,
        "height": lambda: 0.2,
        "allowCollisions": lambda: True,
    }


class Rock(MarsObject):
    """A small rock the rover can climb over."""

    _scenic_properties = {
        "width": lambda: 0.10,
        "height": lambda: 0.10,
        #: Obstacle height above ground (metres); small rocks are climbable.
        "obstacleHeight": lambda: 0.15,
    }


class BigRock(Rock):
    """A larger rock — still climbable, but slower to traverse."""

    _scenic_properties = {
        "width": lambda: 0.17,
        "height": lambda: 0.17,
        "obstacleHeight": lambda: 0.25,
    }


class Pipe(MarsObject):
    """A pipe segment the rover cannot climb over.

    The scenario controls the pipe's length through the ``height`` property
    (its long axis), e.g. ``Pipe ahead of leftEnd, with height (1, 2)``.
    """

    _scenic_properties = {
        "width": lambda: 0.2,
        "height": lambda: Range(1.0, 2.0),
        "obstacleHeight": lambda: 0.5,
    }


__all__ = ["MarsObject", "Rover", "Goal", "Rock", "BigRock", "Pipe"]

"""The Mars-rover world (``import mars``), standing in for Webots.

Provides the object classes used by the motion-planning scenario of Sec. 3 /
Appendix A.12 (``Rover``, ``Goal``, ``Rock``, ``BigRock``, ``Pipe``), a
square workspace, and a grid-based motion planner (:mod:`planner`) that
plays the role of the robot's path planner when evaluating generated
workspaces.
"""

from .objects import Rover, Goal, Rock, BigRock, Pipe, MarsObject
from .workspace import mars_workspace, GROUND_HALF_EXTENT
from .planner import GridPlanner, PlanResult
from .interface import scenic_namespace, default_workspace

__all__ = [
    "Rover",
    "Goal",
    "Rock",
    "BigRock",
    "Pipe",
    "MarsObject",
    "mars_workspace",
    "GROUND_HALF_EXTENT",
    "GridPlanner",
    "PlanResult",
    "scenic_namespace",
    "default_workspace",
]

"""World libraries: the domain-specific object classes, regions and vector
fields that Scenic programs import (``import gtaLib``, ``import mars``).

* :mod:`repro.worlds.gta` — a synthetic road world standing in for Grand
  Theft Auto V: a procedurally generated road network with traffic-direction
  vector field, curbs, car models and colours, plus weather/time parameters.
* :mod:`repro.worlds.mars` — a Webots-like Mars rover arena with rocks,
  pipes, a goal flag, and a grid-based motion planner.
"""

from . import registry

__all__ = ["registry"]

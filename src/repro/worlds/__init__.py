"""World libraries: the domain-specific object classes, regions and vector
fields that Scenic programs import (``import gtaLib``, ``import mars``,
``import warehouse``).

* :mod:`repro.worlds.gta` — a synthetic road world standing in for Grand
  Theft Auto V: a procedurally generated road network with traffic-direction
  vector field, curbs, car models and colours, plus weather/time parameters.
* :mod:`repro.worlds.mars` — a Webots-like Mars rover arena with rocks,
  pipes, a goal flag, and a grid-based motion planner.
* :mod:`repro.worlds.warehouse` — an indoor rack warehouse with picking
  aisles, cross-aisles, robots, pallets and workers.

Each world registers one :class:`~repro.worlds.profile.WorldProfile`
(:mod:`repro.worlds.registry`) bundling its Scenic namespace and workspace
with the fuzzer tuning, static-analysis hooks and evals metadata the rest
of the engine resolves through the registry — see ``docs/worlds.md`` for
the add-a-world contract.
"""

from . import profile, registry

__all__ = ["profile", "registry"]

"""Registry of :class:`~repro.worlds.profile.WorldProfile` plugins.

The paper's workflow (Sec. 1) requires "writing a small Scenic library
defining the types of objects supported by the simulator, as well as the
geometry of the workspace".  Each world here registers one
:class:`WorldProfile` bundling that Scenic library (namespace + workspace
loader) with the engine-facing knowledge the other subsystems need —
fuzzer tuning, static-analysis hooks, evals-corpus metadata — so the
fuzzer, analyzer and evals layers resolve everything through this registry
instead of hardcoding per-world conditionals (see ``docs/worlds.md``).

The API mirrors the geometry-backend registry
(:mod:`repro.geometry.backends`): duplicate registrations raise unless
``overwrite=True``, :func:`unregister_world` removes a profile (and its
aliases), and :func:`registered_worlds` lists canonical names only unless
asked to include aliases.  Name resolution is priority-free: every import
name (canonical or alias) maps to exactly one profile.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.workspace import Workspace
from .profile import AnalysisProfile, FuzzProfile, WorldProfile

#: Names no profile may claim: ``inline`` is the fuzzer/evals bucket for
#: programs that import no world at all.
RESERVED_NAMES = ("inline",)

_PROFILES: Dict[str, WorldProfile] = {}  # canonical name -> profile
_NAMES: Dict[str, str] = {}  # any import name (incl. canonical) -> canonical
_builtins_registered = False


def register_world(profile: WorldProfile, *, overwrite: bool = False) -> WorldProfile:
    """Register *profile* under its canonical name and every alias.

    Raises ``ValueError`` on a malformed profile, a reserved name, or a
    name/alias collision with an already-registered profile (unless
    *overwrite* is true, which first drops the colliding profiles).
    Returns the profile, so it can be used in expression position.
    """
    problems = profile.validate()
    if problems:
        raise ValueError(f"invalid world profile {profile.name!r}: {'; '.join(problems)}")
    for name in profile.import_names:
        if name in RESERVED_NAMES:
            raise ValueError(f"world name {name!r} is reserved")
    taken = {
        name: _NAMES[name]
        for name in profile.import_names
        if name in _NAMES and _NAMES[name] != profile.name
    }
    if taken and not overwrite:
        claims = ", ".join(f"{name!r} (world {owner!r})" for name, owner in taken.items())
        raise ValueError(
            f"cannot register world {profile.name!r}: name already registered: "
            f"{claims}; pass overwrite=True to replace"
        )
    for owner in set(taken.values()):
        unregister_world(owner)
    if profile.name in _PROFILES:
        if not overwrite:
            raise ValueError(
                f"world {profile.name!r} is already registered; "
                "pass overwrite=True to replace it"
            )
        unregister_world(profile.name)
    _PROFILES[profile.name] = profile
    for name in profile.import_names:
        _NAMES[name] = profile.name
    return profile


def unregister_world(name: str) -> None:
    """Remove the profile registered under *name* (canonical or alias)."""
    canonical = _NAMES.get(name)
    if canonical is None:
        raise ValueError(f"unknown world {name!r}")
    profile = _PROFILES.pop(canonical)
    for import_name in profile.import_names:
        _NAMES.pop(import_name, None)


def get_world(name: str) -> Optional[WorldProfile]:
    """The profile *name* (canonical or alias) resolves to, or ``None``."""
    _ensure_builtin_worlds()
    canonical = _NAMES.get(name)
    if canonical is None:
        return None
    return _PROFILES.get(canonical)


def resolve_world_name(name: str) -> Optional[str]:
    """Canonical name for any import name (alias-aware), or ``None``."""
    profile = get_world(name)
    return profile.name if profile is not None else None


def registered_worlds(include_aliases: bool = False) -> Tuple[str, ...]:
    """Registered canonical world names, sorted (optionally plus aliases)."""
    _ensure_builtin_worlds()
    if include_aliases:
        return tuple(sorted(_NAMES))
    return tuple(sorted(_PROFILES))


def world_aliases() -> Dict[str, str]:
    """Mapping of every registered *alias* to its canonical name."""
    _ensure_builtin_worlds()
    return {name: canonical for name, canonical in sorted(_NAMES.items()) if name != canonical}


def load_world(name: str) -> Tuple[Optional[Dict[str, Any]], Optional[Workspace]]:
    """Load the world library *name* imports (or ``(None, None)``)."""
    profile = get_world(name)
    if profile is None:
        return None, None
    return profile.load()


def fuzz_profiles() -> Dict[str, FuzzProfile]:
    """Canonical name -> :class:`FuzzProfile`, for worlds that define one."""
    _ensure_builtin_worlds()
    return {
        name: profile.fuzz
        for name, profile in sorted(_PROFILES.items())
        if profile.fuzz is not None
    }


def analysis_profile(name: str) -> Optional[AnalysisProfile]:
    """The :class:`AnalysisProfile` of the world *name* imports, if any."""
    profile = get_world(name)
    return profile.analysis if profile is not None else None


def corpus_feature_tokens() -> Tuple[Tuple[str, str], ...]:
    """World-contributed ``(token, label)`` feature pairs, in name order."""
    _ensure_builtin_worlds()
    tokens: List[Tuple[str, str]] = []
    for _, profile in sorted(_PROFILES.items()):
        tokens.extend(profile.corpus.feature_tokens)
    return tuple(tokens)


def _ensure_builtin_worlds() -> None:
    """Register the built-in world profiles exactly once."""
    global _builtins_registered
    if _builtins_registered:
        return
    _builtins_registered = True
    from .gta.profile import PROFILE as gta_profile
    from .mars.profile import PROFILE as mars_profile
    from .warehouse.profile import PROFILE as warehouse_profile

    for profile in (gta_profile, mars_profile, warehouse_profile):
        if profile.name not in _PROFILES:
            register_world(profile)


__all__ = [
    "RESERVED_NAMES",
    "WorldProfile",
    "analysis_profile",
    "corpus_feature_tokens",
    "fuzz_profiles",
    "get_world",
    "load_world",
    "register_world",
    "registered_worlds",
    "resolve_world_name",
    "unregister_world",
    "world_aliases",
]

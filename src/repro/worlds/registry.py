"""Registry mapping Scenic ``import`` names to world libraries.

The paper's workflow (Sec. 1) requires "writing a small Scenic library
defining the types of objects supported by the simulator, as well as the
geometry of the workspace".  Each world library here exposes a
``scenic_namespace()`` function returning the names a Scenic program sees
after importing it, and optionally a ``workspace()`` function.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ..core.workspace import Workspace

_WorldLoader = Callable[[], Tuple[Dict[str, Any], Optional[Workspace]]]

_REGISTRY: Dict[str, _WorldLoader] = {}


def register_world(name: str, loader: _WorldLoader) -> None:
    """Register a world library under the given import name."""
    _REGISTRY[name] = loader


def load_world(name: str) -> Tuple[Optional[Dict[str, Any]], Optional[Workspace]]:
    """Load the world library registered as *name* (or ``(None, None)``)."""
    _ensure_builtin_worlds()
    loader = _REGISTRY.get(name)
    if loader is None:
        return None, None
    return loader()


def registered_worlds() -> Tuple[str, ...]:
    _ensure_builtin_worlds()
    return tuple(sorted(_REGISTRY))


def _ensure_builtin_worlds() -> None:
    if "gtaLib" in _REGISTRY and "mars" in _REGISTRY:
        return

    def _load_gta() -> Tuple[Dict[str, Any], Optional[Workspace]]:
        from .gta.interface import scenic_namespace, default_workspace

        return scenic_namespace(), default_workspace()

    def _load_mars() -> Tuple[Dict[str, Any], Optional[Workspace]]:
        from .mars.interface import scenic_namespace, default_workspace

        return scenic_namespace(), default_workspace()

    register_world("gtaLib", _load_gta)
    register_world("gta", _load_gta)
    register_world("mars", _load_mars)
    register_world("webotsLib", _load_mars)


__all__ = ["register_world", "load_world", "registered_worlds"]

"""The :class:`WorldProfile` contract: everything the engine knows per world.

The paper's workflow (Sec. 1) makes a simulator interface "a small Scenic
library defining the types of objects supported by the simulator, as well
as the geometry of the workspace".  Historically this repo let world
knowledge leak beyond :mod:`repro.worlds` — the fuzzer keyed magnitude
tables on literal import names, the analyzer imported the GTA car-model
table by module path, and the evals layer hardcoded the recognized world
names.  A ``WorldProfile`` gathers all of that into one registered object,
so adding a world is a single plugin module under ``worlds/<name>/``:

* the Scenic **loader** — namespace + workspace, what ``import <name>``
  binds (exactly what the old registry stored);
* a :class:`FuzzProfile` — magnitude tuning, ego/object class pools,
  ``requireVisible`` relaxation policy and require-statement ranges the
  grammar-driven generator (:mod:`repro.fuzz.program_gen`) uses to emit
  *feasible* programs for this world;
* an :class:`AnalysisProfile` — hooks the static analyzer
  (:mod:`repro.analysis.analyzer`) uses to derive class facts (dimension
  intervals, heading-deviation bounds) and to recognize model tables in
  default expressions, without importing world modules by path;
* a :class:`CorpusProfile` — extra feature tokens and the stratification
  bucket the evals corpus (:mod:`repro.evals.corpus`) tags entries with.

Every field besides ``name`` and ``loader`` is optional: a world with no
fuzz profile is simply never picked by the generator, and a world with no
analysis profile gets the analyzer's sound default (unmapped classes bail
to "don't prune").  See ``docs/worlds.md`` for the add-a-world checklist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..core.workspace import Workspace

#: ``loader`` signature: () -> (scenic namespace, workspace or None).
WorldLoader = Callable[[], Tuple[Dict[str, Any], Optional[Workspace]]]

#: Magnitude keys every fuzz profile must provide.  The generator sizes its
#: emitted literals from these ranges so programs stay feasible in-world:
#: ``size`` (object width/height), ``by`` (left of/ahead of gaps), ``span``
#: (absolute / lateral offsets), ``forward`` (ego-forward offsets),
#: ``beyond`` / ``lateral`` (the two components of ``beyond X by l @ f``).
MAGNITUDE_KEYS: Tuple[str, ...] = ("size", "by", "span", "forward", "beyond", "lateral")


@dataclass(frozen=True)
class EgoSpec:
    """How the fuzz generator instantiates the ego for a world.

    ``placement`` is an optional ``((x_lo, x_hi), (y_lo, y_hi))`` box for an
    explicit ``at x @ y`` (worlds whose default position distribution is
    fine for the ego leave it ``None``).  ``visible_distance`` optionally
    emits ``with visibleDistance <v>`` on a coin flip, and
    ``allow_deviation`` lets the ego pick up the world's deviation property
    (``with roadDeviation a`` style) when a heading variable is in scope.
    """

    classes: Tuple[str, ...]
    placement: Optional[Tuple[Tuple[float, float], Tuple[float, float]]] = None
    visible_distance: Optional[float] = None
    allow_deviation: bool = False


@dataclass(frozen=True)
class FuzzProfile:
    """World-specific tuning for the grammar-driven program generator."""

    #: Relative likelihood of picking this world (inline programs have
    #: their own weight inside the generator).
    weight: int
    #: Literal-magnitude ranges, one entry per :data:`MAGNITUDE_KEYS`.
    magnitudes: Mapping[str, Tuple[float, float]]
    ego: EgoSpec
    #: Base classes a generated ``class X(Base)`` may derive from.
    class_bases: Tuple[str, ...]
    #: Classes instantiated for non-ego objects (repeats bias the draw).
    object_pool: Tuple[str, ...]
    #: Range for generous ``require (distance to x) <= bound`` bounds.
    generous_distance: Tuple[float, float]
    #: Scale applied to minimum-distance require bounds (small arenas < 1).
    min_distance_scale: float = 1.0
    #: Length scale for loop-emitted placements (small arenas < 1).
    unit: float = 1.0
    #: Emit ``with requireVisible False`` on most placements (worlds whose
    #: classes default ``requireVisible`` to True and would otherwise make
    #: beside/behind placements near-infeasible).
    relax_visibility: bool = False
    relax_probability: float = 0.8
    #: Name of the world's orientation vector field, when it has one —
    #: enables ``relative to <field>`` headings and ``following <field>``.
    orientation_field: Optional[str] = None
    #: Name of the field-deviation property (``roadDeviation`` style) —
    #: enables ``with <property> <heading>`` specifiers.
    deviation_property: Optional[str] = None
    #: Named regions usable as ``on <region>`` position specifiers.
    on_regions: Tuple[str, ...] = ()
    #: Whether the bare ``visible`` position specifier is feasible enough
    #: to generate (needs a bounded view region).
    supports_visible: bool = False
    #: Replace absolute ``at x @ y`` placements with ego-relative offsets
    #: (workspaces where uniform boxes mostly miss the legal region).
    avoid_absolute: bool = False
    #: Distance range for ``following <field> for <d>`` placements.
    following_distance: Tuple[float, float] = (3.0, 12.0)

    def missing_magnitudes(self) -> List[str]:
        """Magnitude keys absent or malformed — empty for a valid profile."""
        problems: List[str] = []
        for key in MAGNITUDE_KEYS:
            bounds = self.magnitudes.get(key)
            if (
                bounds is None
                or len(bounds) != 2
                or not all(isinstance(b, (int, float)) for b in bounds)
                or not bounds[0] <= bounds[1]
            ):
                problems.append(key)
        return problems


#: ``class_facts`` hook signature: ``(python_class, static_interval) -> patch``.
#: *static_interval* maps a property name to the Interval of its default
#: expression (or None when non-static); the returned patch may supply
#: ``"width"`` / ``"height"`` / ``"deviation"`` Intervals, or None / {} when
#: the class is not one this world knows (the analyzer then keeps its sound
#: defaults).
ClassFactsHook = Callable[[type, Callable[[str], Any]], Optional[Dict[str, Any]]]


@dataclass(frozen=True)
class AnalysisProfile:
    """Static-analysis hooks for a world's classes and model tables."""

    class_facts: Optional[ClassFactsHook] = None
    #: Property names holding a heading deviation from the world's
    #: orientation field (``roadDeviation`` style): class/``with`` overrides
    #: of these fold into the analyzer's deviation bound.
    deviation_properties: Tuple[str, ...] = ()
    #: Namespace names that bind model tables: objects with a ``.models``
    #: dict of entries carrying ``width`` / ``height`` attributes and a
    #: ``defaultModel()`` / ``default_model()`` constructor.  The analyzer
    #: uses these to bound ``with model CarModel.models['X']``-style
    #: defaults without importing the table by module path.
    model_symbols: Tuple[str, ...] = ()


@dataclass(frozen=True)
class CorpusProfile:
    """Evals-corpus metadata: feature tagging and stratification."""

    #: Extra ``(source token, feature label)`` pairs for
    #: :func:`repro.evals.corpus.infer_features` (world-specific syntax
    #: such as ``on road`` or a deviation property name).
    feature_tokens: Tuple[Tuple[str, str], ...] = ()
    #: Stratification bucket name; defaults to the world's canonical name.
    bucket: Optional[str] = None


@dataclass(frozen=True)
class WorldProfile:
    """A registered world: import names, loader, and per-subsystem profiles."""

    name: str
    loader: WorldLoader
    aliases: Tuple[str, ...] = ()
    description: str = ""
    fuzz: Optional[FuzzProfile] = None
    analysis: Optional[AnalysisProfile] = None
    corpus: CorpusProfile = field(default_factory=CorpusProfile)

    @property
    def import_names(self) -> Tuple[str, ...]:
        """Every Scenic import name resolving to this world."""
        return (self.name,) + self.aliases

    @property
    def bucket(self) -> str:
        """The evals stratification bucket for this world's programs."""
        return self.corpus.bucket or self.name

    def load(self) -> Tuple[Dict[str, Any], Optional[Workspace]]:
        return self.loader()

    def validate(self) -> List[str]:
        """Contract violations (empty list when the profile is well-formed)."""
        problems: List[str] = []
        if not self.name or not isinstance(self.name, str):
            problems.append("profile name must be a non-empty string")
        if self.name in self.aliases:
            problems.append(f"alias {self.name!r} duplicates the canonical name")
        if len(set(self.aliases)) != len(self.aliases):
            problems.append("aliases contain duplicates")
        if not callable(self.loader):
            problems.append("loader must be callable")
        if self.fuzz is not None:
            missing = self.fuzz.missing_magnitudes()
            if missing:
                problems.append(f"fuzz profile missing magnitude ranges: {missing}")
            if not self.fuzz.ego.classes:
                problems.append("fuzz profile needs at least one ego class")
            if not self.fuzz.object_pool and not self.fuzz.class_bases:
                problems.append("fuzz profile needs an object pool or class bases")
            if self.fuzz.weight < 0:
                problems.append("fuzz weight must be non-negative")
        return problems


__all__ = [
    "MAGNITUDE_KEYS",
    "AnalysisProfile",
    "ClassFactsHook",
    "CorpusProfile",
    "EgoSpec",
    "FuzzProfile",
    "WorldLoader",
    "WorldProfile",
]

"""Sec. 6.4 — debugging a failure (Table 7) and retraining (Table 8).

Starting from a single scene the model handles badly, the paper writes nine
scenarios that vary different aspects of the scene (model/colour, background,
local position, distance, view angle) and measures the model on 150 images
from each, identifying which features matter.  It then retrains the model,
replacing 10 % of the generic training set with images of cars close to the
camera (or close and at a shallow angle), and compares against classical
image augmentation of the single failure image.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..perception.augmentation import augment_dataset
from ..perception.detector import CarDetector
from ..perception.metrics import DetectionMetrics
from ..perception.training import Dataset, TrainingConfig, evaluate_detector, train_detector
from . import scenarios
from .conditions import build_generic_training_set
from .reporting import TableRow, format_table


# ---------------------------------------------------------------------------
# Table 7: variant scenarios around the misclassified scene
# ---------------------------------------------------------------------------


@dataclass
class VariantAnalysisResult:
    """Per-variant-scenario metrics of an already-trained model."""

    metrics: Dict[str, DetectionMetrics]
    images_per_variant: int

    def to_table(self) -> str:
        rows = [
            TableRow(name, {"Precision": 100 * metric.precision, "Recall": 100 * metric.recall})
            for name, metric in self.metrics.items()
        ]
        return format_table("Scenario", ["Precision", "Recall"], rows)


def run_variant_analysis(
    detector: Optional[CarDetector] = None,
    scale: float = 0.1,
    seed: int = 0,
    training_config: Optional[TrainingConfig] = None,
) -> VariantAnalysisResult:
    """Evaluate a detector on the nine Table 7 variant scenarios.

    If *detector* is ``None``, a model is first trained on a (scaled-down)
    generic training set, mirroring M_generic in the paper.
    """
    if detector is None:
        training_set = build_generic_training_set(max(10, int(round(1000 * scale))), seed=seed)
        detector = train_detector(training_set, training_config)
    images_per_variant = max(5, int(round(150 * scale)))
    metrics: Dict[str, DetectionMetrics] = {}
    for name, source in scenarios.debugging_variants().items():
        scenario = scenarios.compile_scenario(source)
        dataset = Dataset.from_scenario(scenario, images_per_variant, name, seed=seed + hash(name) % 1000)
        metrics[name] = evaluate_detector(detector, dataset)
    return VariantAnalysisResult(metrics=metrics, images_per_variant=images_per_variant)


# ---------------------------------------------------------------------------
# Table 8: retraining with replacement data
# ---------------------------------------------------------------------------


@dataclass
class RetrainingResult:
    """Metrics on T_generic after retraining with different replacement data."""

    metrics: Dict[str, DetectionMetrics]
    replaced_fraction: float
    training_images: int

    def to_table(self) -> str:
        rows = [
            TableRow(name, {"Precision": 100 * metric.precision, "Recall": 100 * metric.recall})
            for name, metric in self.metrics.items()
        ]
        return format_table("Replacement data", ["Precision", "Recall"], rows)


def run_retraining_experiment(
    scale: float = 0.05,
    replaced_fraction: float = 0.10,
    seed: int = 0,
    training_config: Optional[TrainingConfig] = None,
) -> RetrainingResult:
    """Run the Table 8 experiment.

    Four training sets are compared, all of the same size: the original
    generic set, the generic set with 10 % replaced by classical
    augmentations of the failure image, by close-car images, and by
    close-car-at-shallow-angle images.  All models are evaluated on a
    generic test set.
    """
    rng = _random.Random(seed)
    train_per_count = max(10, int(round(1000 * scale)))
    test_per_count = max(5, int(round(100 * scale)))

    base_training = build_generic_training_set(train_per_count, seed=seed)
    generic_test_scenario = scenarios.compile_scenario(scenarios.generic_cars(1))
    test_images = []
    for car_count in range(1, 5):
        scenario = scenarios.compile_scenario(scenarios.generic_cars(car_count))
        test_images.extend(
            Dataset.from_scenario(scenario, test_per_count, f"T_generic-{car_count}", seed=seed + 50 + car_count).images
        )
    t_generic = Dataset("T_generic", test_images)

    replacement_count = int(round(len(base_training) * replaced_fraction))

    # Replacement pools.
    failure_scenario = scenarios.compile_scenario(scenarios.original_failure())
    failure_image = Dataset.from_scenario(failure_scenario, 1, "failure", seed=seed).images[0]
    classical_pool = augment_dataset(failure_image, max(replacement_count, 1), seed=seed)
    close_pool = Dataset.from_scenario(
        scenarios.compile_scenario(scenarios.close_car()), max(replacement_count, 1), "close", seed=seed + 60
    )
    shallow_pool = Dataset.from_scenario(
        scenarios.compile_scenario(scenarios.close_car_shallow_angle()),
        max(replacement_count, 1),
        "close-shallow",
        seed=seed + 61,
    )

    def replaced_with(pool: Dataset, name: str) -> Dataset:
        fraction = replacement_count / max(1, len(base_training))
        return base_training.mixed_with(pool, fraction, _random.Random(seed + 7), name=name)

    training_sets = {
        "Original (no replacement)": base_training,
        "Classical augmentation": replaced_with(classical_pool, "classical"),
        "Close car": replaced_with(close_pool, "close-car"),
        "Close car at shallow angle": replaced_with(shallow_pool, "close-shallow"),
    }

    metrics: Dict[str, DetectionMetrics] = {}
    for name, training_set in training_sets.items():
        config = training_config if training_config is not None else TrainingConfig(seed=seed)
        detector = train_detector(training_set, config)
        metrics[name] = evaluate_detector(detector, t_generic)
    return RetrainingResult(metrics=metrics, replaced_fraction=replaced_fraction, training_images=len(base_training))


#: Table 7 as reported in the paper (percent).
PAPER_TABLE7 = {
    "(1) varying model and color": {"precision": 80.3, "recall": 100.0},
    "(2) varying background": {"precision": 50.5, "recall": 99.3},
    "(3) varying local position, orientation": {"precision": 62.8, "recall": 100.0},
    "(4) varying position but staying close": {"precision": 53.1, "recall": 99.3},
    "(5) any position, same apparent angle": {"precision": 58.9, "recall": 98.6},
    "(6) any position and angle": {"precision": 67.5, "recall": 100.0},
    "(7) varying background, model, color": {"precision": 61.3, "recall": 100.0},
    "(8) staying close, same apparent angle": {"precision": 52.4, "recall": 100.0},
    "(9) staying close, varying model": {"precision": 58.6, "recall": 100.0},
}

#: Table 8 as reported in the paper (percent).
PAPER_TABLE8 = {
    "Original (no replacement)": {"precision": 82.9, "recall": 92.7},
    "Classical augmentation": {"precision": 78.7, "recall": 92.1},
    "Close car": {"precision": 87.4, "recall": 91.6},
    "Close car at shallow angle": {"precision": 84.0, "recall": 92.1},
}


__all__ = [
    "VariantAnalysisResult",
    "run_variant_analysis",
    "RetrainingResult",
    "run_retraining_experiment",
    "PAPER_TABLE7",
    "PAPER_TABLE8",
]

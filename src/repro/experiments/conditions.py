"""Sec. 6.2 — testing the detector under different conditions.

The paper trains a model on 4 000 images from generic 1–4-car scenarios and
evaluates it on a generic test set, a good-conditions set (noon, sunny) and
a bad-conditions set (midnight, rain), finding precision of 83.1 / 85.7 /
72.8 % and recall of 92.6 / 94.3 / 92.8 %: the model is noticeably worse on
rainy nights.  This harness reproduces that pipeline end-to-end on the
synthetic substrate; the expected qualitative result is the same ordering
(bad-conditions precision clearly below the other two).
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..perception.metrics import DetectionMetrics
from ..perception.training import Dataset, TrainingConfig, evaluate_detector, train_detector
from . import scenarios
from .reporting import TableRow, format_table


@dataclass
class ConditionsResult:
    """Outcome of the different-conditions experiment."""

    metrics: Dict[str, DetectionMetrics]
    training_images: int
    test_images_per_set: int

    def to_table(self) -> str:
        rows = [
            TableRow(name, {"Precision": 100 * metric.precision, "Recall": 100 * metric.recall})
            for name, metric in self.metrics.items()
        ]
        return format_table("Test set", ["Precision", "Recall"], rows)


def build_generic_training_set(
    images_per_car_count: int,
    seed: int = 0,
    max_cars: int = 4,
    name: str = "X_generic",
) -> Dataset:
    """The generic training set: equal parts 1..max_cars-car scenarios."""
    images = []
    for car_count in range(1, max_cars + 1):
        scenario = scenarios.compile_scenario(scenarios.generic_cars(car_count))
        subset = Dataset.from_scenario(
            scenario, images_per_car_count, f"{name}-{car_count}", seed=seed + car_count
        )
        images.extend(subset.images)
    return Dataset(name, images)


def build_condition_test_sets(
    images_per_car_count: int,
    seed: int = 100,
    max_cars: int = 4,
) -> Dict[str, Dataset]:
    """Generic / good / bad test sets, images_per_car_count per car count each."""
    test_sets: Dict[str, Dataset] = {}
    for label, source_function in (
        ("T_generic", scenarios.generic_cars),
        ("T_good", scenarios.good_conditions),
        ("T_bad", scenarios.bad_conditions),
    ):
        images = []
        for car_count in range(1, max_cars + 1):
            scenario = scenarios.compile_scenario(source_function(car_count))
            subset = Dataset.from_scenario(
                scenario, images_per_car_count, f"{label}-{car_count}", seed=seed + car_count
            )
            images.extend(subset.images)
        test_sets[label] = Dataset(label, images)
    return test_sets


def run_conditions_experiment(
    scale: float = 0.05,
    seed: int = 0,
    training_config: Optional[TrainingConfig] = None,
) -> ConditionsResult:
    """Run the Sec. 6.2 experiment.

    ``scale=1.0`` corresponds to the paper's sizes (1 000 training images per
    car count, 50 test images per car count and condition); the default
    ``scale=0.05`` uses 5 % of that, which reruns in well under a minute.
    """
    train_per_count = max(5, int(round(1000 * scale)))
    test_per_count = max(3, int(round(50 * scale)))

    training_set = build_generic_training_set(train_per_count, seed=seed)
    test_sets = build_condition_test_sets(test_per_count, seed=seed + 1000)

    detector = train_detector(training_set, training_config)
    metrics = {name: evaluate_detector(detector, dataset) for name, dataset in test_sets.items()}
    return ConditionsResult(
        metrics=metrics,
        training_images=len(training_set),
        test_images_per_set=len(next(iter(test_sets.values()))),
    )


#: The numbers reported in the paper (percent), for EXPERIMENTS.md comparisons.
PAPER_RESULTS = {
    "T_generic": {"precision": 83.1, "recall": 92.6},
    "T_good": {"precision": 85.7, "recall": 94.3},
    "T_bad": {"precision": 72.8, "recall": 92.8},
}


__all__ = [
    "ConditionsResult",
    "build_generic_training_set",
    "build_condition_test_sets",
    "run_conditions_experiment",
    "PAPER_RESULTS",
]

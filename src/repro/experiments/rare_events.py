"""Sec. 6.3 — training on rare events (Table 6 and Table 9).

The paper trains squeezeDet on 5 000 'Driving in the Matrix' images, finds
that precision on a Scenic-generated overlapping-cars test set is much lower
than on the Matrix test set, then replaces a random 5 % of the training set
with Scenic-generated overlapping images.  Precision on the overlapping test
set improves markedly while performance on the original test set is
unchanged (Table 6); the same holds under the AP metric (Table 9).

This harness reproduces the full pipeline against the synthetic substrate:
a matrix-like baseline training set, an overlap training set generated from
the Fig. 8 scenario, mixtures at a configurable replacement fraction, and
evaluation on both test sets, averaged over several random mixtures.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..perception.metrics import DetectionMetrics
from ..perception.training import (
    Dataset,
    TrainingConfig,
    evaluate_average_precision,
    evaluate_detector,
    train_detector,
)
from . import scenarios
from .reporting import TableRow, format_table, mean_and_spread


@dataclass
class MixtureOutcome:
    """Metrics of one mixture ratio, averaged over training runs."""

    mixture_label: str
    matrix_precision: Tuple[float, float]
    matrix_recall: Tuple[float, float]
    overlap_precision: Tuple[float, float]
    overlap_recall: Tuple[float, float]
    matrix_ap: Tuple[float, float] = (0.0, 0.0)
    overlap_ap: Tuple[float, float] = (0.0, 0.0)


@dataclass
class RareEventsResult:
    """Outcome of the Table 6 / Table 9 experiment."""

    outcomes: List[MixtureOutcome]
    training_images: int
    runs: int

    def to_table(self) -> str:
        rows = []
        for outcome in self.outcomes:
            rows.append(
                TableRow(
                    outcome.mixture_label,
                    {
                        "T_matrix Prec": 100 * outcome.matrix_precision[0],
                        "T_matrix Rec": 100 * outcome.matrix_recall[0],
                        "T_overlap Prec": 100 * outcome.overlap_precision[0],
                        "T_overlap Rec": 100 * outcome.overlap_recall[0],
                    },
                )
            )
        return format_table(
            "Mixture", ["T_matrix Prec", "T_matrix Rec", "T_overlap Prec", "T_overlap Rec"], rows
        )

    def to_ap_table(self) -> str:
        rows = [
            TableRow(
                outcome.mixture_label,
                {"T_matrix AP": 100 * outcome.matrix_ap[0], "T_overlap AP": 100 * outcome.overlap_ap[0]},
            )
            for outcome in self.outcomes
        ]
        return format_table("Mixture", ["T_matrix AP", "T_overlap AP"], rows)


def build_datasets(scale: float, seed: int = 0, strategy: str = "rejection") -> Dict[str, Dataset]:
    """The four datasets of the experiment (training and test, matrix and overlap).

    *strategy* selects the :mod:`repro.sampling` strategy used to draw every
    scene; the default reproduces the historical rejection-sampling datasets
    draw-for-draw.
    """
    matrix_train_count = max(20, int(round(5000 * scale)))
    overlap_train_count = max(10, int(round(250 * scale * 4)))  # enough to draw mixtures from
    test_count = max(10, int(round(200 * scale * 2)))

    matrix_scenario = scenarios.compile_scenario(scenarios.matrix_like())
    overlap_scenario = scenarios.compile_scenario(scenarios.overlapping_cars())

    return {
        "X_matrix": Dataset.from_scenario(
            matrix_scenario, matrix_train_count, "X_matrix", seed=seed, strategy=strategy
        ),
        "X_overlap": Dataset.from_scenario(
            overlap_scenario, overlap_train_count, "X_overlap", seed=seed + 1, strategy=strategy
        ),
        "T_matrix": Dataset.from_scenario(
            matrix_scenario, test_count, "T_matrix", seed=seed + 2, strategy=strategy
        ),
        "T_overlap": Dataset.from_scenario(
            overlap_scenario, test_count, "T_overlap", seed=seed + 3, strategy=strategy
        ),
    }


def run_rare_events_experiment(
    scale: float = 0.02,
    replacement_fractions: Tuple[float, ...] = (0.0, 0.05),
    runs: int = 3,
    seed: int = 0,
    training_config: Optional[TrainingConfig] = None,
    compute_ap: bool = True,
    strategy: str = "rejection",
) -> RareEventsResult:
    """Run the Table 6 experiment (and Table 9 if ``compute_ap``).

    ``replacement_fractions`` lists how much of the matrix training set is
    replaced by overlap images: ``(0.0, 0.05)`` reproduces Table 6's two rows.
    """
    datasets = build_datasets(scale, seed, strategy=strategy)
    outcomes: List[MixtureOutcome] = []

    for fraction in replacement_fractions:
        matrix_precisions: List[float] = []
        matrix_recalls: List[float] = []
        overlap_precisions: List[float] = []
        overlap_recalls: List[float] = []
        matrix_aps: List[float] = []
        overlap_aps: List[float] = []
        for run in range(runs):
            rng = _random.Random(seed + 1000 * run + int(fraction * 100))
            if fraction > 0:
                training_set = datasets["X_matrix"].mixed_with(datasets["X_overlap"], fraction, rng)
            else:
                training_set = datasets["X_matrix"]
            config = training_config if training_config is not None else TrainingConfig(seed=run)
            detector = train_detector(training_set, config)
            matrix_metrics = evaluate_detector(detector, datasets["T_matrix"])
            overlap_metrics = evaluate_detector(detector, datasets["T_overlap"])
            matrix_precisions.append(matrix_metrics.precision)
            matrix_recalls.append(matrix_metrics.recall)
            overlap_precisions.append(overlap_metrics.precision)
            overlap_recalls.append(overlap_metrics.recall)
            if compute_ap:
                matrix_aps.append(evaluate_average_precision(detector, datasets["T_matrix"]))
                overlap_aps.append(evaluate_average_precision(detector, datasets["T_overlap"]))
        label = f"{100 - int(100 * fraction)} / {int(100 * fraction)}"
        outcomes.append(
            MixtureOutcome(
                mixture_label=label,
                matrix_precision=mean_and_spread(matrix_precisions),
                matrix_recall=mean_and_spread(matrix_recalls),
                overlap_precision=mean_and_spread(overlap_precisions),
                overlap_recall=mean_and_spread(overlap_recalls),
                matrix_ap=mean_and_spread(matrix_aps),
                overlap_ap=mean_and_spread(overlap_aps),
            )
        )
    return RareEventsResult(outcomes=outcomes, training_images=len(datasets["X_matrix"]), runs=runs)


#: Table 6 as reported in the paper (percent).
PAPER_TABLE6 = {
    "100 / 0": {"matrix_precision": 72.9, "matrix_recall": 37.1, "overlap_precision": 62.8, "overlap_recall": 65.7},
    "95 / 5": {"matrix_precision": 73.1, "matrix_recall": 37.0, "overlap_precision": 68.9, "overlap_recall": 67.3},
}

#: Table 9 (AP metric) as reported in the paper.
PAPER_TABLE9 = {
    "100 / 0": {"matrix_ap": 36.1, "overlap_ap": 61.7},
    "95 / 5": {"matrix_ap": 36.0, "overlap_ap": 65.8},
}


__all__ = [
    "MixtureOutcome",
    "RareEventsResult",
    "build_datasets",
    "run_rare_events_experiment",
    "PAPER_TABLE6",
    "PAPER_TABLE9",
]

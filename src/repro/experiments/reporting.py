"""Formatting helpers: render experiment results the way the paper's tables do."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass
class TableRow:
    """One row of a results table: a label plus column values."""

    label: str
    values: Dict[str, float]


def mean_and_spread(values: Sequence[float]) -> Tuple[float, float]:
    """Mean and (population) standard deviation of a sequence."""
    if not values:
        return (0.0, 0.0)
    mean = sum(values) / len(values)
    variance = sum((value - mean) ** 2 for value in values) / len(values)
    return mean, math.sqrt(variance)


def format_percentage(value: float, spread: Optional[float] = None) -> str:
    if spread is None:
        return f"{100 * value:.1f}"
    return f"{100 * value:.1f} ± {100 * spread:.1f}"


def format_table(title: str, columns: Sequence[str], rows: Iterable[TableRow]) -> str:
    """A fixed-width text table in the style of the paper's result tables."""
    rows = list(rows)
    label_width = max([len(row.label) for row in rows] + [len(title), 8])
    column_width = max([len(column) for column in columns] + [10])
    header = title.ljust(label_width) + " | " + " | ".join(column.rjust(column_width) for column in columns)
    divider = "-" * len(header)
    lines = [header, divider]
    for row in rows:
        cells = []
        for column in columns:
            value = row.values.get(column)
            if value is None:
                cells.append("-".rjust(column_width))
            elif isinstance(value, str):
                cells.append(value.rjust(column_width))
            else:
                cells.append(f"{value:.1f}".rjust(column_width))
        lines.append(row.label.ljust(label_width) + " | " + " | ".join(cells))
    return "\n".join(lines)


def metrics_row(label: str, metrics, prefix: str = "") -> TableRow:
    """A row built from a :class:`DetectionMetrics` (values as percentages)."""
    return TableRow(
        label,
        {
            f"{prefix}Precision": 100 * metrics.precision,
            f"{prefix}Recall": 100 * metrics.recall,
        },
    )


__all__ = ["TableRow", "mean_and_spread", "format_percentage", "format_table", "metrics_row"]

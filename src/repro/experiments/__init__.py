"""Experiment harnesses regenerating the paper's evaluation (Sec. 6, App. D).

Each module corresponds to one or more tables/figures:

* :mod:`scenarios` — the Scenic programs the experiments sample from.
* :mod:`conditions` — Sec. 6.2: testing under different conditions.
* :mod:`rare_events` — Table 6 and Table 9: training on rare events.
* :mod:`mixtures` — Table 10 and Fig. 36: two-car/overlap mixtures and the
  IoU distribution of the training sets.
* :mod:`debugging` — Table 7 and Table 8: debugging a failure and retraining.
* :mod:`pruning_eval` — App. D: effectiveness of the pruning techniques.
* :mod:`reporting` — small helpers to format results like the paper's tables.

All harnesses take a ``scale`` parameter: ``1.0`` approximates the paper's
dataset sizes (slow); the defaults used by the benchmark suite are much
smaller so the full evaluation reruns in minutes on a laptop.
"""

from . import scenarios, conditions, rare_events, mixtures, debugging, pruning_eval, reporting

__all__ = [
    "scenarios",
    "conditions",
    "rare_events",
    "mixtures",
    "debugging",
    "pruning_eval",
    "reporting",
]

"""Sec. 5.2 / App. D — effectiveness of the pruning techniques and sampling speed.

The paper reports that all reasonable scenarios needed at most a few hundred
rejection-sampling iterations (a sample within a few seconds), and that the
pruning methods reduce the number of candidate samples needed by a factor of
3 or more on scenarios like bumper-to-bumper traffic.  This harness measures
both: per-scenario iteration counts and wall-clock time with and without
pruning, plus — since the pruning pass became fully automatic — the area
ratio each individual technique (containment, orientation, size) achieves,
the quantity Sec. 5.2 reasons about.

Empty-result handling is explicit: when pruning proves a scenario
statically infeasible (a region pruned to nothing), the comparison raises
:class:`~repro.core.errors.InfeasibleScenarioError` instead of silently
measuring a zero-acceptance sampling loop.
"""

from __future__ import annotations

import math
import random as _random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..core.scenario import Scenario
from ..sampling import PruningAwareSampler, SamplerEngine, SamplingStrategy
from . import scenarios
from .reporting import TableRow, format_table, mean_and_spread


@dataclass
class SamplingMeasurement:
    """Iteration counts and timings for one scenario."""

    scenario_name: str
    mean_iterations: float
    max_iterations: float
    mean_seconds: float
    samples: int


@dataclass
class PruningComparison:
    """Iterations needed with and without pruning for one scenario."""

    scenario_name: str
    unpruned_iterations: float
    pruned_iterations: float
    area_ratio: float
    techniques: Tuple[str, ...]
    #: Area kept per technique (area-out / area-in for that stage); 1.0
    #: entries are omitted by the report table.
    technique_ratios: Dict[str, float] = field(default_factory=dict)

    @property
    def improvement_factor(self) -> float:
        if self.pruned_iterations <= 0:
            return float("inf")
        return self.unpruned_iterations / self.pruned_iterations


def measure_sampling(
    scenario: Scenario,
    samples: int = 10,
    seed: int = 0,
    max_iterations: int = 20000,
    name: str = "scenario",
    strategy: Union[str, SamplingStrategy] = "rejection",
    **strategy_options,
) -> SamplingMeasurement:
    """Generate *samples* scenes and record the iteration counts and time.

    Sampling goes through :class:`repro.sampling.SamplerEngine`, so any
    registered strategy (``"rejection"``, ``"pruning"``, ``"batch"``,
    ``"parallel"``, ``"pruned-vectorized"``) can be measured; per-scene
    diagnostics come from the engine's aggregate stats.
    """
    engine = SamplerEngine(scenario, strategy=strategy, **strategy_options)
    rng = _random.Random(seed)
    iterations: List[float] = []
    times: List[float] = []
    # Read each draw's stats from last_stats rather than the aggregate's
    # per-scene history, which is bounded and would silently truncate very
    # large measurement runs.
    for _ in range(samples):
        engine.sample(max_iterations=max_iterations, rng=rng)
        iterations.append(float(engine.last_stats.iterations))
        times.append(engine.last_stats.elapsed_seconds)
    return SamplingMeasurement(
        scenario_name=name,
        mean_iterations=sum(iterations) / len(iterations),
        max_iterations=max(iterations),
        mean_seconds=sum(times) / len(times),
        samples=samples,
    )


def measure_gallery_sampling(
    samples: int = 5,
    seed: int = 0,
    strategy: Union[str, SamplingStrategy] = "rejection",
    **strategy_options,
) -> List[SamplingMeasurement]:
    """Sampling statistics for every gallery scenario (Appendix A)."""
    measurements = []
    for name, source in scenarios.GALLERY.items():
        scenario = scenarios.compile_scenario(source)
        measurements.append(
            measure_sampling(
                scenario,
                samples=samples,
                seed=seed,
                name=name,
                strategy=strategy,
                **strategy_options,
            )
        )
    return measurements


def compare_pruning(
    scenario_source: str,
    name: str,
    samples: int = 10,
    seed: int = 0,
    **prune_options,
) -> PruningComparison:
    """Compare iteration counts with and without pruning for one scenario.

    The scenario is compiled twice so the pruned copy's modified regions do
    not affect the unpruned baseline.  By default the pruning pass is fully
    automatic (static requirement analysis of the compiled program derives
    every bound — the paper's Sec. 5.2 mode); *prune_options* can still
    supply explicit bounds or the legacy manual knobs
    (``relative_heading_bound`` / ``max_distance`` / ...), which apply on
    top of the analysis.

    Raises :class:`~repro.core.errors.InfeasibleScenarioError` when pruning
    proves the scenario unsatisfiable — an explicit error rather than a
    silent 0-area sampling loop.
    """
    unpruned = scenarios.compile_scenario(scenario_source)
    baseline = measure_sampling(unpruned, samples=samples, seed=seed, name=name)

    pruned_scenario = scenarios.compile_scenario(scenario_source)
    sampler = PruningAwareSampler(**prune_options)
    pruned = measure_sampling(
        pruned_scenario, samples=samples, seed=seed, name=f"{name}+pruning", strategy=sampler
    )
    report = sampler.report

    return PruningComparison(
        scenario_name=name,
        unpruned_iterations=baseline.mean_iterations,
        pruned_iterations=pruned.mean_iterations,
        area_ratio=report.area_ratio,
        techniques=report.techniques,
        technique_ratios=report.technique_ratios(),
    )


def run_pruning_experiment(samples: int = 10, seed: int = 0) -> List[PruningComparison]:
    """Pruning comparisons for the scenarios where pruning applies.

    All bounds are derived automatically by the static requirement
    analysis: visibility gives the distance bound ``M``, relative-heading
    requirements and the oncoming ``offset by``/``can see`` pattern give
    the heading arcs, and the class table gives minimum-fit radii.  The
    paper's headline (≥3x fewer candidates on pruning-friendly scenarios)
    shows up on the crossing-traffic cases; ``two_cars`` demonstrates the
    sound no-op (containment-only) behaviour.
    """
    cases = [
        ("two_cars", scenarios.two_cars()),
        ("close_car", scenarios.close_car()),
        ("oncoming", scenarios.oncoming_car()),
        ("crossing", scenarios.crossing_traffic()),
        ("merging", scenarios.merging_traffic()),
    ]
    comparisons = []
    for name, source in cases:
        comparisons.append(compare_pruning(source, name, samples=samples, seed=seed))
    return comparisons


def sampling_table(measurements: List[SamplingMeasurement]) -> str:
    rows = [
        TableRow(
            m.scenario_name,
            {
                "mean iters": m.mean_iterations,
                "max iters": m.max_iterations,
                "mean seconds": m.mean_seconds,
            },
        )
        for m in measurements
    ]
    return format_table("Scenario", ["mean iters", "max iters", "mean seconds"], rows)


def pruning_table(comparisons: List[PruningComparison]) -> str:
    rows = [
        TableRow(
            c.scenario_name,
            {
                "unpruned iters": c.unpruned_iterations,
                "pruned iters": c.pruned_iterations,
                "speedup": c.improvement_factor,
                "area ratio": c.area_ratio,
                "containment": c.technique_ratios.get("containment", 1.0),
                "orientation": c.technique_ratios.get("orientation", 1.0),
                "size": c.technique_ratios.get("size", 1.0),
            },
        )
        for c in comparisons
    ]
    return format_table(
        "Scenario",
        [
            "unpruned iters",
            "pruned iters",
            "speedup",
            "area ratio",
            "containment",
            "orientation",
            "size",
        ],
        rows,
    )


__all__ = [
    "SamplingMeasurement",
    "PruningComparison",
    "measure_sampling",
    "measure_gallery_sampling",
    "compare_pruning",
    "run_pruning_experiment",
    "sampling_table",
    "pruning_table",
]

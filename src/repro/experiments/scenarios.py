"""The Scenic programs used by the evaluation (Sec. 6 and Appendix A).

Each function returns Scenic source text; ``compile_scenario`` turns it into
a ready-to-sample :class:`repro.core.Scenario`.  Keeping the programs as
Scenic source (rather than Python builder calls) means every experiment also
exercises the full language front end, as in the original system.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.scenario import Scenario
from ..language import scenario_from_string

# ---------------------------------------------------------------------------
# Sec. 6.2: generic k-car scenarios and their specialisations
# ---------------------------------------------------------------------------


def generic_cars(car_count: int, weather: Optional[str] = None, time_minutes: Optional[float] = None) -> str:
    """The generic k-car scenario: cars face within 10° of the road direction.

    Optionally fixes the weather and time of day, which is how the
    good-conditions (noon, sunny) and bad-conditions (midnight, rain) test
    scenarios of Sec. 6.2 are derived from the generic one.
    """
    lines = ["import gtaLib"]
    if weather is not None:
        lines.append(f"param weather = '{weather}'")
    if time_minutes is not None:
        lines.append(f"param time = {time_minutes}")
    lines += [
        "wiggle = (-10 deg, 10 deg)",
        "ego = EgoCar with roadDeviation wiggle",
    ]
    for _ in range(car_count):
        lines.append("Car visible, with roadDeviation resample(wiggle)")
    return "\n".join(lines) + "\n"


def good_conditions(car_count: int) -> str:
    """Noon, sunny — the 'good road conditions' specialisation."""
    return generic_cars(car_count, weather="EXTRASUNNY", time_minutes=12 * 60)


def bad_conditions(car_count: int) -> str:
    """Midnight, rainy — the 'bad road conditions' specialisation."""
    return generic_cars(car_count, weather="RAIN", time_minutes=0)


# ---------------------------------------------------------------------------
# Sec. 6.3: overlapping cars and the 'Driving in the Matrix'-style baseline
# ---------------------------------------------------------------------------


def two_cars() -> str:
    """The generic two-car scenario (Appendix A.7)."""
    return generic_cars(2)


def overlapping_cars() -> str:
    """One car partially occluding another (Fig. 8 / Appendix A.8)."""
    return (
        "import gtaLib\n"
        "wiggle = (-10 deg, 10 deg)\n"
        "ego = EgoCar with roadDeviation wiggle\n"
        "c = Car visible, with roadDeviation resample(wiggle)\n"
        "leftRight = Uniform(1.0, -1.0) * (1.25, 2.75)\n"
        "Car beyond c by leftRight @ (4, 10), with roadDeviation resample(wiggle)\n"
    )


def matrix_like(max_cars: int = 4) -> str:
    """A stand-in for the 'Driving in the Matrix' dataset.

    The Matrix data set was produced by letting GTA V's AI drive around
    randomly and taking screenshots: many cars, arbitrary positions, not
    guided towards any particular condition.  We model it as a scenario with
    several cars scattered over the visible road with unconstrained
    orientation deviations, *without* emphasising occlusion.
    """
    lines = [
        "import gtaLib",
        "ego = EgoCar with viewDistance 60, with viewAngle 80 deg",
    ]
    # A fixed number of visible cars with loose orientation; the Matrix
    # dataset's images frequently contain several cars at medium distances.
    for _ in range(max_cars):
        lines.append("Car visible, with roadDeviation (-30 deg, 30 deg)")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Sec. 6.4: the misclassified scene and its variant scenarios (Table 7)
# ---------------------------------------------------------------------------

#: A concrete scene in the spirit of Fig. 14: a single car viewed from behind
#: at a slight angle, close to the camera.  Positions refer to the synthetic
#: map's east-west road at y=100 (the road is 20 m wide, traffic heading east
#: on the southern carriageway).
_FAILURE_EGO = "ego = EgoCar at 106 @ 95, facing -90 deg"
_FAILURE_CAR = (
    "Car at 114 @ 96.5, facing -82 deg,"
    " with model CarModel.models['DOMINATOR'],"
    " with color CarColor.byteToReal([187, 162, 157])"
)


def original_failure() -> str:
    """The single misclassified scene, reproduced exactly (cf. Appendix A.6)."""
    return (
        "import gtaLib\n"
        "param time = 12 * 60\n"
        "param weather = 'EXTRASUNNY'\n"
        f"{_FAILURE_EGO}\n"
        f"{_FAILURE_CAR}\n"
    )


def variant_model_color() -> str:
    """Table 7 scenario (1): vary the car's model and colour only."""
    return (
        "import gtaLib\n"
        "param time = 12 * 60\n"
        "param weather = 'EXTRASUNNY'\n"
        f"{_FAILURE_EGO}\n"
        "Car at 114 @ 96.5, facing -82 deg\n"
    )


def variant_background() -> str:
    """Table 7 scenario (2): keep the relative configuration, vary the background."""
    return (
        "import gtaLib\n"
        "param time = 12 * 60\n"
        "param weather = 'EXTRASUNNY'\n"
        "ego = EgoCar\n"
        "Car offset by 1.5 @ 8,"
        " facing 8 deg relative to ego,"
        " with model CarModel.models['DOMINATOR'],"
        " with color CarColor.byteToReal([187, 162, 157])\n"
    )


def variant_noise() -> str:
    """Table 7 scenario (3): add noise to the original scene (Appendix A.6)."""
    return original_failure() + "mutate\n"


def variant_close_any_angle() -> str:
    """Table 7 scenario (4): vary the position but stay close to the camera."""
    return (
        "import gtaLib\n"
        "param time = 12 * 60\n"
        "param weather = 'EXTRASUNNY'\n"
        "ego = EgoCar\n"
        "c = Car visible, with roadDeviation (-10 deg, 10 deg),"
        " with model CarModel.models['DOMINATOR'],"
        " with color CarColor.byteToReal([187, 162, 157])\n"
        "require (distance to c) <= 15\n"
    )


def variant_any_position_same_angle() -> str:
    """Table 7 scenario (5): any position, same apparent angle."""
    return (
        "import gtaLib\n"
        "param time = 12 * 60\n"
        "param weather = 'EXTRASUNNY'\n"
        "ego = EgoCar\n"
        "Car visible, apparently facing 8 deg,"
        " with model CarModel.models['DOMINATOR'],"
        " with color CarColor.byteToReal([187, 162, 157])\n"
    )


def variant_any_position_any_angle() -> str:
    """Table 7 scenario (6): any position and angle (generic one-car)."""
    return (
        "import gtaLib\n"
        "param time = 12 * 60\n"
        "param weather = 'EXTRASUNNY'\n"
        "ego = EgoCar\n"
        "Car visible, with roadDeviation (-10 deg, 10 deg),"
        " with model CarModel.models['DOMINATOR'],"
        " with color CarColor.byteToReal([187, 162, 157])\n"
    )


def variant_background_model_color() -> str:
    """Table 7 scenario (7): vary background, model and colour."""
    return (
        "import gtaLib\n"
        "param time = 12 * 60\n"
        "param weather = 'EXTRASUNNY'\n"
        "ego = EgoCar\n"
        "Car offset by 1.5 @ 8, facing 8 deg relative to ego\n"
    )


def variant_close_same_angle() -> str:
    """Table 7 scenario (8): staying close, same apparent angle."""
    return (
        "import gtaLib\n"
        "param time = 12 * 60\n"
        "param weather = 'EXTRASUNNY'\n"
        "ego = EgoCar\n"
        "c = Car visible, apparently facing 8 deg,"
        " with model CarModel.models['DOMINATOR'],"
        " with color CarColor.byteToReal([187, 162, 157])\n"
        "require (distance to c) <= 15\n"
    )


def variant_close_varying_model() -> str:
    """Table 7 scenario (9): staying close, varying the model."""
    return (
        "import gtaLib\n"
        "param time = 12 * 60\n"
        "param weather = 'EXTRASUNNY'\n"
        "ego = EgoCar\n"
        "c = Car visible, with roadDeviation (-10 deg, 10 deg)\n"
        "require (distance to c) <= 15\n"
    )


def debugging_variants() -> Dict[str, str]:
    """All nine Table 7 scenarios keyed by their row number."""
    return {
        "(1) varying model and color": variant_model_color(),
        "(2) varying background": variant_background(),
        "(3) varying local position, orientation": variant_noise(),
        "(4) varying position but staying close": variant_close_any_angle(),
        "(5) any position, same apparent angle": variant_any_position_same_angle(),
        "(6) any position and angle": variant_any_position_any_angle(),
        "(7) varying background, model, color": variant_background_model_color(),
        "(8) staying close, same apparent angle": variant_close_same_angle(),
        "(9) staying close, varying model": variant_close_varying_model(),
    }


# ---------------------------------------------------------------------------
# Table 8: retraining scenarios
# ---------------------------------------------------------------------------


def close_car() -> str:
    """The 'close car' retraining scenario of Table 8."""
    return (
        "import gtaLib\n"
        "ego = EgoCar\n"
        "c = Car visible, with roadDeviation (-10 deg, 10 deg)\n"
        "require (distance to c) <= 15\n"
    )


def close_car_shallow_angle() -> str:
    """The 'close car at shallow angle' retraining scenario of Table 8."""
    return (
        "import gtaLib\n"
        "ego = EgoCar\n"
        "c = Car visible, with roadDeviation (-10 deg, 10 deg)\n"
        "require (distance to c) <= 15\n"
        "require abs(relative heading of c) <= 15 deg\n"
    )


# ---------------------------------------------------------------------------
# Pruning / sampling-performance scenarios (Sec. 5.2 / App. D)
# ---------------------------------------------------------------------------


def bumper_to_bumper() -> str:
    """Bumper-to-bumper traffic (Fig. 1 / Appendix A.11)."""
    return (
        "import gtaLib\n"
        "depth = 4\n"
        "laneGap = 3.5\n"
        "carGap = (1, 3)\n"
        "laneShift = (-2, 2)\n"
        "wiggle = (-5 deg, 5 deg)\n"
        "modelDist = CarModel.defaultModel()\n"
        "\n"
        "def createLaneAt(car):\n"
        "    createPlatoonAt(car, depth, dist=carGap, wiggle=wiggle, model=modelDist)\n"
        "\n"
        "ego = Car with visibleDistance 60\n"
        "leftCar = carAheadOfCar(ego, laneShift + carGap, offsetX=-laneGap, wiggle=wiggle)\n"
        "createLaneAt(leftCar)\n"
        "midCar = carAheadOfCar(ego, resample(carGap), wiggle=wiggle)\n"
        "createLaneAt(midCar)\n"
        "rightCar = carAheadOfCar(ego, resample(laneShift) + resample(carGap), offsetX=laneGap, wiggle=wiggle)\n"
        "createLaneAt(rightCar)\n"
    )


def platoon() -> str:
    """A daytime platoon (Appendix A.10)."""
    return (
        "import gtaLib\n"
        "param time = (8, 20) * 60\n"
        "ego = Car with visibleDistance 60\n"
        "c2 = Car visible\n"
        "platoon = createPlatoonAt(c2, 5, dist=(2, 8))\n"
    )


def badly_parked_car() -> str:
    """A badly-parked car near the curb (Fig. 3 / Appendix A.4)."""
    return (
        "import gtaLib\n"
        "ego = Car\n"
        "spot = OrientedPoint on visible curb\n"
        "badAngle = Uniform(1.0, -1.0) * (10, 20) deg\n"
        "Car left of spot by 0.5, facing badAngle relative to roadDirection\n"
    )


def oncoming_car() -> str:
    """A car roughly facing the camera (Appendix A.5)."""
    return (
        "import gtaLib\n"
        "ego = Car\n"
        "car2 = Car offset by (-10, 10) @ (20, 40), with viewAngle 30 deg\n"
        "require car2 can see ego\n"
    )


def crossing_traffic() -> str:
    """A visible car cutting across the ego's road from the left.

    The flagship case for automatic orientation pruning (Sec. 5.2, Alg. 2):
    the relative-heading requirement pins the other car to a perpendicular
    carriageway, and the built-in visibility constraint bounds the distance,
    so static analysis prunes both cars' road regions down to the
    neighbourhoods of crossings.
    """
    return (
        "import gtaLib\n"
        "ego = EgoCar\n"
        "c = Car\n"
        "require (relative heading of c) >= 60 deg\n"
        "require (relative heading of c) <= 120 deg\n"
    )


def merging_traffic() -> str:
    """Crossing traffic from the right, as a single conjunctive requirement."""
    return (
        "import gtaLib\n"
        "ego = EgoCar\n"
        "c = Car\n"
        "require (relative heading of c) >= -120 deg and (relative heading of c) <= -60 deg\n"
    )


def mars_bottleneck() -> str:
    """The Mars-rover rubble field with a bottleneck (Fig. 22 / Appendix A.12)."""
    return (
        "import mars\n"
        "ego = Rover at 0 @ -2\n"
        "goal = Goal at (-2, 2) @ (2, 2.5)\n"
        "\n"
        "halfGapWidth = (1.2 * ego.width) / 2\n"
        "bottleneck = OrientedPoint offset by (-1.5, 1.5) @ (0.5, 1.5), facing (-30, 30) deg\n"
        "require abs((angle to goal) - (angle to bottleneck)) <= 10 deg\n"
        "BigRock at bottleneck\n"
        "\n"
        "leftEnd = OrientedPoint left of bottleneck by halfGapWidth, facing (60, 120) deg relative to bottleneck\n"
        "rightEnd = OrientedPoint right of bottleneck by halfGapWidth, facing (-120, -60) deg relative to bottleneck\n"
        "Pipe ahead of leftEnd, with height (1, 2)\n"
        "Pipe ahead of rightEnd, with height (1, 2)\n"
        "\n"
        "BigRock beyond bottleneck by (-0.5, 0.5) @ (0.5, 1)\n"
        "BigRock beyond bottleneck by (-0.5, 0.5) @ (0.5, 1)\n"
        "Pipe\n"
        "Rock\n"
        "Rock\n"
        "Rock\n"
    )


GALLERY = {
    "simplest": "import gtaLib\nego = Car\nCar\n",
    "single_car": generic_cars(1),
    "badly_parked": badly_parked_car(),
    "oncoming": oncoming_car(),
    "two_cars": two_cars(),
    "overlapping": overlapping_cars(),
    "four_cars_bad_conditions": bad_conditions(4),
    "platoon": platoon(),
    "bumper_to_bumper": bumper_to_bumper(),
    "crossing_traffic": crossing_traffic(),
    "merging_traffic": merging_traffic(),
    "mars_bottleneck": mars_bottleneck(),
}


def compile_scenario(source: str) -> Scenario:
    """Compile Scenic source text into a scenario ready for sampling.

    Routed through the content-addressed artifact cache of
    :mod:`repro.language.compiler`: experiments re-compile the same handful
    of gallery programs hundreds of times, and warm compiles skip the lexer
    and parser.  Each call still returns an *independent* scenario (the
    pruning harnesses mutate sampling regions in place, so sharing would be
    unsound — see ``docs/sampling.md``).
    """
    return scenario_from_string(source)


__all__ = [
    "generic_cars",
    "good_conditions",
    "bad_conditions",
    "two_cars",
    "overlapping_cars",
    "matrix_like",
    "original_failure",
    "debugging_variants",
    "close_car",
    "close_car_shallow_angle",
    "bumper_to_bumper",
    "platoon",
    "badly_parked_car",
    "oncoming_car",
    "crossing_traffic",
    "merging_traffic",
    "mars_bottleneck",
    "GALLERY",
    "compile_scenario",
]

"""App. D — the two-car/overlap mixture sweep (Table 10) and the IoU
distribution of the training sets (Fig. 36).

Table 10 repeats the rare-events experiment with the generic two-car
scenario as the baseline, sweeping the mixture ratio from 100/0 to 70/30:
recall on the overlapping test set improves steadily with more overlap
images while the two-car test set is unaffected.  Fig. 36 justifies the
setup by showing that ground-truth boxes in the overlap training set have
far higher pairwise IoU than in the generic two-car set.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..perception.metrics import iou
from ..perception.training import (
    Dataset,
    TrainingConfig,
    evaluate_detector,
    train_detector,
)
from . import scenarios
from .reporting import TableRow, format_table, mean_and_spread


@dataclass
class MixtureSweepRow:
    """Metrics of one mixture ratio of the Table 10 sweep."""

    mixture_label: str
    twocar_precision: Tuple[float, float]
    twocar_recall: Tuple[float, float]
    overlap_precision: Tuple[float, float]
    overlap_recall: Tuple[float, float]


@dataclass
class MixtureSweepResult:
    rows: List[MixtureSweepRow]
    runs: int
    training_images: int

    def to_table(self) -> str:
        table_rows = [
            TableRow(
                row.mixture_label,
                {
                    "T_twocar Prec": 100 * row.twocar_precision[0],
                    "T_twocar Rec": 100 * row.twocar_recall[0],
                    "T_overlap Prec": 100 * row.overlap_precision[0],
                    "T_overlap Rec": 100 * row.overlap_recall[0],
                },
            )
            for row in self.rows
        ]
        return format_table(
            "Mixture", ["T_twocar Prec", "T_twocar Rec", "T_overlap Prec", "T_overlap Rec"], table_rows
        )


def run_mixture_sweep(
    scale: float = 0.05,
    mixtures: Sequence[float] = (0.0, 0.10, 0.20, 0.30),
    runs: int = 3,
    seed: int = 0,
    training_config: Optional[TrainingConfig] = None,
    strategy: str = "rejection",
) -> MixtureSweepResult:
    """The Table 10 sweep: replace ``fraction`` of X_twocar with X_overlap.

    *strategy* picks the :mod:`repro.sampling` strategy used to generate the
    four datasets.
    """
    train_count = max(20, int(round(1000 * scale)))
    test_count = max(10, int(round(400 * scale)))

    twocar_scenario = scenarios.compile_scenario(scenarios.two_cars())
    overlap_scenario = scenarios.compile_scenario(scenarios.overlapping_cars())

    x_twocar = Dataset.from_scenario(
        twocar_scenario, train_count, "X_twocar", seed=seed, strategy=strategy
    )
    x_overlap = Dataset.from_scenario(
        overlap_scenario, train_count, "X_overlap", seed=seed + 1, strategy=strategy
    )
    t_twocar = Dataset.from_scenario(
        twocar_scenario, test_count, "T_twocar", seed=seed + 2, strategy=strategy
    )
    t_overlap = Dataset.from_scenario(
        overlap_scenario, test_count, "T_overlap", seed=seed + 3, strategy=strategy
    )

    rows: List[MixtureSweepRow] = []
    for fraction in mixtures:
        twocar_precisions, twocar_recalls = [], []
        overlap_precisions, overlap_recalls = [], []
        for run in range(runs):
            rng = _random.Random(seed + 31 * run + int(fraction * 100))
            training_set = (
                x_twocar.mixed_with(x_overlap, fraction, rng) if fraction > 0 else x_twocar
            )
            config = training_config if training_config is not None else TrainingConfig(seed=run)
            detector = train_detector(training_set, config)
            twocar_metrics = evaluate_detector(detector, t_twocar)
            overlap_metrics = evaluate_detector(detector, t_overlap)
            twocar_precisions.append(twocar_metrics.precision)
            twocar_recalls.append(twocar_metrics.recall)
            overlap_precisions.append(overlap_metrics.precision)
            overlap_recalls.append(overlap_metrics.recall)
        label = f"{100 - int(100 * fraction)}/{int(100 * fraction)}"
        rows.append(
            MixtureSweepRow(
                mixture_label=label,
                twocar_precision=mean_and_spread(twocar_precisions),
                twocar_recall=mean_and_spread(twocar_recalls),
                overlap_precision=mean_and_spread(overlap_precisions),
                overlap_recall=mean_and_spread(overlap_recalls),
            )
        )
    return MixtureSweepResult(rows=rows, runs=runs, training_images=train_count)


# ---------------------------------------------------------------------------
# Fig. 36: IoU distribution of the two training sets
# ---------------------------------------------------------------------------


def max_pairwise_iou(boxes: Sequence) -> float:
    """The largest IoU between any two ground-truth boxes of one image."""
    best = 0.0
    for index, first in enumerate(boxes):
        for second in boxes[index + 1:]:
            best = max(best, iou(first.box, second.box))
    return best


def iou_histogram(
    dataset: Dataset,
    bin_edges: Sequence[float] = tuple(i * 0.05 for i in range(11)),
) -> Dict[str, int]:
    """Histogram of per-image maximum pairwise IoU (the quantity of Fig. 36)."""
    counts = {f"{bin_edges[i]:.2f}-{bin_edges[i + 1]:.2f}": 0 for i in range(len(bin_edges) - 1)}
    overflow_label = f">={bin_edges[-1]:.2f}"
    counts[overflow_label] = 0
    for image in dataset.images:
        value = max_pairwise_iou(image.boxes)
        placed = False
        for i in range(len(bin_edges) - 1):
            if bin_edges[i] <= value < bin_edges[i + 1]:
                counts[f"{bin_edges[i]:.2f}-{bin_edges[i + 1]:.2f}"] += 1
                placed = True
                break
        if not placed:
            counts[overflow_label] += 1
    return counts


@dataclass
class IouDistributionResult:
    """The Fig. 36 comparison: IoU histograms of X_twocar and X_overlap."""

    twocar_histogram: Dict[str, int]
    overlap_histogram: Dict[str, int]
    twocar_mean_iou: float
    overlap_mean_iou: float

    def to_table(self) -> str:
        bins = list(self.twocar_histogram)
        rows = [
            TableRow(bin_label, {
                "X_twocar": float(self.twocar_histogram[bin_label]),
                "X_overlap": float(self.overlap_histogram.get(bin_label, 0)),
            })
            for bin_label in bins
        ]
        return format_table("IoU bin", ["X_twocar", "X_overlap"], rows)


def run_iou_distribution(
    scale: float = 0.1, seed: int = 0, strategy: str = "rejection"
) -> IouDistributionResult:
    """Regenerate Fig. 36 (per-image max IoU histograms of the two training sets)."""
    count = max(20, int(round(1000 * scale)))
    twocar_scenario = scenarios.compile_scenario(scenarios.two_cars())
    overlap_scenario = scenarios.compile_scenario(scenarios.overlapping_cars())
    x_twocar = Dataset.from_scenario(
        twocar_scenario, count, "X_twocar", seed=seed, strategy=strategy
    )
    x_overlap = Dataset.from_scenario(
        overlap_scenario, count, "X_overlap", seed=seed + 1, strategy=strategy
    )

    twocar_values = [max_pairwise_iou(image.boxes) for image in x_twocar.images]
    overlap_values = [max_pairwise_iou(image.boxes) for image in x_overlap.images]
    return IouDistributionResult(
        twocar_histogram=iou_histogram(x_twocar),
        overlap_histogram=iou_histogram(x_overlap),
        twocar_mean_iou=sum(twocar_values) / max(1, len(twocar_values)),
        overlap_mean_iou=sum(overlap_values) / max(1, len(overlap_values)),
    )


#: Table 10 as reported in the paper (percent).
PAPER_TABLE10 = {
    "100/0": {"twocar_precision": 96.5, "twocar_recall": 95.7, "overlap_precision": 94.6, "overlap_recall": 82.1},
    "90/10": {"twocar_precision": 95.3, "twocar_recall": 96.2, "overlap_precision": 93.9, "overlap_recall": 86.9},
    "80/20": {"twocar_precision": 96.5, "twocar_recall": 96.0, "overlap_precision": 96.2, "overlap_recall": 89.7},
    "70/30": {"twocar_precision": 96.5, "twocar_recall": 96.5, "overlap_precision": 96.0, "overlap_recall": 90.1},
}


__all__ = [
    "MixtureSweepRow",
    "MixtureSweepResult",
    "run_mixture_sweep",
    "max_pairwise_iou",
    "iou_histogram",
    "IouDistributionResult",
    "run_iou_distribution",
    "PAPER_TABLE10",
]

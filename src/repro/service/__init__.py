"""Async, sharded scene-generation service over compiled-scenario artifacts.

This package is the serving layer on top of the sampling stack (see
``docs/index.md`` for the full layer diagram and ``docs/service.md`` for the
guide):

* :mod:`repro.service.service` — :class:`GenerationService`, the asyncio
  front end: ``await service.generate(source_or_hash, n, seed, strategy)``
  shards a batch across a persistent worker-process pool with
  splitmix64-derived per-scene seeds (bit-identical results regardless of
  worker count), routes shards to workers by artifact fingerprint so
  per-worker engine caches stay warm, enforces backpressure, and rolls
  per-request sampling statistics up into the response.
  :meth:`GenerationService.generate_stream` yields scene blocks as shards
  complete instead of buffering the whole batch.
* :mod:`repro.service.worker` — the worker-process side: a process-local
  artifact cache plus a bound-engine LRU, so warm shards skip the parser
  and interpreter entirely.
* :mod:`repro.service.fusion` — cross-request kernel fusion for the inline
  (``workers=0``) mode: :class:`FusionHub` coalesces concurrent shards'
  geometry-kernel calls into one fused launch per tick, bit-identically
  (``GenerationService(fusion=True)``; see ``docs/backends.md``).
* :mod:`repro.service.transport` — the columnar scene-block wire format
  (structured numpy buffers, optionally carried over shared memory) that
  replaces per-scene dict pickling between workers and the coordinator.
* :mod:`repro.service.server` — a dependency-free JSON-lines TCP front end
  (blocking and streaming).
* :mod:`repro.service.server_http` — a stdlib-only HTTP/WebSocket front end
  (``/healthz``, ``/metrics``, ``POST /generate`` with NDJSON streaming,
  ``/ws``).
* :mod:`repro.service.protocol` — the plain-data request/response types and
  the seed-derivation contract.

CLI: ``python -m repro.service serve|smoke|parity|bench|generate`` (see
``python -m repro.service --help``).
"""

from .protocol import (
    GenerateResponse,
    derive_scene_seeds,
    scene_record,
    splitmix64,
)
from .server import (
    GenerationServer,
    RequestTooLargeError,
    request_over_tcp,
    stream_over_tcp,
)
from .fusion import FusedKernelBackend, FusionHub
from .server_http import HttpGenerationServer, http_request, websocket_generate
from .service import (
    GenerationFailedError,
    GenerationService,
    ServiceError,
    ServiceOverloadedError,
    generate_sync,
)
from .transport import SceneBlock, ShmBlockHandle

__all__ = [
    "FusedKernelBackend",
    "FusionHub",
    "GenerateResponse",
    "GenerationFailedError",
    "GenerationServer",
    "GenerationService",
    "HttpGenerationServer",
    "RequestTooLargeError",
    "SceneBlock",
    "ServiceError",
    "ServiceOverloadedError",
    "ShmBlockHandle",
    "derive_scene_seeds",
    "generate_sync",
    "http_request",
    "request_over_tcp",
    "scene_record",
    "splitmix64",
    "stream_over_tcp",
    "websocket_generate",
]

"""Async, sharded scene-generation service over compiled-scenario artifacts.

This package is the serving layer on top of the sampling stack (see
``docs/index.md`` for the full layer diagram and ``docs/service.md`` for the
guide):

* :mod:`repro.service.service` — :class:`GenerationService`, the asyncio
  front end: ``await service.generate(source_or_hash, n, seed, strategy)``
  shards a batch across a persistent worker-process pool with
  splitmix64-derived per-scene seeds (bit-identical results regardless of
  worker count), enforces backpressure, and rolls per-request sampling
  statistics up into the response.
* :mod:`repro.service.worker` — the worker-process side: a process-local
  artifact cache plus bound-engine reuse, so warm shards skip the parser
  and interpreter entirely.
* :mod:`repro.service.server` — a dependency-free JSON-lines TCP front end.
* :mod:`repro.service.protocol` — the plain-data request/response types and
  the seed-derivation contract.

CLI: ``python -m repro.service serve|smoke|bench|generate`` (see
``python -m repro.service --help``).
"""

from .protocol import (
    GenerateResponse,
    derive_scene_seeds,
    scene_record,
    splitmix64,
)
from .server import GenerationServer, request_over_tcp
from .service import (
    GenerationFailedError,
    GenerationService,
    ServiceError,
    ServiceOverloadedError,
    generate_sync,
)

__all__ = [
    "GenerateResponse",
    "GenerationFailedError",
    "GenerationServer",
    "GenerationService",
    "ServiceError",
    "ServiceOverloadedError",
    "derive_scene_seeds",
    "generate_sync",
    "request_over_tcp",
    "scene_record",
    "splitmix64",
]

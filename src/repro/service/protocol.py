"""Wire-level types shared by the generation service and its workers.

Everything in this module is deliberately *plain data* — dicts, lists,
dataclasses of primitives — because it crosses two boundaries: the process
boundary between the asyncio front end and the worker pool (pickle), and
the TCP boundary between the JSON-lines server and remote clients (JSON).
Live :class:`~repro.core.scene.Scene` objects close over interpreter state
and cannot cross either, so scenes travel as *scene records*: the same
class/position/heading/width/height summary the golden corpus pins down
(``tests/golden/``), which is also exactly what batch consumers (training
pipelines, exporters) read off a scene.

Seed derivation lives here too, because the determinism contract is part of
the protocol: see :func:`derive_scene_seeds`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Scene-seed derivation modes accepted by ``generate`` requests.
DERIVE_MODES = ("splitmix", "direct")

_MASK64 = 0xFFFFFFFFFFFFFFFF


def splitmix64(state: int) -> int:
    """One step of the splitmix64 mixer (public-domain constants).

    Used to derive statistically independent per-scene seeds from
    ``master_seed + index`` so shards can be cut anywhere without changing
    any scene: scene *i*'s RNG depends only on ``(master_seed, i)``.
    """
    z = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def derive_scene_seeds(master_seed: int, count: int, derive: str = "splitmix") -> Optional[List[int]]:
    """Per-scene seeds for a *count*-scene request.

    ``"splitmix"`` (the scale path): scene *i* gets
    ``splitmix64(master_seed + i)`` and is sampled with its own
    ``random.Random`` — a pure function of ``(master_seed, i)``, so the
    batch is bit-identical no matter how it is sharded across workers or
    how many workers exist (the same contract :class:`ParallelSampler`
    established in-process, now across the service's process pool).

    ``"direct"`` (the parity path): returns ``None`` — the whole request
    runs as one shard drawing sequentially from ``random.Random(master_seed)``,
    which is draw-for-draw what ``Scenario.generate_batch(count, seed=...)``
    does; with ``count=1`` it reproduces ``Scenario.generate(seed=...)`` and
    therefore the golden corpus (``tests/golden/``) bit-identically.
    """
    if derive == "direct":
        return None
    if derive != "splitmix":
        raise ValueError(f"unknown seed-derivation mode {derive!r} (known: {DERIVE_MODES})")
    return [splitmix64((master_seed + index) & _MASK64) for index in range(count)]


# ---------------------------------------------------------------------------
# Scene records
# ---------------------------------------------------------------------------


def _json_safe(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    return repr(value)


def scene_record(scene: Any, iterations: Optional[int] = None) -> Dict[str, Any]:
    """A JSON-safe, full-precision summary of one sampled scene.

    The object fields mirror the golden corpus (``tests/golden/regen.py``)
    so service output can be diffed against it directly.
    """
    from ..core.vectors import Vector

    record: Dict[str, Any] = {
        "ego_index": scene.objects.index(scene.ego),
        "objects": [
            {
                "class": type(scenic_object).__name__,
                "position": list(Vector.from_any(scenic_object.position)),
                "heading": float(scenic_object.heading),
                "width": float(scenic_object.width),
                "height": float(scenic_object.height),
            }
            for scenic_object in scene.objects
        ],
        "params": _json_safe(getattr(scene, "params", {})),
    }
    if iterations is not None:
        record["iterations"] = iterations
    weight = getattr(scene, "importance_weight", 1.0)
    if weight != 1.0:
        # Only constructive strategies stamp a non-trivial weight; leaving
        # the default off the wire keeps existing record consumers (and the
        # golden-corpus diffability) byte-stable for every other strategy.
        record["importance_weight"] = float(weight)
    return record


# ---------------------------------------------------------------------------
# Requests and responses
# ---------------------------------------------------------------------------


@dataclass
class ShardPayload:
    """One worker-pool task: sample a slice of a request's scene indices.

    Crosses the process boundary as-is (dataclass of primitives).  When
    ``seeds`` is present it pairs with ``indices`` one-to-one (splitmix
    mode); otherwise the shard draws ``len(indices)`` scenes sequentially
    from ``Random(master_seed)`` (direct mode, necessarily a single shard).
    """

    fingerprint: str
    source: str
    strategy: str
    strategy_options: Dict[str, Any]
    max_iterations: int
    indices: List[int]
    seeds: Optional[List[int]]  # None = sequential/direct mode
    master_seed: int
    record_iterations: bool = True


@dataclass
class ShardOutcome:
    """What one worker hands back for one :class:`ShardPayload`."""

    indices: List[int]
    records: List[Dict[str, Any]]
    stats: Dict[str, Any]
    cache_hit: bool
    worker_pid: int
    elapsed_seconds: float
    error: Optional[Dict[str, Any]] = None


@dataclass
class GenerateResponse:
    """The front end's answer to one ``generate`` request.

    ``scenes`` holds scene records in index order.  ``stats`` is the
    request-wide roll-up (merged from every shard's
    :class:`~repro.sampling.AggregateStats`): accepted scenes, candidate
    iterations, the rejection breakdown by cause, worker cache hits and
    wall-clock time.
    """

    fingerprint: str
    strategy: str
    seed: int
    derive: str
    scenes: List[Dict[str, Any]] = field(default_factory=list)
    stats: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "strategy": self.strategy,
            "seed": self.seed,
            "derive": self.derive,
            "scenes": self.scenes,
            "stats": self.stats,
        }


def merge_shard_stats(outcomes: List[ShardOutcome]) -> Dict[str, Any]:
    """Roll per-shard stats dicts up into one request-wide stats dict."""
    # Rejection causes are owned by AggregateStats.rejection_breakdown (the
    # worker emits them); accumulating whatever keys arrive keeps this the
    # only service-side merge and never drops a newly added cause.
    totals: Dict[str, Any] = {
        "scenes": 0,
        "draws": 0,
        "iterations": 0,
        "rejections": {},
        "component_redraws": 0,
        "candidates_drawn": 0,
        "sampling_seconds": 0.0,
        "shards": len(outcomes),
        "worker_cache_hits": 0,
        "workers": [],
        "importance_weight_sum": 0.0,
        "importance_scenes": 0,
    }
    for outcome in outcomes:
        shard = outcome.stats
        totals["scenes"] += shard.get("scenes", 0)
        totals["draws"] += shard.get("draws", 0)
        totals["iterations"] += shard.get("iterations", 0)
        totals["component_redraws"] += shard.get("component_redraws", 0)
        totals["candidates_drawn"] += shard.get("candidates_drawn", 0)
        totals["sampling_seconds"] += shard.get("sampling_seconds", 0.0)
        for cause, count in shard.get("rejections", {}).items():
            totals["rejections"][cause] = totals["rejections"].get(cause, 0) + count
        totals["worker_cache_hits"] += 1 if outcome.cache_hit else 0
        if outcome.worker_pid not in totals["workers"]:
            totals["workers"].append(outcome.worker_pid)
        totals["importance_weight_sum"] += shard.get("importance_weight_sum", 0.0)
        totals["importance_scenes"] += shard.get("importance_scenes", 0)
    totals["workers"].sort()
    # The comparable drawn-candidate count (proposal draws for constructive
    # strategies, iterations otherwise) and the mean importance weight.
    totals["candidates"] = max(totals["iterations"], totals["candidates_drawn"])
    if totals["importance_scenes"]:
        totals["mean_importance_weight"] = (
            totals["importance_weight_sum"] / totals["importance_scenes"]
        )
    return totals


__all__ = [
    "DERIVE_MODES",
    "GenerateResponse",
    "ShardOutcome",
    "ShardPayload",
    "derive_scene_seeds",
    "merge_shard_stats",
    "scene_record",
    "splitmix64",
]

"""Wire-level types shared by the generation service and its workers.

Everything in this module is deliberately *plain data* — dicts, lists,
dataclasses of primitives — because it crosses two boundaries: the process
boundary between the asyncio front end and the worker pool (pickle), and
the TCP boundary between the JSON-lines server and remote clients (JSON).
Live :class:`~repro.core.scene.Scene` objects close over interpreter state
and cannot cross either, so scenes travel as *scene records*: the same
class/position/heading/width/height summary the golden corpus pins down
(``tests/golden/``), which is also exactly what batch consumers (training
pipelines, exporters) read off a scene.

Seed derivation lives here too, because the determinism contract is part of
the protocol: see :func:`derive_scene_seeds`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .transport import DEFAULT_SHM_THRESHOLD, SceneBlock, materialize_block

#: Cross-process carriers for a shard's scene block.  ``"pickle"`` ships the
#: columnar arrays through the pool's result pipe; ``"shm"`` copies large
#: blocks into a shared-memory segment and pickles only its name + layout.
TRANSPORT_MODES = ("pickle", "shm")

#: Scene-seed derivation modes accepted by ``generate`` requests.
DERIVE_MODES = ("splitmix", "direct")

_MASK64 = 0xFFFFFFFFFFFFFFFF


def splitmix64(state: int) -> int:
    """One step of the splitmix64 mixer (public-domain constants).

    Used to derive statistically independent per-scene seeds from
    ``master_seed + index`` so shards can be cut anywhere without changing
    any scene: scene *i*'s RNG depends only on ``(master_seed, i)``.
    """
    z = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def derive_scene_seeds(master_seed: int, count: int, derive: str = "splitmix") -> Optional[List[int]]:
    """Per-scene seeds for a *count*-scene request.

    ``"splitmix"`` (the scale path): scene *i* gets
    ``splitmix64(master_seed + i)`` and is sampled with its own
    ``random.Random`` — a pure function of ``(master_seed, i)``, so the
    batch is bit-identical no matter how it is sharded across workers or
    how many workers exist (the same contract :class:`ParallelSampler`
    established in-process, now across the service's process pool).

    ``"direct"`` (the parity path): returns ``None`` — the whole request
    runs as one shard drawing sequentially from ``random.Random(master_seed)``,
    which is draw-for-draw what ``Scenario.generate_batch(count, seed=...)``
    does; with ``count=1`` it reproduces ``Scenario.generate(seed=...)`` and
    therefore the golden corpus (``tests/golden/``) bit-identically.
    """
    if derive == "direct":
        return None
    if derive != "splitmix":
        raise ValueError(f"unknown seed-derivation mode {derive!r} (known: {DERIVE_MODES})")
    return [splitmix64((master_seed + index) & _MASK64) for index in range(count)]


# ---------------------------------------------------------------------------
# Scene records
# ---------------------------------------------------------------------------


def _json_safe(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    return repr(value)


def scene_record(scene: Any, iterations: Optional[int] = None) -> Dict[str, Any]:
    """A JSON-safe, full-precision summary of one sampled scene.

    The object fields mirror the golden corpus (``tests/golden/regen.py``)
    so service output can be diffed against it directly.
    """
    from ..core.vectors import Vector

    record: Dict[str, Any] = {
        "ego_index": scene.objects.index(scene.ego),
        "objects": [
            {
                "class": type(scenic_object).__name__,
                "position": list(Vector.from_any(scenic_object.position)),
                "heading": float(scenic_object.heading),
                "width": float(scenic_object.width),
                "height": float(scenic_object.height),
            }
            for scenic_object in scene.objects
        ],
        "params": _json_safe(getattr(scene, "params", {})),
    }
    if iterations is not None:
        record["iterations"] = iterations
    weight = getattr(scene, "importance_weight", 1.0)
    if weight != 1.0:
        # Only constructive strategies stamp a non-trivial weight; leaving
        # the default off the wire keeps existing record consumers (and the
        # golden-corpus diffability) byte-stable for every other strategy.
        record["importance_weight"] = float(weight)
    return record


# ---------------------------------------------------------------------------
# Requests and responses
# ---------------------------------------------------------------------------


@dataclass
class ShardPayload:
    """One worker-pool task: sample a slice of a request's scene indices.

    Crosses the process boundary as-is (dataclass of primitives).  When
    ``seeds`` is present it pairs with ``indices`` one-to-one (splitmix
    mode); otherwise the shard draws ``len(indices)`` scenes sequentially
    from ``Random(master_seed)`` (direct mode, necessarily a single shard).
    """

    fingerprint: str
    source: str
    strategy: str
    strategy_options: Dict[str, Any]
    max_iterations: int
    indices: List[int]
    seeds: Optional[List[int]]  # None = sequential/direct mode
    master_seed: int
    record_iterations: bool = True
    #: How the shard's scene block comes home: one of :data:`TRANSPORT_MODES`.
    transport: str = "pickle"
    #: Minimum block payload (bytes) before ``"shm"`` actually creates a
    #: segment; smaller blocks fall back to pickling their arrays.
    shm_threshold: int = DEFAULT_SHM_THRESHOLD


@dataclass
class ShardOutcome:
    """What one worker hands back for one :class:`ShardPayload`.

    Scenes travel as *one columnar block per shard* — either a
    :class:`~repro.service.transport.SceneBlock` (pickled numpy columns) or
    a :class:`~repro.service.transport.ShmBlockHandle` naming a
    shared-memory segment, per the payload's ``transport``.  Call
    :meth:`take_block` exactly once coordinator-side: it attaches, copies
    and unlinks any segment, so outcomes never leak shared memory.
    """

    indices: List[int]
    block: Any  # SceneBlock | ShmBlockHandle | None
    stats: Dict[str, Any]
    cache_hit: bool
    worker_pid: int
    elapsed_seconds: float
    error: Optional[Dict[str, Any]] = None
    #: True when the worker reused a bound engine (not just a warm artifact).
    engine_hit: bool = False

    def take_block(self) -> Optional[SceneBlock]:
        """Materialise the scene block, releasing any shared-memory segment."""
        block = materialize_block(self.block)
        self.block = block
        return block

    def discard_block(self) -> None:
        """Free the block's shared-memory segment without materialising.

        Error paths must call this (or :meth:`take_block`) for every
        outcome that arrives after a request already failed; a dropped
        handle would orphan its segment until interpreter exit.
        """
        if self.block is not None and hasattr(self.block, "discard"):
            self.block.discard()
        self.block = None


class GenerateResponse:
    """The front end's answer to one ``generate`` request.

    ``scenes`` holds scene records in index order.  Internally the response
    keeps the shards' columnar blocks and materialises JSON records
    *lazily*, on first ``scenes`` access — the protocol edge.  Callers that
    only read ``stats`` (health checks, throughput probes) never pay the
    per-scene dict construction.

    ``stats`` is the request-wide roll-up (merged from every shard's
    :class:`~repro.sampling.AggregateStats`): accepted scenes, candidate
    iterations, the rejection breakdown by cause, worker cache hits and
    wall-clock time.
    """

    def __init__(
        self,
        fingerprint: str,
        strategy: str,
        seed: int,
        derive: str,
        scenes: Optional[List[Dict[str, Any]]] = None,
        stats: Optional[Dict[str, Any]] = None,
    ):
        self.fingerprint = fingerprint
        self.strategy = strategy
        self.seed = seed
        self.derive = derive
        self.stats: Dict[str, Any] = stats if stats is not None else {}
        self._scenes: Optional[List[Dict[str, Any]]] = scenes
        self._blocks: List[Tuple[List[int], SceneBlock]] = []
        self._total = len(scenes) if scenes is not None else 0

    def attach_blocks(
        self, blocks: List[Tuple[List[int], SceneBlock]], total: int
    ) -> None:
        """Adopt the shards' ``(indices, block)`` pairs; records stay packed."""
        self._blocks = blocks
        self._total = total
        self._scenes = None

    @property
    def scenes(self) -> List[Dict[str, Any]]:
        """Scene records in index order (materialised on first access)."""
        if self._scenes is None:
            scenes: List[Optional[Dict[str, Any]]] = [None] * self._total
            for indices, block in self._blocks:
                for position, index in enumerate(indices):
                    scenes[index] = block.record_at(position)
            self._scenes = scenes  # type: ignore[assignment]  # shards cover 0..n-1
        return self._scenes

    @scenes.setter
    def scenes(self, value: List[Dict[str, Any]]) -> None:
        self._scenes = list(value)
        self._total = len(self._scenes)
        self._blocks = []

    @property
    def scene_count(self) -> int:
        """Number of scenes without forcing record materialisation."""
        return self._total

    def iter_blocks(self) -> Iterator[Tuple[List[int], SceneBlock]]:
        """The raw ``(indices, block)`` pairs, shard completion order."""
        return iter(self._blocks)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "strategy": self.strategy,
            "seed": self.seed,
            "derive": self.derive,
            "scenes": self.scenes,
            "stats": self.stats,
        }

    def __repr__(self) -> str:
        return (
            f"GenerateResponse({self.fingerprint[:12]}..., strategy={self.strategy!r}, "
            f"seed={self.seed}, scenes={self.scene_count})"
        )


def merge_shard_stats(outcomes: List[ShardOutcome]) -> Dict[str, Any]:
    """Roll per-shard stats dicts up into one request-wide stats dict."""
    # Rejection causes are owned by AggregateStats.rejection_breakdown (the
    # worker emits them); accumulating whatever keys arrive keeps this the
    # only service-side merge and never drops a newly added cause.
    totals: Dict[str, Any] = {
        "scenes": 0,
        "draws": 0,
        "iterations": 0,
        "rejections": {},
        "component_redraws": 0,
        "candidates_drawn": 0,
        "sampling_seconds": 0.0,
        "shards": len(outcomes),
        "worker_cache_hits": 0,
        "engine_cache_hits": 0,
        "workers": [],
        "importance_weight_sum": 0.0,
        "importance_scenes": 0,
        "candidates": 0,
    }
    for outcome in outcomes:
        shard = outcome.stats
        totals["scenes"] += shard.get("scenes", 0)
        totals["draws"] += shard.get("draws", 0)
        totals["iterations"] += shard.get("iterations", 0)
        totals["component_redraws"] += shard.get("component_redraws", 0)
        totals["candidates_drawn"] += shard.get("candidates_drawn", 0)
        totals["sampling_seconds"] += shard.get("sampling_seconds", 0.0)
        for cause, count in shard.get("rejections", {}).items():
            totals["rejections"][cause] = totals["rejections"].get(cause, 0) + count
        totals["worker_cache_hits"] += 1 if outcome.cache_hit else 0
        totals["engine_cache_hits"] += 1 if outcome.engine_hit else 0
        if outcome.worker_pid not in totals["workers"]:
            totals["workers"].append(outcome.worker_pid)
        totals["importance_weight_sum"] += shard.get("importance_weight_sum", 0.0)
        totals["importance_scenes"] += shard.get("importance_scenes", 0)
        # The comparable drawn-candidate count (proposal draws for
        # constructive strategies, iterations otherwise).  Each shard reports
        # its own max (AggregateStats.to_shard_stats); summing per-shard
        # maxima is exact, whereas the old max-of-request-totals undercounted
        # whenever a request mixed strategies across shards.  The fallback
        # keeps older shard dicts (no "candidates" key) mergeable.
        totals["candidates"] += shard.get(
            "candidates",
            max(shard.get("iterations", 0), shard.get("candidates_drawn", 0)),
        )
    totals["workers"].sort()
    if totals["importance_scenes"]:
        totals["mean_importance_weight"] = (
            totals["importance_weight_sum"] / totals["importance_scenes"]
        )
    return totals


__all__ = [
    "DERIVE_MODES",
    "TRANSPORT_MODES",
    "GenerateResponse",
    "ShardOutcome",
    "ShardPayload",
    "derive_scene_seeds",
    "merge_shard_stats",
    "scene_record",
    "splitmix64",
]

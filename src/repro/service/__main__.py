"""CLI for the generation service: ``python -m repro.service <command>``.

Commands
--------

``serve``
    Start the JSON-lines TCP server and run until a ``shutdown`` op (or
    Ctrl-C).  ``--port 0`` picks an ephemeral port and prints it.
    ``--http-port`` additionally serves the HTTP/WebSocket front end
    (``/healthz``, ``/metrics``, ``POST /generate``, ``/ws``);
    ``--transport shm|pickle`` picks the worker → coordinator scene
    carrier.
``smoke``
    Self-contained health check used by CI: starts a service, fires
    concurrent mixed-strategy requests at it, verifies the determinism
    contract (same request twice → identical scenes; sharded result is
    worker-count independent; streamed frames reassemble bit-identical to
    the blocking response), and shuts down cleanly.  Exits non-zero on any
    mismatch.
``parity``
    The fixed-seed streaming-parity campaign: for each strategy × worker
    count, the streamed frames must reassemble bit-identical to the
    blocking response and to inline (workers=0) execution.
``bench``
    Measure request throughput (scenes/second, warm cache) and print a
    small machine-readable JSON blob.  ``--check results/BENCH_7.json``
    turns it into a CI gate: exit non-zero unless the measured throughput
    clears ``--check-factor`` (default 10) times the BENCH_6 baseline
    recorded in the committed results file.
``generate``
    One-shot: compile a ``.scenic`` file (or ``-`` for stdin), sample ``-n``
    scenes, print the response JSON (``--stream``: NDJSON frames instead).

Examples::

    python -m repro.service serve --port 8923 --workers 2 --http-port 8924
    python -m repro.service smoke
    python -m repro.service parity --scenes 8 --seeds 2
    python -m repro.service generate examples/scenarios/two_cars.scenic -n 5 --seed 7
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

from .server import GenerationServer
from .server_http import HttpGenerationServer
from .service import GenerationService


def _sample_sources() -> dict:
    """Small embedded programs so the CLI needs no repository checkout."""
    from ..experiments import scenarios

    return {
        "two_cars": scenarios.two_cars(),
        "close_car": scenarios.close_car(),
        "mars": "import mars\nego = Rover at 0 @ -2\nRock\nRock\nPipe\n",
    }


async def _cmd_serve(args: argparse.Namespace) -> int:
    service = GenerationService(
        workers=args.workers,
        cache_dir=args.cache_dir,
        transport=args.transport,
        shm_threshold=args.shm_threshold,
    )
    server = GenerationServer(
        service, host=args.host, port=args.port,
        max_request_bytes=args.max_request_bytes,
    )
    await server.start()
    print(f"repro.service listening on {server.host}:{server.port} "
          f"({args.workers} workers, transport={service.transport})", flush=True)
    http_server = None
    if args.http_port is not None:
        http_server = HttpGenerationServer(service, host=args.host, port=args.http_port)
        # The service is shared (and already started); HttpGenerationServer
        # start() is idempotent on it.
        await http_server.start()
        print(f"repro.service http on {http_server.host}:{http_server.port} "
              f"(/healthz /metrics /generate /ws)", flush=True)
    try:
        await server.serve_until_shutdown()
    except (KeyboardInterrupt, asyncio.CancelledError):
        await server.close()
    finally:
        if http_server is not None:
            await http_server.close()  # service.close() is idempotent
    print("repro.service: clean shutdown")
    return 0


async def _cmd_smoke(args: argparse.Namespace) -> int:
    """The CI smoke: concurrency + determinism + clean shutdown, end to end."""
    sources = _sample_sources()
    failures = []

    async with GenerationService(workers=args.workers) as service:
        # 1. Sustained concurrency: >= 8 simultaneous mixed requests.
        requests = []
        for index in range(args.requests):
            name = list(sources)[index % len(sources)]
            strategy = ("rejection", "vectorized", "batch", "direct")[index % 4]
            requests.append(
                service.generate(
                    sources[name], n=3, seed=1000 + index, strategy=strategy,
                    max_iterations=20000,
                )
            )
        responses = await asyncio.gather(*requests)
        total_scenes = sum(len(response.scenes) for response in responses)
        print(f"smoke: {len(responses)} concurrent requests -> {total_scenes} scenes")

        # 2. Determinism: identical request -> identical scenes.
        first = await service.generate(sources["two_cars"], n=6, seed=42, max_iterations=20000)
        second = await service.generate(sources["two_cars"], n=6, seed=42, max_iterations=20000)
        if first.scenes != second.scenes:
            failures.append("repeat of an identical request changed the scenes")

        # Constructive-strategy diagnostics must surface in merged stats:
        # the comparable candidate count and per-scene importance weights.
        direct = await service.generate(
            sources["two_cars"], n=4, seed=9, strategy="direct", max_iterations=20000
        )
        direct_stats = direct.stats
        print(
            f"smoke: direct candidates={direct_stats.get('candidates')} "
            f"mean_importance_weight={direct_stats.get('mean_importance_weight')}"
        )
        if direct_stats.get("importance_scenes", 0) != len(direct.scenes):
            failures.append("direct scenes did not all carry importance weights")
        if direct_stats.get("candidates", 0) <= 0:
            failures.append("direct request reported no drawn candidates")

        # Streaming parity: frames reassembled by index must equal the
        # blocking response for the same (seed, n) bit-for-bit.
        streamed = [None] * 6
        frame_count = 0
        async for frame in service.generate_stream(
            sources["two_cars"], n=6, seed=42, max_iterations=20000
        ):
            if frame["frame"] == "block":
                frame_count += 1
                for index, record in zip(frame["indices"], frame["scenes"]):
                    streamed[index] = record
        if streamed != first.scenes:
            failures.append("streamed frames did not reassemble to the blocking response")
        print(f"smoke: streaming parity over {frame_count} block frames OK")

        stats = service.service_stats()
        print(f"smoke: stats {json.dumps(stats, default=str)}")

    # 3. Worker-count invariance of the sharded (splitmix) path.
    async with GenerationService(workers=0) as inline_service:
        inline = await inline_service.generate(
            sources["two_cars"], n=6, seed=42, max_iterations=20000
        )
        if inline.scenes != first.scenes:
            failures.append(
                f"sharded result differs between workers={args.workers} and inline execution"
            )

    if failures:
        for failure in failures:
            print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
        return 1
    print("smoke: determinism + concurrency + clean shutdown OK")
    return 0


async def _cmd_parity(args: argparse.Namespace) -> int:
    """Fixed-seed streaming-parity campaign (the CI determinism gate).

    For every strategy × worker count × seed: the streamed frames must
    reassemble bit-identically to the blocking response, which must itself
    be bit-identical across worker counts (inline included).
    """
    sources = _sample_sources()
    failures = []
    checked = 0
    for name in ("two_cars", "close_car"):
        source = sources[name]
        for strategy in ("rejection", "vectorized", "batch"):
            for seed_offset in range(args.seeds):
                seed = 7000 + 13 * seed_offset
                reference = None
                for workers in (0, 1, 2):
                    async with GenerationService(
                        workers=workers, transport=args.transport,
                        shm_threshold=args.shm_threshold,
                    ) as service:
                        blocking = await service.generate(
                            source, n=args.scenes, seed=seed,
                            strategy=strategy, max_iterations=20000,
                        )
                        streamed = [None] * args.scenes
                        async for frame in service.generate_stream(
                            source, n=args.scenes, seed=seed,
                            strategy=strategy, max_iterations=20000,
                        ):
                            if frame["frame"] == "block":
                                for index, record in zip(frame["indices"], frame["scenes"]):
                                    streamed[index] = record
                    label = f"{name}/{strategy}/seed={seed}/workers={workers}"
                    if streamed != blocking.scenes:
                        failures.append(f"{label}: streamed != blocking")
                    if reference is None:
                        reference = blocking.scenes
                    elif blocking.scenes != reference:
                        failures.append(f"{label}: differs from workers=0 result")
                    checked += 1
    if failures:
        for failure in failures:
            print(f"PARITY FAILURE: {failure}", file=sys.stderr)
        return 1
    print(f"parity: {checked} stream/blocking/worker-count combinations bit-identical")
    return 0


async def _cmd_bench(args: argparse.Namespace) -> int:
    import time

    source = _sample_sources()["two_cars"]
    options = {} if args.backend is None else {"backend": args.backend}
    async with GenerationService(workers=args.workers, fusion=args.fusion) as service:
        await service.generate(
            source, n=2, seed=0, max_iterations=20000, **options
        )  # warm the workers (and any backend JIT)
        start = time.perf_counter()
        response = await service.generate(
            source, n=args.scenes, seed=7, strategy=args.strategy,
            max_iterations=20000, **options,
        )
        wall = time.perf_counter() - start
    measured = len(response.scenes) / wall if wall else float("inf")
    result = {
        "scenes": len(response.scenes),
        "wall_seconds": wall,
        "scenes_per_second": measured,
        "strategy": args.strategy,
        "backend": args.backend,
        "fusion": args.fusion,
        "workers": args.workers,
        "iterations": response.stats["iterations"],
        "candidates": response.stats.get("candidates", response.stats["iterations"]),
    }
    if response.stats.get("mean_importance_weight") is not None:
        result["mean_importance_weight"] = response.stats["mean_importance_weight"]
    if args.check is not None:
        # Check mode (CI): the measured throughput must clear the committed
        # BENCH_6-relative bound recorded in results/BENCH_7.json.  The
        # bound is baseline-relative rather than absolute-machine-relative,
        # so slower CI runners still pass as long as the rework's speedup
        # holds.
        committed = json.loads(Path(args.check).read_text())
        recorded = committed["benchmarks"]["service_throughput"]
        baseline = recorded["bench6_scenes_per_second"]
        required = args.check_factor * baseline
        result["check"] = {
            "committed_scenes_per_second": recorded["scenes_per_second"],
            "bench6_scenes_per_second": baseline,
            "required_scenes_per_second": required,
            "passed": measured >= required,
        }
        print(json.dumps(result, indent=1))
        if measured < required:
            print(
                f"BENCH CHECK FAILURE: {measured:.1f} scenes/s < required "
                f"{required:.1f} ({args.check_factor}x the BENCH_6 baseline "
                f"{baseline} scenes/s)",
                file=sys.stderr,
            )
            return 1
        return 0
    print(json.dumps(result, indent=1))
    return 0


async def _cmd_generate(args: argparse.Namespace) -> int:
    source = sys.stdin.read() if args.file == "-" else Path(args.file).read_text()
    options = {} if args.backend is None else {"backend": args.backend}
    async with GenerationService(workers=args.workers, fusion=args.fusion) as service:
        if args.stream:
            async for frame in service.generate_stream(
                source,
                n=args.n,
                seed=args.seed,
                strategy=args.strategy,
                max_iterations=args.max_iterations,
                derive=args.derive,
                **options,
            ):
                print(json.dumps(frame), flush=True)
            return 0
        response = await service.generate(
            source,
            n=args.n,
            seed=args.seed,
            strategy=args.strategy,
            max_iterations=args.max_iterations,
            derive=args.derive,
            **options,
        )
    print(json.dumps(response.as_dict(), indent=1))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="python -m repro.service", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_transport_args(command) -> None:
        command.add_argument("--transport", default=None, choices=("shm", "pickle"),
                             help="worker -> coordinator scene carrier "
                                  "(default: shm with a pool, pickle inline)")
        command.add_argument("--shm-threshold", type=int, default=32768,
                             help="min packed block bytes before shm kicks in")

    serve = sub.add_parser("serve", help="run the JSON-lines TCP server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8923)
    serve.add_argument("--http-port", type=int, default=None,
                       help="also serve HTTP/WebSocket (healthz, metrics, generate, ws)")
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--cache-dir", default=None,
                       help="shared on-disk artifact cache directory")
    serve.add_argument("--max-request-bytes", type=int, default=1 << 20,
                       help="cap on one TCP request line (oversized lines are "
                            "answered with a structured error)")
    add_transport_args(serve)

    smoke = sub.add_parser("smoke", help="CI smoke: concurrency + determinism + shutdown")
    smoke.add_argument("--workers", type=int, default=2)
    smoke.add_argument("--requests", type=int, default=8,
                       help="concurrent generate requests to sustain (>= 8 in CI)")

    parity = sub.add_parser(
        "parity", help="fixed-seed campaign: streamed == blocking == inline, bit-identical"
    )
    parity.add_argument("--scenes", type=int, default=6)
    parity.add_argument("--seeds", type=int, default=2,
                        help="seeds per strategy/worker-count combination")
    add_transport_args(parity)

    bench = sub.add_parser("bench", help="measure warm-path request throughput")
    bench.add_argument("--scenes", type=int, default=50)
    bench.add_argument("--workers", type=int, default=2)
    bench.add_argument("--strategy", default="vectorized")
    bench.add_argument("--check", default=None, metavar="BENCH_JSON",
                       help="check mode: exit non-zero unless measured throughput "
                            "clears --check-factor x the BENCH_6 baseline recorded "
                            "in this committed results file")
    bench.add_argument("--check-factor", type=float, default=10.0,
                       help="required multiple of the recorded BENCH_6 baseline")
    bench.add_argument("--backend", default=None,
                       help="geometry-kernel backend for the shards "
                            "(numpy/numba/jax/auto; docs/backends.md)")
    bench.add_argument("--fusion", action="store_true",
                       help="coalesce concurrent shards' kernel calls "
                            "(requires --workers 0)")

    generate = sub.add_parser("generate", help="one-shot generation from a .scenic file")
    generate.add_argument("file", help="path to a .scenic program, or - for stdin")
    generate.add_argument("-n", type=int, default=1)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--strategy", default="rejection")
    generate.add_argument("--max-iterations", type=int, default=20000)
    generate.add_argument("--derive", default="splitmix", choices=("splitmix", "direct"))
    generate.add_argument("--workers", type=int, default=0)
    generate.add_argument("--stream", action="store_true",
                          help="print NDJSON stream frames as shards complete")
    generate.add_argument("--backend", default=None,
                          help="geometry-kernel backend for the shards "
                               "(numpy/numba/jax/auto; docs/backends.md)")
    generate.add_argument("--fusion", action="store_true",
                          help="coalesce concurrent shards' kernel calls "
                               "(requires --workers 0)")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    command = {
        "serve": _cmd_serve,
        "smoke": _cmd_smoke,
        "parity": _cmd_parity,
        "bench": _cmd_bench,
        "generate": _cmd_generate,
    }[args.command]
    return asyncio.run(command(args))


if __name__ == "__main__":
    sys.exit(main())

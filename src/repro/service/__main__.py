"""CLI for the generation service: ``python -m repro.service <command>``.

Commands
--------

``serve``
    Start the JSON-lines TCP server and run until a ``shutdown`` op (or
    Ctrl-C).  ``--port 0`` picks an ephemeral port and prints it.
``smoke``
    Self-contained health check used by CI: starts a service, fires
    concurrent mixed-strategy requests at it, verifies the determinism
    contract (same request twice → identical scenes; sharded result is
    worker-count independent), and shuts down cleanly.  Exits non-zero on
    any mismatch.
``bench``
    Measure request throughput (scenes/second, warm cache) and print a
    small machine-readable JSON blob.
``generate``
    One-shot: compile a ``.scenic`` file (or ``-`` for stdin), sample ``-n``
    scenes, print the response JSON.

Examples::

    python -m repro.service serve --port 8923 --workers 2
    python -m repro.service smoke
    python -m repro.service generate examples/scenarios/two_cars.scenic -n 5 --seed 7
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

from .server import GenerationServer
from .service import GenerationService


def _sample_sources() -> dict:
    """Small embedded programs so the CLI needs no repository checkout."""
    from ..experiments import scenarios

    return {
        "two_cars": scenarios.two_cars(),
        "close_car": scenarios.close_car(),
        "mars": "import mars\nego = Rover at 0 @ -2\nRock\nRock\nPipe\n",
    }


async def _cmd_serve(args: argparse.Namespace) -> int:
    service = GenerationService(workers=args.workers, cache_dir=args.cache_dir)
    server = GenerationServer(service, host=args.host, port=args.port)
    await server.start()
    print(f"repro.service listening on {server.host}:{server.port} "
          f"({args.workers} workers)", flush=True)
    try:
        await server.serve_until_shutdown()
    except (KeyboardInterrupt, asyncio.CancelledError):
        await server.close()
    print("repro.service: clean shutdown")
    return 0


async def _cmd_smoke(args: argparse.Namespace) -> int:
    """The CI smoke: concurrency + determinism + clean shutdown, end to end."""
    sources = _sample_sources()
    failures = []

    async with GenerationService(workers=args.workers) as service:
        # 1. Sustained concurrency: >= 8 simultaneous mixed requests.
        requests = []
        for index in range(args.requests):
            name = list(sources)[index % len(sources)]
            strategy = ("rejection", "vectorized", "batch", "direct")[index % 4]
            requests.append(
                service.generate(
                    sources[name], n=3, seed=1000 + index, strategy=strategy,
                    max_iterations=20000,
                )
            )
        responses = await asyncio.gather(*requests)
        total_scenes = sum(len(response.scenes) for response in responses)
        print(f"smoke: {len(responses)} concurrent requests -> {total_scenes} scenes")

        # 2. Determinism: identical request -> identical scenes.
        first = await service.generate(sources["two_cars"], n=6, seed=42, max_iterations=20000)
        second = await service.generate(sources["two_cars"], n=6, seed=42, max_iterations=20000)
        if first.scenes != second.scenes:
            failures.append("repeat of an identical request changed the scenes")

        # Constructive-strategy diagnostics must surface in merged stats:
        # the comparable candidate count and per-scene importance weights.
        direct = await service.generate(
            sources["two_cars"], n=4, seed=9, strategy="direct", max_iterations=20000
        )
        direct_stats = direct.stats
        print(
            f"smoke: direct candidates={direct_stats.get('candidates')} "
            f"mean_importance_weight={direct_stats.get('mean_importance_weight')}"
        )
        if direct_stats.get("importance_scenes", 0) != len(direct.scenes):
            failures.append("direct scenes did not all carry importance weights")
        if direct_stats.get("candidates", 0) <= 0:
            failures.append("direct request reported no drawn candidates")

        stats = service.service_stats()
        print(f"smoke: stats {json.dumps(stats, default=str)}")

    # 3. Worker-count invariance of the sharded (splitmix) path.
    async with GenerationService(workers=0) as inline_service:
        inline = await inline_service.generate(
            sources["two_cars"], n=6, seed=42, max_iterations=20000
        )
        if inline.scenes != first.scenes:
            failures.append(
                f"sharded result differs between workers={args.workers} and inline execution"
            )

    if failures:
        for failure in failures:
            print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
        return 1
    print("smoke: determinism + concurrency + clean shutdown OK")
    return 0


async def _cmd_bench(args: argparse.Namespace) -> int:
    import time

    source = _sample_sources()["two_cars"]
    async with GenerationService(workers=args.workers) as service:
        await service.generate(source, n=2, seed=0, max_iterations=20000)  # warm the workers
        start = time.perf_counter()
        response = await service.generate(
            source, n=args.scenes, seed=7, strategy=args.strategy, max_iterations=20000
        )
        wall = time.perf_counter() - start
    result = {
        "scenes": len(response.scenes),
        "wall_seconds": wall,
        "scenes_per_second": len(response.scenes) / wall if wall else float("inf"),
        "strategy": args.strategy,
        "workers": args.workers,
        "iterations": response.stats["iterations"],
        "candidates": response.stats.get("candidates", response.stats["iterations"]),
    }
    if response.stats.get("mean_importance_weight") is not None:
        result["mean_importance_weight"] = response.stats["mean_importance_weight"]
    print(json.dumps(result, indent=1))
    return 0


async def _cmd_generate(args: argparse.Namespace) -> int:
    source = sys.stdin.read() if args.file == "-" else Path(args.file).read_text()
    async with GenerationService(workers=args.workers) as service:
        response = await service.generate(
            source,
            n=args.n,
            seed=args.seed,
            strategy=args.strategy,
            max_iterations=args.max_iterations,
            derive=args.derive,
        )
    print(json.dumps(response.as_dict(), indent=1))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="python -m repro.service", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the JSON-lines TCP server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8923)
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--cache-dir", default=None,
                       help="shared on-disk artifact cache directory")

    smoke = sub.add_parser("smoke", help="CI smoke: concurrency + determinism + shutdown")
    smoke.add_argument("--workers", type=int, default=2)
    smoke.add_argument("--requests", type=int, default=8,
                       help="concurrent generate requests to sustain (>= 8 in CI)")

    bench = sub.add_parser("bench", help="measure warm-path request throughput")
    bench.add_argument("--scenes", type=int, default=50)
    bench.add_argument("--workers", type=int, default=2)
    bench.add_argument("--strategy", default="vectorized")

    generate = sub.add_parser("generate", help="one-shot generation from a .scenic file")
    generate.add_argument("file", help="path to a .scenic program, or - for stdin")
    generate.add_argument("-n", type=int, default=1)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--strategy", default="rejection")
    generate.add_argument("--max-iterations", type=int, default=20000)
    generate.add_argument("--derive", default="splitmix", choices=("splitmix", "direct"))
    generate.add_argument("--workers", type=int, default=0)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    command = {
        "serve": _cmd_serve,
        "smoke": _cmd_smoke,
        "bench": _cmd_bench,
        "generate": _cmd_generate,
    }[args.command]
    return asyncio.run(command(args))


if __name__ == "__main__":
    sys.exit(main())

"""Columnar scene-block transport for the generation service.

Scenes used to cross the worker → coordinator process boundary as pickled
per-scene dicts (:func:`~repro.service.protocol.scene_record` output).  That
shape is what remote clients ultimately receive, but it is a wasteful wire
format between processes: every scene re-pickles the same key strings, every
object is a dict of boxed floats, and the coordinator immediately re-walks
the whole structure to merge shards.

This module packs a shard's scenes *columnar* instead — one
:class:`SceneBlock` per shard, holding structured numpy buffers:

* ``obj_data`` — ``(total_objects, 5)`` float64 columns ``x, y, heading,
  width, height``;
* ``obj_offsets`` — the ragged index: scene *i*'s objects are rows
  ``obj_offsets[i]:obj_offsets[i+1]``;
* ``class_ids`` + a string table for object class names;
* per-scene ``ego_indices`` / ``iterations`` (−1 = not recorded) /
  ``weights`` (importance weights, 1.0 = none);
* ``params_blob`` + ``params_offsets`` — per-scene JSON-encoded ``param``
  dicts (empty slice = no params).

Blocks travel one of two ways, chosen by
:meth:`SceneBlock.to_wire`: small blocks pickle as numpy arrays (compact,
one buffer per column instead of per-scene dicts), large blocks are copied
into a :mod:`multiprocessing.shared_memory` segment and only a tiny
:class:`ShmBlockHandle` (segment name + layout counts) crosses the pipe.
The coordinator materialises JSON scene records *lazily* at the protocol
edge (:meth:`SceneBlock.records`), and the reconstruction is bit-identical
to :func:`~repro.service.protocol.scene_record`: float64 columns preserve
the exact sampled doubles and params round-trip through JSON's
shortest-repr float encoding.

Shared-memory lifecycle: the worker creates the segment, copies the block
in and closes its mapping; the coordinator attaches, copies the arrays back
out and immediately closes **and unlinks** the segment
(:meth:`ShmBlockHandle.load`, or :meth:`ShmBlockHandle.discard` on error
paths), so no segment outlives its request.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Columns of ``SceneBlock.obj_data``, in storage order.
OBJECT_COLUMNS = ("x", "y", "heading", "width", "height")

#: Blocks at least this large (payload bytes) default to shared-memory
#: carriage when the worker runs in a separate process.  Below it, pickling
#: a handful of small arrays through the pool's result pipe is cheaper than
#: a segment create/attach round trip.
DEFAULT_SHM_THRESHOLD = 32_768

_ALIGN = 8


def _json_safe(value: Any) -> Any:
    """JSON-encodable view of a params value (mirrors protocol._json_safe)."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    return repr(value)


@dataclass
class SceneBlock:
    """A shard's scenes as structured column arrays plus a ragged index."""

    obj_offsets: np.ndarray  # (scenes + 1,) int64
    obj_data: np.ndarray  # (total_objects, 5) float64 — OBJECT_COLUMNS
    class_ids: np.ndarray  # (total_objects,) int32 into class_names
    class_names: List[str]
    ego_indices: np.ndarray  # (scenes,) int64
    iterations: np.ndarray  # (scenes,) int64, -1 = not recorded
    weights: np.ndarray  # (scenes,) float64 importance weights, 1.0 = none
    params_offsets: np.ndarray  # (scenes + 1,) int64 into params_blob
    params_blob: bytes  # concatenated per-scene JSON params ('' = none)

    # -- construction -------------------------------------------------------------

    @staticmethod
    def pack(
        scenes: Sequence[Any],
        iterations: Optional[Sequence[Optional[int]]] = None,
    ) -> "SceneBlock":
        """Pack live scenes into columns, worker-side.

        This replaces building one ``scene_record`` dict per scene: object
        fields go straight from the concrete objects into float64 columns
        and only the (rare) ``param`` dicts pay a JSON encode.
        """
        from ..core.vectors import Vector

        scene_count = len(scenes)
        obj_offsets = np.zeros(scene_count + 1, dtype=np.int64)
        ego_indices = np.zeros(scene_count, dtype=np.int64)
        iteration_column = np.full(scene_count, -1, dtype=np.int64)
        weights = np.ones(scene_count, dtype=np.float64)
        class_names: List[str] = []
        class_index: Dict[str, int] = {}
        rows: List[Tuple[float, float, float, float, float]] = []
        ids: List[int] = []
        params_parts: List[bytes] = []
        params_offsets = np.zeros(scene_count + 1, dtype=np.int64)

        for position, scene in enumerate(scenes):
            ego_indices[position] = scene.objects.index(scene.ego)
            if iterations is not None and iterations[position] is not None:
                iteration_column[position] = int(iterations[position])
            weights[position] = float(getattr(scene, "importance_weight", 1.0))
            for scenic_object in scene.objects:
                name = type(scenic_object).__name__
                identifier = class_index.get(name)
                if identifier is None:
                    identifier = class_index[name] = len(class_names)
                    class_names.append(name)
                ids.append(identifier)
                x, y = Vector.from_any(scenic_object.position)
                rows.append(
                    (
                        float(x),
                        float(y),
                        float(scenic_object.heading),
                        float(scenic_object.width),
                        float(scenic_object.height),
                    )
                )
            obj_offsets[position + 1] = len(rows)
            params = _json_safe(getattr(scene, "params", {}) or {})
            encoded = json.dumps(params).encode("utf-8") if params else b""
            params_parts.append(encoded)
            params_offsets[position + 1] = params_offsets[position] + len(encoded)

        obj_data = (
            np.array(rows, dtype=np.float64)
            if rows
            else np.zeros((0, 5), dtype=np.float64)
        )
        return SceneBlock(
            obj_offsets=obj_offsets,
            obj_data=obj_data,
            class_ids=np.array(ids, dtype=np.int32),
            class_names=class_names,
            ego_indices=ego_indices,
            iterations=iteration_column,
            weights=weights,
            params_offsets=params_offsets,
            params_blob=b"".join(params_parts),
        )

    # -- shape --------------------------------------------------------------------

    @property
    def scene_count(self) -> int:
        return len(self.ego_indices)

    def __len__(self) -> int:
        return self.scene_count

    @property
    def nbytes(self) -> int:
        """Payload bytes a shared-memory segment for this block needs."""
        return sum(_padded(part.nbytes) for part in self._arrays()) + _padded(
            len(self.params_blob)
        )

    def _arrays(self) -> List[np.ndarray]:
        return [
            self.obj_offsets,
            self.obj_data,
            self.class_ids,
            self.ego_indices,
            self.iterations,
            self.weights,
            self.params_offsets,
        ]

    # -- record materialisation (the protocol edge) -------------------------------

    def record_at(self, position: int) -> Dict[str, Any]:
        """Scene *position* as a JSON scene record.

        Key order and presence rules mirror
        :func:`~repro.service.protocol.scene_record` exactly: ``iterations``
        appears only when recorded, ``importance_weight`` only when ≠ 1.0.
        """
        start, end = int(self.obj_offsets[position]), int(self.obj_offsets[position + 1])
        objects = []
        data = self.obj_data
        for row in range(start, end):
            x, y, heading, width, height = data[row]
            objects.append(
                {
                    "class": self.class_names[int(self.class_ids[row])],
                    "position": [float(x), float(y)],
                    "heading": float(heading),
                    "width": float(width),
                    "height": float(height),
                }
            )
        span = self.params_blob[
            int(self.params_offsets[position]) : int(self.params_offsets[position + 1])
        ]
        record: Dict[str, Any] = {
            "ego_index": int(self.ego_indices[position]),
            "objects": objects,
            "params": json.loads(span.decode("utf-8")) if span else {},
        }
        if self.iterations[position] >= 0:
            record["iterations"] = int(self.iterations[position])
        weight = float(self.weights[position])
        if weight != 1.0:
            record["importance_weight"] = weight
        return record

    def records(self) -> List[Dict[str, Any]]:
        """All scenes as JSON scene records, in block order."""
        return [self.record_at(position) for position in range(self.scene_count)]

    # -- wire carriage ------------------------------------------------------------

    def to_wire(
        self, use_shared_memory: bool, threshold: int = DEFAULT_SHM_THRESHOLD
    ) -> "SceneBlock | ShmBlockHandle":
        """Choose the cross-process carrier for this block.

        Returns ``self`` (pickled as numpy columns) for small blocks or
        inline workers, or a :class:`ShmBlockHandle` after copying the
        columns into a fresh shared-memory segment.
        """
        if not use_shared_memory or self.nbytes < threshold:
            return self
        return self.to_shared_memory()

    def to_shared_memory(self) -> "ShmBlockHandle":
        """Copy the block into a new shared-memory segment (worker-side)."""
        from multiprocessing import shared_memory

        size = max(self.nbytes, 1)
        segment = shared_memory.SharedMemory(create=True, size=size)
        try:
            cursor = 0
            for array in self._arrays():
                raw = array.tobytes()
                segment.buf[cursor : cursor + len(raw)] = raw
                cursor += _padded(len(raw))
            if self.params_blob:
                segment.buf[cursor : cursor + len(self.params_blob)] = self.params_blob
            handle = ShmBlockHandle(
                name=segment.name,
                scene_count=self.scene_count,
                object_count=len(self.class_ids),
                params_nbytes=len(self.params_blob),
                class_names=list(self.class_names),
            )
        except Exception:
            segment.close()
            segment.unlink()
            raise
        segment.close()
        _transfer_ownership(segment._name, adopt=False)  # the reader unlinks
        return handle


def _padded(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN


def _transfer_ownership(name: str, adopt: bool) -> None:
    """Move a segment's resource-tracker registration across processes.

    ``SharedMemory(create=True)`` registers the segment with the *creating*
    process's resource tracker, but pool workers (forked before any segment
    existed) each lazily spawn their own tracker — which would then warn
    about a "leaked" segment the coordinator has long since unlinked.  The
    creating worker therefore *disowns* the segment (unregister) once the
    handle is on the wire, and the coordinator *adopts* it (register)
    before unlinking, so unlink's own unregister is balanced and a crashed
    coordinator still gets its segments reaped by its tracker at exit.
    """
    from multiprocessing import resource_tracker

    try:
        if adopt:
            resource_tracker.register(name, "shared_memory")
        else:
            resource_tracker.unregister(name, "shared_memory")
    except Exception:  # pragma: no cover - tracker may be absent (exotic spawn)
        pass


@dataclass
class ShmBlockHandle:
    """The pickled stand-in for a block carried via shared memory.

    Only the segment name, the layout counts needed to slice it, and the
    class-name string table cross the process boundary; the scene data
    itself stays in the segment until :meth:`load` copies it back out.
    """

    name: str
    scene_count: int
    object_count: int
    params_nbytes: int
    class_names: List[str] = field(default_factory=list)

    def load(self) -> SceneBlock:
        """Attach, copy the columns out, then close **and unlink** the segment."""
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(name=self.name)
        _transfer_ownership(segment._name, adopt=True)
        try:
            cursor = 0

            def take(dtype: np.dtype, count: int, shape=None) -> np.ndarray:
                nonlocal cursor
                nbytes = np.dtype(dtype).itemsize * count
                array = np.frombuffer(
                    segment.buf, dtype=dtype, count=count, offset=cursor
                ).copy()
                cursor += _padded(nbytes)
                return array.reshape(shape) if shape is not None else array

            scenes, objects = self.scene_count, self.object_count
            obj_offsets = take(np.int64, scenes + 1)
            obj_data = take(np.float64, objects * 5, shape=(objects, 5))
            class_ids = take(np.int32, objects)
            ego_indices = take(np.int64, scenes)
            iterations = take(np.int64, scenes)
            weights = take(np.float64, scenes)
            params_offsets = take(np.int64, scenes + 1)
            params_blob = bytes(segment.buf[cursor : cursor + self.params_nbytes])
        finally:
            segment.close()
        segment.unlink()
        return SceneBlock(
            obj_offsets=obj_offsets,
            obj_data=obj_data,
            class_ids=class_ids,
            class_names=list(self.class_names),
            ego_indices=ego_indices,
            iterations=iterations,
            weights=weights,
            params_offsets=params_offsets,
            params_blob=params_blob,
        )

    def discard(self) -> None:
        """Free the segment without materialising (failed-request cleanup)."""
        from multiprocessing import shared_memory

        try:
            segment = shared_memory.SharedMemory(name=self.name)
        except FileNotFoundError:
            return
        _transfer_ownership(segment._name, adopt=True)
        segment.close()
        segment.unlink()


def materialize_block(carrier: "SceneBlock | ShmBlockHandle | None") -> Optional[SceneBlock]:
    """Resolve a wire carrier back into a :class:`SceneBlock` (or ``None``)."""
    if carrier is None:
        return None
    if isinstance(carrier, ShmBlockHandle):
        return carrier.load()
    return carrier


__all__ = [
    "DEFAULT_SHM_THRESHOLD",
    "OBJECT_COLUMNS",
    "SceneBlock",
    "ShmBlockHandle",
    "materialize_block",
]

"""The asyncio generation front end over a persistent worker-process pool.

:class:`GenerationService` is the serving layer the ROADMAP's "heavy
traffic" north star asks for, built on the compile-once artifacts of
:mod:`repro.language.compiler`:

* **compile once** — workers keep a process-local artifact cache (optionally
  backed by one shared disk directory), so a program's parse/interpret cost
  is paid once per worker, not once per request;
* **shard + affinity** — a batch request is cut into per-worker shards whose
  scene seeds are derived with splitmix64 from ``(master_seed,
  scene_index)``, so the merged batch is bit-identical regardless of worker
  count or shard boundaries (the cross-process extension of
  ``ParallelSampler``'s determinism contract, pinned by the golden corpus).
  Shards are *routed by artifact fingerprint*: shard *k* of a program goes
  to worker ``(hash(fingerprint) + k) % workers``, so repeat requests for
  the same program land on workers whose bound-engine caches already hold
  it;
* **columnar transport** — workers hand scenes back as structured numpy
  blocks (:mod:`repro.service.transport`), over shared memory for large
  shards, and JSON scene records are materialised lazily at the protocol
  edge;
* **async + backpressure + streaming** — ``generate`` is a coroutine; at
  most ``max_inflight`` requests run concurrently, at most ``max_queue``
  wait, and anything beyond that fails fast with
  :class:`ServiceOverloadedError` instead of growing an unbounded queue.
  :meth:`GenerationService.generate_stream` yields scene blocks as shards
  complete instead of buffering the whole response;
* **stats** — every response carries the request-wide
  :class:`~repro.sampling.AggregateStats`-style roll-up (iterations,
  rejection breakdown by cause, worker cache and engine-affinity hits, wall
  time).

Typical use::

    import asyncio
    from repro.service import GenerationService

    async def main():
        async with GenerationService(workers=2) as service:
            response = await service.generate(source, n=100, seed=7)
            response.scenes[0]["objects"]        # scene records, index order
            response.stats["rejections"]

            async for frame in service.generate_stream(source, n=100, seed=7):
                if frame["frame"] == "block":
                    consume(frame["indices"], frame["scenes"])

    asyncio.run(main())

For the TCP front end see :mod:`repro.service.server`, for HTTP/WebSocket
:mod:`repro.service.server_http`; for the CLI, ``python -m repro.service
--help`` (``docs/service.md`` walks through all of them).
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, AsyncIterator, Dict, List, Optional, Tuple

from ..language.compiler import ArtifactCache, compile_scenario, source_fingerprint
from .protocol import (
    DERIVE_MODES,
    TRANSPORT_MODES,
    GenerateResponse,
    ShardOutcome,
    ShardPayload,
    derive_scene_seeds,
    merge_shard_stats,
)
from .transport import DEFAULT_SHM_THRESHOLD, SceneBlock
from .worker import initialize_worker, run_shard


class ServiceError(RuntimeError):
    """Base class for generation-service failures."""


class ServiceOverloadedError(ServiceError):
    """The request was shed: the inflight slots and the wait queue are full."""


class GenerationFailedError(ServiceError):
    """A shard could not produce its scenes (budget exhausted, bad program, ...)."""

    def __init__(self, message: str, detail: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.detail = detail or {}


class GenerationService:
    """Async, process-sharded scene generation over compiled artifacts.

    Parameters
    ----------
    workers:
        Size of the persistent worker pool.  Each worker is its own
        single-process executor so the service can *route* shards to
        specific workers (fingerprint affinity).  ``0`` runs shards inline
        on a thread (no subprocesses) — handy for debugging and for
        platforms where forking is unavailable; the request/response
        semantics (and determinism) are identical.
    max_inflight:
        Requests allowed to run concurrently (default ``2 * max(workers, 1)``).
    max_queue:
        Requests allowed to *wait* for an inflight slot before new arrivals
        are shed with :class:`ServiceOverloadedError`.
    cache_dir:
        Optional directory for the workers' shared on-disk artifact layer;
        also used by the coordinator's own cache.
    worker_cache_size:
        Per-worker in-memory artifact LRU size.
    transport:
        Cross-process scene carrier: ``"shm"`` (shared-memory segments for
        blocks above *shm_threshold* bytes) or ``"pickle"``.  Default:
        ``"shm"`` with a process pool, ``"pickle"`` inline (a segment round
        trip buys nothing in-process).
    shm_threshold:
        Minimum packed block size (bytes) before ``"shm"`` creates a
        segment; smaller blocks pickle their arrays.
    fusion:
        Cross-request kernel fusion (requires ``workers=0``): concurrent
        requests' shards run on threads and their geometry-kernel calls
        coalesce into one fused launch per tick through a
        :class:`~repro.service.fusion.FusionHub`.  Output is bit-identical
        to ``fusion=False`` — see ``docs/backends.md``.  Fusion counters
        appear under ``service_stats()["fusion"]``.
    """

    def __init__(
        self,
        workers: int = 2,
        max_inflight: Optional[int] = None,
        max_queue: int = 32,
        cache_dir: Optional[str] = None,
        worker_cache_size: int = 64,
        transport: Optional[str] = None,
        shm_threshold: int = DEFAULT_SHM_THRESHOLD,
        fusion: bool = False,
    ):
        self.workers = max(0, int(workers))
        if fusion and self.workers > 0:
            raise ValueError(
                "kernel fusion coalesces shards running inline on threads; "
                "it requires workers=0 (process-pool workers already batch "
                "within their own shards)"
            )
        if fusion:
            from .fusion import FusionHub

            self.fusion_hub: Optional[Any] = FusionHub()
        else:
            self.fusion_hub = None
        self.max_inflight = max_inflight if max_inflight is not None else 2 * max(self.workers, 1)
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.max_queue = max(0, int(max_queue))
        self.cache_dir = cache_dir
        self.worker_cache_size = worker_cache_size
        if transport is None:
            transport = "shm" if self.workers > 0 else "pickle"
        if transport not in TRANSPORT_MODES:
            raise ValueError(
                f"unknown transport {transport!r} (known: {TRANSPORT_MODES})"
            )
        self.transport = transport
        self.shm_threshold = int(shm_threshold)
        self.cache = ArtifactCache(disk_dir=cache_dir)
        self._sources: Dict[str, str] = {}
        self._pools: List[ProcessPoolExecutor] = []
        self._inflight = asyncio.Semaphore(self.max_inflight)
        self._pending = 0
        self._started = False
        self.stats: Dict[str, Any] = {
            "requests": 0,
            "streams": 0,
            "scenes": 0,
            "failures": 0,
            "shed": 0,
            "peak_pending": 0,
            "engine_cache_hits": 0,
            "engine_cache_misses": 0,
        }

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> "GenerationService":
        """Spin up the worker pools (idempotent).

        One single-process executor per worker, rather than one N-process
        pool: a plain pool hands tasks to whichever worker is free, which
        defeats per-worker engine caches.  Separate executors make the
        fingerprint → worker routing in :meth:`_worker_for` possible.
        """
        if self._started:
            return self
        self._pools = [
            ProcessPoolExecutor(
                max_workers=1,
                initializer=initialize_worker,
                initargs=(self.cache_dir, self.worker_cache_size),
            )
            for _ in range(self.workers)
        ]
        self._started = True
        return self

    async def close(self) -> None:
        """Drain and shut the pools down; safe to call twice."""
        pools, self._pools = self._pools, []
        self._started = False
        if pools:
            loop = asyncio.get_running_loop()
            await asyncio.gather(
                *(loop.run_in_executor(None, pool.shutdown) for pool in pools)
            )

    async def __aenter__(self) -> "GenerationService":
        return await self.start()

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        await self.close()

    # -- program registry ---------------------------------------------------------

    def publish(self, source: str) -> str:
        """Register *source* and return its content address.

        Published programs can later be requested by fingerprint alone
        (``generate(fingerprint, ...)``), which is how remote clients avoid
        re-sending program text on every request.  Publishing also warms the
        coordinator's artifact cache (compile errors surface here, not at
        request time).
        """
        artifact = compile_scenario(source, cache=self.cache)
        self._sources[artifact.fingerprint] = artifact.source
        return artifact.fingerprint

    def resolve(self, source_or_hash: str) -> str:
        """Map a request's ``source_or_hash`` to program source text."""
        if source_or_hash in self._sources:
            return self._sources[source_or_hash]
        return source_or_hash

    # -- admission (backpressure) -------------------------------------------------

    def _admit(self) -> None:
        """Claim a pending slot or shed; the single admission gate.

        Every admitted request — blocking or streaming — MUST pair this
        with exactly one ``self._pending -= 1`` in a ``finally``; the
        callers below structure acquisition so that cancellation while
        queued on the inflight semaphore still restores both the counter
        and the semaphore (the regression test cancels a queued request and
        asserts full capacity returns).
        """
        if self._pending >= self.max_inflight + self.max_queue:
            self.stats["shed"] += 1
            raise ServiceOverloadedError(
                f"service overloaded: {self._pending} requests pending "
                f"(max_inflight={self.max_inflight}, max_queue={self.max_queue})"
            )
        self._pending += 1
        self.stats["peak_pending"] = max(self.stats["peak_pending"], self._pending)

    def _validate(self, n: int, derive: str) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        if derive not in DERIVE_MODES:
            raise ValueError(f"unknown derive mode {derive!r} (known: {DERIVE_MODES})")

    # -- the front door -----------------------------------------------------------

    async def generate(
        self,
        source_or_hash: str,
        n: int = 1,
        seed: int = 0,
        strategy: str = "rejection",
        max_iterations: int = 2000,
        derive: str = "splitmix",
        **strategy_options: Any,
    ) -> GenerateResponse:
        """Sample *n* scenes of a program; the service's one front door.

        *source_or_hash* is Scenic source text, or the fingerprint of a
        program previously :meth:`publish`\\ ed.  *derive* picks the seed
        contract (see :func:`repro.service.protocol.derive_scene_seeds`):
        ``"splitmix"`` shards freely with per-scene seeds; ``"direct"`` runs
        unsharded, draw-for-draw equal to ``Scenario.generate_batch`` (and,
        with ``n=1``, to ``Scenario.generate`` — the golden corpus).

        Backpressure: waits for an inflight slot while the wait queue is
        below ``max_queue``, sheds with :class:`ServiceOverloadedError`
        beyond that.  Failures of any shard (infeasible program, exhausted
        budget, compile error) raise :class:`GenerationFailedError` with the
        worker's diagnostic attached.
        """
        if not self._started:
            await self.start()
        self._validate(n, derive)
        self._admit()
        try:
            async with self._inflight:
                return await self._generate_admitted(
                    source_or_hash, n, seed, strategy, max_iterations, derive, strategy_options
                )
        finally:
            self._pending -= 1

    async def generate_stream(
        self,
        source_or_hash: str,
        n: int = 1,
        seed: int = 0,
        strategy: str = "rejection",
        max_iterations: int = 2000,
        derive: str = "splitmix",
        **strategy_options: Any,
    ) -> AsyncIterator[Dict[str, Any]]:
        """Like :meth:`generate`, but yield scene blocks as shards complete.

        An async iterator of JSON-safe *frames*:

        * ``{"frame": "block", "indices": [...], "scenes": [...],
          "shard": k, "worker_pid": pid}`` — one per completed shard, in
          completion (not index) order; ``scenes[j]`` is the record of
          global scene index ``indices[j]``;
        * ``{"frame": "end", "fingerprint": ..., "strategy": ..., "seed":
          ..., "derive": ..., "scenes": n, "stats": {...}}`` — always last.

        Reassembling block frames by their indices gives exactly
        :meth:`generate`'s ``response.scenes`` for the same request —
        streaming changes delivery, never content.

        The request holds its admission slot until the iterator is
        exhausted *or closed*: an abandoned stream (``aclose()``, garbage
        collection, ``break``) releases backpressure capacity and discards
        any undelivered shared-memory blocks.
        """
        if not self._started:
            await self.start()
        self._validate(n, derive)
        self._admit()
        try:
            acquired = False
            await self._inflight.acquire()
            acquired = True
            try:
                async for frame in self._stream_admitted(
                    source_or_hash, n, seed, strategy, max_iterations, derive, strategy_options
                ):
                    yield frame
            finally:
                if acquired:
                    self._inflight.release()
        finally:
            self._pending -= 1

    # -- request execution --------------------------------------------------------

    def _begin_request(
        self, source_or_hash: str, strategy: str, seed: int, derive: str
    ) -> Tuple[str, str, GenerateResponse]:
        source = self.resolve(source_or_hash)
        fingerprint = source_fingerprint(source)
        self.stats["requests"] += 1
        response = GenerateResponse(
            fingerprint=fingerprint, strategy=strategy, seed=seed, derive=derive
        )
        return source, fingerprint, response

    async def _generate_admitted(
        self,
        source_or_hash: str,
        n: int,
        seed: int,
        strategy: str,
        max_iterations: int,
        derive: str,
        strategy_options: Dict[str, Any],
    ) -> GenerateResponse:
        start = time.perf_counter()
        source, fingerprint, response = self._begin_request(
            source_or_hash, strategy, seed, derive
        )
        if n == 0:
            response.stats = merge_shard_stats([])
            response.stats["wall_seconds"] = time.perf_counter() - start
            return response

        seeds = derive_scene_seeds(seed, n, derive)
        payloads = self._make_payloads(
            fingerprint, source, strategy, strategy_options, max_iterations, n, seed, seeds
        )
        outcomes = await asyncio.gather(
            *(
                self._run_payload(payload, self._worker_for(fingerprint, shard))
                for shard, payload in enumerate(payloads)
            )
        )

        failed = next((outcome for outcome in outcomes if outcome.error is not None), None)
        if failed is not None:
            for outcome in outcomes:
                outcome.discard_block()
            self.stats["failures"] += 1
            raise GenerationFailedError(
                f"shard failed with {failed.error['type']}: {failed.error['message']}",
                detail=failed.error,
            )

        blocks: List[Tuple[List[int], SceneBlock]] = []
        for outcome in outcomes:
            block = outcome.take_block()  # releases any shm segment now
            blocks.append((outcome.indices, block))
            self._note_engine_cache(outcome)
        response.attach_blocks(blocks, n)
        response.stats = merge_shard_stats(list(outcomes))
        response.stats["wall_seconds"] = time.perf_counter() - start
        self.stats["scenes"] += n
        return response

    async def _stream_admitted(
        self,
        source_or_hash: str,
        n: int,
        seed: int,
        strategy: str,
        max_iterations: int,
        derive: str,
        strategy_options: Dict[str, Any],
    ) -> AsyncIterator[Dict[str, Any]]:
        start = time.perf_counter()
        source, fingerprint, response = self._begin_request(
            source_or_hash, strategy, seed, derive
        )
        self.stats["streams"] += 1

        def end_frame(outcomes: List[ShardOutcome]) -> Dict[str, Any]:
            stats = merge_shard_stats(outcomes)
            stats["wall_seconds"] = time.perf_counter() - start
            return {
                "frame": "end",
                "fingerprint": fingerprint,
                "strategy": strategy,
                "seed": seed,
                "derive": derive,
                "scenes": n,
                "stats": stats,
            }

        if n == 0:
            yield end_frame([])
            return

        seeds = derive_scene_seeds(seed, n, derive)
        payloads = self._make_payloads(
            fingerprint, source, strategy, strategy_options, max_iterations, n, seed, seeds
        )
        tasks = [
            asyncio.ensure_future(
                self._run_payload(payload, self._worker_for(fingerprint, shard))
            )
            for shard, payload in enumerate(payloads)
        ]
        done: List[ShardOutcome] = []
        delivered = set()  # id() of outcomes whose block we have taken
        try:
            for future in asyncio.as_completed(tasks):
                outcome = await future
                if outcome.error is not None:
                    self.stats["failures"] += 1
                    raise GenerationFailedError(
                        f"shard failed with {outcome.error['type']}: "
                        f"{outcome.error['message']}",
                        detail=outcome.error,
                    )
                block = outcome.take_block()
                delivered.add(id(outcome))
                done.append(outcome)
                self._note_engine_cache(outcome)
                yield {
                    "frame": "block",
                    "indices": list(outcome.indices),
                    "scenes": block.records(),
                    "shard": len(done) - 1,
                    "worker_pid": outcome.worker_pid,
                }
            self.stats["scenes"] += n
            yield end_frame(done)
        finally:
            # Abandoned or failed mid-stream: stop what can be stopped and
            # free every block we never handed out (incl. shm segments from
            # shards that finished after the failure).
            for task in tasks:
                if not task.done():
                    task.cancel()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            for result in results:
                if isinstance(result, ShardOutcome) and id(result) not in delivered:
                    result.discard_block()

    def _note_engine_cache(self, outcome: ShardOutcome) -> None:
        key = "engine_cache_hits" if outcome.engine_hit else "engine_cache_misses"
        self.stats[key] += 1

    def _worker_for(self, fingerprint: str, shard: int) -> Optional[int]:
        """Affinity routing: which worker pool shard *shard* runs on.

        Keyed by artifact fingerprint so repeated requests for one program
        revisit the same workers (warm bound-engine caches), with the shard
        ordinal fanning a single request's shards across distinct workers.
        ``None`` = inline mode (no pools).
        """
        if not self._pools:
            return None
        return (int(fingerprint[:16], 16) + shard) % len(self._pools)

    def _make_payloads(
        self,
        fingerprint: str,
        source: str,
        strategy: str,
        strategy_options: Dict[str, Any],
        max_iterations: int,
        n: int,
        seed: int,
        seeds: Optional[List[int]],
    ) -> List[ShardPayload]:
        """Cut the request into contiguous index shards (1 shard in direct mode)."""
        shard_count = 1 if seeds is None else max(1, min(max(self.workers, 1), n))
        base, extra = divmod(n, shard_count)
        payloads: List[ShardPayload] = []
        next_index = 0
        transport = self.transport if self._pools else "pickle"
        for shard in range(shard_count):
            size = base + (1 if shard < extra else 0)
            if size == 0:
                continue
            indices = list(range(next_index, next_index + size))
            next_index += size
            payloads.append(
                ShardPayload(
                    fingerprint=fingerprint,
                    source=source,
                    strategy=strategy,
                    strategy_options=dict(strategy_options),
                    max_iterations=max_iterations,
                    indices=indices,
                    seeds=None if seeds is None else [seeds[index] for index in indices],
                    master_seed=seed,
                    transport=transport,
                    shm_threshold=self.shm_threshold,
                )
            )
        return payloads

    async def _run_payload(
        self, payload: ShardPayload, worker: Optional[int]
    ) -> ShardOutcome:
        loop = asyncio.get_running_loop()
        pool = self._pools[worker] if worker is not None else None
        if pool is None and self.fusion_hub is not None:
            # Fused inline mode: shards from every concurrent request run on
            # the default thread pool and coalesce kernel calls per tick.
            return await loop.run_in_executor(None, run_shard, payload, self.fusion_hub)
        # workers=0: run_in_executor(None) -> default thread pool, same code path.
        return await loop.run_in_executor(pool, run_shard, payload)

    # -- diagnostics --------------------------------------------------------------

    def service_stats(self) -> Dict[str, Any]:
        """Service-level counters (request totals, shedding, queue, affinity)."""
        engine_lookups = self.stats["engine_cache_hits"] + self.stats["engine_cache_misses"]
        return {
            **self.stats,
            "pending": self._pending,
            "workers": self.workers,
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "transport": self.transport,
            "engine_cache_hit_rate": (
                self.stats["engine_cache_hits"] / engine_lookups if engine_lookups else 0.0
            ),
            "published_programs": len(self._sources),
            "coordinator_cache": self.cache.stats.as_dict(),
            "fusion": self.fusion_hub.stats() if self.fusion_hub is not None else None,
        }


def generate_sync(
    source: str,
    n: int = 1,
    seed: int = 0,
    strategy: str = "rejection",
    workers: int = 0,
    **kwargs: Any,
) -> GenerateResponse:
    """One-shot synchronous convenience wrapper around a temporary service.

    Spins a service up (inline workers by default), runs a single
    ``generate`` request, and tears it down — useful in scripts and tests;
    long-lived callers should manage a :class:`GenerationService` instead.
    """

    async def _run() -> GenerateResponse:
        async with GenerationService(workers=workers) as service:
            return await service.generate(source, n=n, seed=seed, strategy=strategy, **kwargs)

    return asyncio.run(_run())


__all__ = [
    "GenerationFailedError",
    "GenerationService",
    "ServiceError",
    "ServiceOverloadedError",
    "generate_sync",
]

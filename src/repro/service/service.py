"""The asyncio generation front end over a persistent worker-process pool.

:class:`GenerationService` is the serving layer the ROADMAP's "heavy
traffic" north star asks for, built on the compile-once artifacts of
:mod:`repro.language.compiler`:

* **compile once** — workers keep a process-local artifact cache (optionally
  backed by one shared disk directory), so a program's parse/interpret cost
  is paid once per worker, not once per request;
* **shard** — a batch request is cut into per-worker shards whose scene
  seeds are derived with splitmix64 from ``(master_seed, scene_index)``, so
  the merged batch is bit-identical regardless of worker count or shard
  boundaries (the cross-process extension of ``ParallelSampler``'s
  determinism contract, pinned by the golden corpus);
* **async + backpressure** — ``generate`` is a coroutine; at most
  ``max_inflight`` requests run concurrently, at most ``max_queue`` wait,
  and anything beyond that fails fast with
  :class:`ServiceOverloadedError` instead of growing an unbounded queue;
* **stats** — every response carries the request-wide
  :class:`~repro.sampling.AggregateStats`-style roll-up (iterations,
  rejection breakdown by cause, worker cache hits, wall time).

Typical use::

    import asyncio
    from repro.service import GenerationService

    async def main():
        async with GenerationService(workers=2) as service:
            response = await service.generate(source, n=100, seed=7)
            response.scenes[0]["objects"]        # scene records, index order
            response.stats["rejections"]

    asyncio.run(main())

For the TCP front end see :mod:`repro.service.server`; for the CLI,
``python -m repro.service --help`` (``docs/service.md`` walks through both).
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional

from ..language.compiler import ArtifactCache, compile_scenario, source_fingerprint
from .protocol import (
    DERIVE_MODES,
    GenerateResponse,
    ShardOutcome,
    ShardPayload,
    derive_scene_seeds,
    merge_shard_stats,
)
from .worker import initialize_worker, run_shard


class ServiceError(RuntimeError):
    """Base class for generation-service failures."""


class ServiceOverloadedError(ServiceError):
    """The request was shed: the inflight slots and the wait queue are full."""


class GenerationFailedError(ServiceError):
    """A shard could not produce its scenes (budget exhausted, bad program, ...)."""

    def __init__(self, message: str, detail: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.detail = detail or {}


class GenerationService:
    """Async, process-sharded scene generation over compiled artifacts.

    Parameters
    ----------
    workers:
        Size of the persistent worker-process pool.  ``0`` runs shards
        inline on a thread (no subprocesses) — handy for debugging and for
        platforms where forking is unavailable; the request/response
        semantics (and determinism) are identical.
    max_inflight:
        Requests allowed to run concurrently (default ``2 * max(workers, 1)``).
    max_queue:
        Requests allowed to *wait* for an inflight slot before new arrivals
        are shed with :class:`ServiceOverloadedError`.
    cache_dir:
        Optional directory for the workers' shared on-disk artifact layer;
        also used by the coordinator's own cache.
    worker_cache_size:
        Per-worker in-memory artifact LRU size.
    """

    def __init__(
        self,
        workers: int = 2,
        max_inflight: Optional[int] = None,
        max_queue: int = 32,
        cache_dir: Optional[str] = None,
        worker_cache_size: int = 64,
    ):
        self.workers = max(0, int(workers))
        self.max_inflight = max_inflight if max_inflight is not None else 2 * max(self.workers, 1)
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.max_queue = max(0, int(max_queue))
        self.cache_dir = cache_dir
        self.worker_cache_size = worker_cache_size
        self.cache = ArtifactCache(disk_dir=cache_dir)
        self._sources: Dict[str, str] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._inflight = asyncio.Semaphore(self.max_inflight)
        self._pending = 0
        self._started = False
        self.stats: Dict[str, Any] = {
            "requests": 0,
            "scenes": 0,
            "failures": 0,
            "shed": 0,
            "peak_pending": 0,
        }

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> "GenerationService":
        """Spin up the worker pool (idempotent)."""
        if self._started:
            return self
        if self.workers > 0:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=initialize_worker,
                initargs=(self.cache_dir, self.worker_cache_size),
            )
        self._started = True
        return self

    async def close(self) -> None:
        """Drain and shut the pool down; safe to call twice."""
        pool, self._pool = self._pool, None
        self._started = False
        if pool is not None:
            await asyncio.get_running_loop().run_in_executor(None, pool.shutdown)

    async def __aenter__(self) -> "GenerationService":
        return await self.start()

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        await self.close()

    # -- program registry ---------------------------------------------------------

    def publish(self, source: str) -> str:
        """Register *source* and return its content address.

        Published programs can later be requested by fingerprint alone
        (``generate(fingerprint, ...)``), which is how remote clients avoid
        re-sending program text on every request.  Publishing also warms the
        coordinator's artifact cache (compile errors surface here, not at
        request time).
        """
        artifact = compile_scenario(source, cache=self.cache)
        self._sources[artifact.fingerprint] = artifact.source
        return artifact.fingerprint

    def resolve(self, source_or_hash: str) -> str:
        """Map a request's ``source_or_hash`` to program source text."""
        if source_or_hash in self._sources:
            return self._sources[source_or_hash]
        return source_or_hash

    # -- the front door -----------------------------------------------------------

    async def generate(
        self,
        source_or_hash: str,
        n: int = 1,
        seed: int = 0,
        strategy: str = "rejection",
        max_iterations: int = 2000,
        derive: str = "splitmix",
        **strategy_options: Any,
    ) -> GenerateResponse:
        """Sample *n* scenes of a program; the service's one front door.

        *source_or_hash* is Scenic source text, or the fingerprint of a
        program previously :meth:`publish`\\ ed.  *derive* picks the seed
        contract (see :func:`repro.service.protocol.derive_scene_seeds`):
        ``"splitmix"`` shards freely with per-scene seeds; ``"direct"`` runs
        unsharded, draw-for-draw equal to ``Scenario.generate_batch`` (and,
        with ``n=1``, to ``Scenario.generate`` — the golden corpus).

        Backpressure: waits for an inflight slot while the wait queue is
        below ``max_queue``, sheds with :class:`ServiceOverloadedError`
        beyond that.  Failures of any shard (infeasible program, exhausted
        budget, compile error) raise :class:`GenerationFailedError` with the
        worker's diagnostic attached.
        """
        if not self._started:
            await self.start()
        if n < 0:
            raise ValueError("n must be non-negative")
        if derive not in DERIVE_MODES:
            raise ValueError(f"unknown derive mode {derive!r} (known: {DERIVE_MODES})")

        if self._pending >= self.max_inflight + self.max_queue:
            self.stats["shed"] += 1
            raise ServiceOverloadedError(
                f"service overloaded: {self._pending} requests pending "
                f"(max_inflight={self.max_inflight}, max_queue={self.max_queue})"
            )
        self._pending += 1
        self.stats["peak_pending"] = max(self.stats["peak_pending"], self._pending)
        try:
            async with self._inflight:
                return await self._generate_admitted(
                    source_or_hash, n, seed, strategy, max_iterations, derive, strategy_options
                )
        finally:
            self._pending -= 1

    async def _generate_admitted(
        self,
        source_or_hash: str,
        n: int,
        seed: int,
        strategy: str,
        max_iterations: int,
        derive: str,
        strategy_options: Dict[str, Any],
    ) -> GenerateResponse:
        start = time.perf_counter()
        source = self.resolve(source_or_hash)
        fingerprint = source_fingerprint(source)
        self.stats["requests"] += 1

        response = GenerateResponse(
            fingerprint=fingerprint, strategy=strategy, seed=seed, derive=derive
        )
        if n == 0:
            response.stats = merge_shard_stats([])
            response.stats["wall_seconds"] = time.perf_counter() - start
            return response

        seeds = derive_scene_seeds(seed, n, derive)
        payloads = self._make_payloads(
            fingerprint, source, strategy, strategy_options, max_iterations, n, seed, seeds
        )
        outcomes = await asyncio.gather(
            *(self._run_payload(payload) for payload in payloads)
        )

        scenes: List[Optional[Dict[str, Any]]] = [None] * n
        for outcome in outcomes:
            if outcome.error is not None:
                self.stats["failures"] += 1
                raise GenerationFailedError(
                    f"shard failed with {outcome.error['type']}: {outcome.error['message']}",
                    detail=outcome.error,
                )
            for index, record in zip(outcome.indices, outcome.records):
                scenes[index] = record
        response.scenes = scenes  # type: ignore[assignment]  # all filled or we raised
        response.stats = merge_shard_stats(list(outcomes))
        response.stats["wall_seconds"] = time.perf_counter() - start
        self.stats["scenes"] += n
        return response

    def _make_payloads(
        self,
        fingerprint: str,
        source: str,
        strategy: str,
        strategy_options: Dict[str, Any],
        max_iterations: int,
        n: int,
        seed: int,
        seeds: Optional[List[int]],
    ) -> List[ShardPayload]:
        """Cut the request into contiguous index shards (1 shard in direct mode)."""
        shard_count = 1 if seeds is None else max(1, min(max(self.workers, 1), n))
        base, extra = divmod(n, shard_count)
        payloads: List[ShardPayload] = []
        next_index = 0
        for shard in range(shard_count):
            size = base + (1 if shard < extra else 0)
            if size == 0:
                continue
            indices = list(range(next_index, next_index + size))
            next_index += size
            payloads.append(
                ShardPayload(
                    fingerprint=fingerprint,
                    source=source,
                    strategy=strategy,
                    strategy_options=dict(strategy_options),
                    max_iterations=max_iterations,
                    indices=indices,
                    seeds=None if seeds is None else [seeds[index] for index in indices],
                    master_seed=seed,
                )
            )
        return payloads

    async def _run_payload(self, payload: ShardPayload) -> ShardOutcome:
        loop = asyncio.get_running_loop()
        # workers=0: run_in_executor(None) -> default thread pool, same code path.
        return await loop.run_in_executor(self._pool, run_shard, payload)

    # -- diagnostics --------------------------------------------------------------

    def service_stats(self) -> Dict[str, Any]:
        """Service-level counters (request totals, shedding, queue state)."""
        return {
            **self.stats,
            "pending": self._pending,
            "workers": self.workers,
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "published_programs": len(self._sources),
            "coordinator_cache": self.cache.stats.as_dict(),
        }


def generate_sync(
    source: str,
    n: int = 1,
    seed: int = 0,
    strategy: str = "rejection",
    workers: int = 0,
    **kwargs: Any,
) -> GenerateResponse:
    """One-shot synchronous convenience wrapper around a temporary service.

    Spins a service up (inline workers by default), runs a single
    ``generate`` request, and tears it down — useful in scripts and tests;
    long-lived callers should manage a :class:`GenerationService` instead.
    """

    async def _run() -> GenerateResponse:
        async with GenerationService(workers=workers) as service:
            return await service.generate(source, n=n, seed=seed, strategy=strategy, **kwargs)

    return asyncio.run(_run())


__all__ = [
    "GenerationFailedError",
    "GenerationService",
    "ServiceError",
    "ServiceOverloadedError",
    "generate_sync",
]

"""A minimal, dependency-free HTTP/WebSocket front end for the service.

Built directly on ``asyncio.start_server`` — no web framework, by design:
the container the service ships in carries only the standard library, and
the surface is four routes:

``GET /healthz``
    Liveness/readiness probe → ``200 {"ok": true, "status": "serving",
    "workers": N}``.
``GET /metrics``
    Prometheus text exposition of the service counters
    (``repro_service_requests_total``, ``..._scenes_total``,
    ``..._shed_total``, ``..._engine_cache_hits_total``, ``..._pending``,
    ...).
``POST /generate``
    JSON body with the same fields as the TCP ``generate`` op (``source`` |
    ``fingerprint``, ``n``, ``seed``, ``strategy``, ``max_iterations``,
    ``derive``, ``options``).  Blocking by default (one JSON document
    back); with ``"stream": true`` the response is
    ``application/x-ndjson`` with chunked transfer encoding — one frame
    per line, exactly the frames :meth:`GenerationService.generate_stream`
    yields, block frames as shards complete and an ``end`` frame with the
    merged stats.
``GET /ws`` (WebSocket)
    After the RFC 6455 handshake, the client sends one text frame holding
    the generate-request JSON and receives one text frame per stream
    frame, then a close frame.

Errors are structured: ``{"ok": false, "error": {"type": ...,
"message": ...}}`` with status 400 (bad request), 404 (no such route),
413 (body too large), 503 (:class:`ServiceOverloadedError`) or 500
(shard failures), and — mid-stream — an ``"frame": "error"`` NDJSON line,
since the status line has already been sent.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import struct
from typing import Any, AsyncIterator, Dict, Optional, Tuple

from .server import DEFAULT_MAX_REQUEST_BYTES, _error_response, _generate_params
from .service import GenerationFailedError, GenerationService, ServiceOverloadedError

_WS_MAGIC = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

_STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _error_status(error: Exception) -> int:
    if isinstance(error, ServiceOverloadedError):
        return 503
    if isinstance(error, GenerationFailedError):
        return 500
    return 400


class HttpGenerationServer:
    """Serve a :class:`GenerationService` over HTTP 1.1 (and WebSocket)."""

    def __init__(
        self,
        service: GenerationService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
    ):
        self.service = service
        self.host = host
        self.port = port  # 0 = ephemeral; the bound port lands here after start()
        self.max_body_bytes = int(max_body_bytes)
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> "HttpGenerationServer":
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=self.max_body_bytes
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        await self.service.close()

    async def __aenter__(self) -> "HttpGenerationServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        await self.close()

    # -- request handling ---------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            # HTTP/1.1 keep-alive: serve requests on this connection until
            # the client asks to close (``Connection: close``), a route
            # hijacks the socket (WebSocket upgrade, chunked NDJSON
            # streams), an error response is sent, or the peer hangs up.
            while True:
                parsed = await self._read_request(reader, writer)
                if parsed is None:
                    break
                method, path, headers, body = parsed
                keep_alive = "close" not in headers.get("connection", "").lower()
                reusable = await self._route(
                    method, path, headers, body, reader, writer, keep_alive
                )
                if not (reusable and keep_alive):
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            request_line = await reader.readuntil(b"\r\n")
        except asyncio.IncompleteReadError:
            return None
        except asyncio.LimitOverrunError:
            await self._send_json(writer, 413, _error_response(
                ValueError("request line too long")))
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            await self._send_json(writer, 400, _error_response(
                ValueError("malformed request line")))
            return None
        method, path = parts[0].upper(), parts[1]

        headers: Dict[str, str] = {}
        while True:
            try:
                line = await reader.readuntil(b"\r\n")
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
                return None
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

        length = int(headers.get("content-length", "0") or "0")
        if length > self.max_body_bytes:
            await self._send_json(writer, 413, _error_response(
                ValueError(f"request body exceeds {self.max_body_bytes} bytes")))
            return None
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _route(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        keep_alive: bool = False,
    ) -> bool:
        """Serve one request; returns whether the connection is reusable."""
        close = not keep_alive
        path = path.split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            await self._send_json(writer, 200, {
                "ok": True,
                "status": "serving",
                "workers": self.service.workers,
                "pending": self.service._pending,
            }, close=close)
            return True
        if path == "/metrics" and method == "GET":
            await self._send_text(writer, 200, self._metrics_text(),
                                  content_type="text/plain; version=0.0.4",
                                  close=close)
            return True
        if path == "/ws" and headers.get("upgrade", "").lower() == "websocket":
            await self._serve_websocket(headers, reader, writer)
            return False
        if path == "/generate":
            if method != "POST":
                await self._send_json(writer, 405, _error_response(
                    ValueError("use POST /generate")), close=close)
                return True
            return await self._serve_generate(body, writer, close=close)
        await self._send_json(writer, 404, _error_response(
            ValueError(f"no such route {path!r}")), close=close)
        return True

    # -- routes -------------------------------------------------------------------

    def _metrics_text(self) -> str:
        stats = self.service.service_stats()
        lines = []
        for key, metric, kind in (
            ("requests", "repro_service_requests_total", "counter"),
            ("streams", "repro_service_streams_total", "counter"),
            ("scenes", "repro_service_scenes_total", "counter"),
            ("failures", "repro_service_failures_total", "counter"),
            ("shed", "repro_service_shed_total", "counter"),
            ("engine_cache_hits", "repro_service_engine_cache_hits_total", "counter"),
            ("engine_cache_misses", "repro_service_engine_cache_misses_total", "counter"),
            ("pending", "repro_service_pending", "gauge"),
            ("peak_pending", "repro_service_peak_pending", "gauge"),
            ("workers", "repro_service_workers", "gauge"),
        ):
            lines.append(f"# TYPE {metric} {kind}")
            lines.append(f"{metric} {stats[key]}")
        return "\n".join(lines) + "\n"

    async def _serve_generate(
        self, body: bytes, writer: asyncio.StreamWriter, close: bool = True
    ) -> bool:
        try:
            request = json.loads(body.decode("utf-8")) if body else {}
            if not isinstance(request, dict):
                raise ValueError("request body must be a JSON object")
            params = _generate_params(request)
        except Exception as error:  # noqa: BLE001
            await self._send_json(writer, 400, _error_response(error), close=close)
            return True

        if request.get("stream"):
            await self._stream_ndjson(params, writer)
            return False  # chunked stream always ends the connection
        try:
            response = await self.service.generate(**params)
        except Exception as error:  # noqa: BLE001
            await self._send_json(
                writer, _error_status(error), _error_response(error), close=close
            )
            return True
        await self._send_json(writer, 200, {"ok": True, **response.as_dict()}, close=close)
        return True

    async def _stream_ndjson(self, params: Dict[str, Any], writer: asyncio.StreamWriter) -> None:
        """``POST /generate`` with ``stream: true`` → chunked NDJSON frames."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()

        async def send_line(payload: Dict[str, Any]) -> None:
            data = json.dumps(payload).encode("utf-8") + b"\n"
            writer.write(f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n")
            await writer.drain()

        stream = self.service.generate_stream(**params)
        try:
            async for frame in stream:
                await send_line({"ok": True, **frame})
        except (ConnectionResetError, BrokenPipeError):
            raise
        except Exception as error:  # noqa: BLE001 - status already sent; answer in-band
            await send_line({**_error_response(error), "frame": "error"})
        finally:
            await stream.aclose()
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # -- websocket ----------------------------------------------------------------

    async def _serve_websocket(
        self,
        headers: Dict[str, str],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        key = headers.get("sec-websocket-key")
        if not key:
            await self._send_json(writer, 400, _error_response(
                ValueError("missing Sec-WebSocket-Key")))
            return
        accept = base64.b64encode(
            hashlib.sha1((key + _WS_MAGIC).encode("ascii")).digest()
        ).decode("ascii")
        writer.write(
            b"HTTP/1.1 101 Switching Protocols\r\n"
            b"Upgrade: websocket\r\nConnection: Upgrade\r\n"
            + f"Sec-WebSocket-Accept: {accept}\r\n\r\n".encode("ascii")
        )
        await writer.drain()

        message = await _ws_read_text(reader, self.max_body_bytes)
        if message is None:
            return
        try:
            request = json.loads(message)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            params = _generate_params(request)
        except Exception as error:  # noqa: BLE001
            await _ws_send_text(writer, json.dumps(_error_response(error)))
            await _ws_send_close(writer)
            return

        # Stream frames while watching the socket for a client close frame
        # (RFC 6455 §5.5.1): a client hanging up mid-stream must abort the
        # generation promptly and still get the close handshake reply,
        # instead of the server pushing frames into a dead conversation.
        stream = self.service.generate_stream(**params)
        watcher = asyncio.ensure_future(self._ws_await_close(reader))
        try:
            while True:
                frame_task = asyncio.ensure_future(stream.__anext__())
                await asyncio.wait(
                    {frame_task, watcher}, return_when=asyncio.FIRST_COMPLETED
                )
                if watcher.done():
                    frame_task.cancel()
                    await asyncio.gather(frame_task, return_exceptions=True)
                    break
                try:
                    frame = frame_task.result()
                except StopAsyncIteration:
                    break
                await _ws_send_text(writer, json.dumps({"ok": True, **frame}))
        except (ConnectionResetError, BrokenPipeError):
            raise
        except Exception as error:  # noqa: BLE001
            await _ws_send_text(
                writer, json.dumps({**_error_response(error), "frame": "error"})
            )
        finally:
            await stream.aclose()
            if not watcher.done():
                watcher.cancel()
                await asyncio.gather(watcher, return_exceptions=True)
        await _ws_send_close(writer)

    @staticmethod
    async def _ws_await_close(reader: asyncio.StreamReader) -> None:
        """Consume client frames until a close frame (or EOF) arrives."""
        while await _ws_read_frame(reader) is not None:
            pass

    # -- plumbing -----------------------------------------------------------------

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        close: bool = True,
    ) -> None:
        await self._send_text(
            writer, status, json.dumps(payload), content_type="application/json",
            close=close,
        )

    async def _send_text(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        text: str,
        content_type: str = "text/plain",
        close: bool = True,
    ) -> None:
        body = text.encode("utf-8")
        phrase = _STATUS_PHRASES.get(status, "OK")
        connection = "close" if close else "keep-alive"
        writer.write(
            f"HTTP/1.1 {status} {phrase}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n\r\n".encode("latin-1")
            + body
        )
        await writer.drain()


# -- minimal RFC 6455 frame plumbing (server side + test client) -------------------


async def _ws_send_text(writer: asyncio.StreamWriter, text: str, mask: bool = False) -> None:
    """Write one text frame (server frames are unmasked; clients must mask)."""
    payload = text.encode("utf-8")
    header = bytearray([0x81])  # FIN + text opcode
    mask_bit = 0x80 if mask else 0
    if len(payload) < 126:
        header.append(mask_bit | len(payload))
    elif len(payload) < 1 << 16:
        header.append(mask_bit | 126)
        header += struct.pack(">H", len(payload))
    else:
        header.append(mask_bit | 127)
        header += struct.pack(">Q", len(payload))
    if mask:
        key = b"\x12\x34\x56\x78"  # deterministic; masking is framing, not crypto
        header += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    writer.write(bytes(header) + payload)
    await writer.drain()


async def _ws_send_close(writer: asyncio.StreamWriter) -> None:
    writer.write(b"\x88\x00")
    await writer.drain()


async def _ws_read_frame(reader: asyncio.StreamReader) -> Optional[Tuple[int, bytes]]:
    """One frame → ``(opcode, payload)``; ``None`` on EOF/close."""
    try:
        first, second = await reader.readexactly(2)
    except asyncio.IncompleteReadError:
        return None
    opcode = first & 0x0F
    masked = bool(second & 0x80)
    length = second & 0x7F
    if length == 126:
        (length,) = struct.unpack(">H", await reader.readexactly(2))
    elif length == 127:
        (length,) = struct.unpack(">Q", await reader.readexactly(8))
    key = await reader.readexactly(4) if masked else None
    payload = await reader.readexactly(length) if length else b""
    if key:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    if opcode == 0x8:  # close
        return None
    return opcode, payload


async def _ws_read_text(reader: asyncio.StreamReader, max_bytes: int) -> Optional[str]:
    frame = await _ws_read_frame(reader)
    if frame is None:
        return None
    _opcode, payload = frame
    if len(payload) > max_bytes:
        return None
    return payload.decode("utf-8")


async def websocket_generate(
    host: str, port: int, request: Dict[str, Any]
) -> AsyncIterator[Dict[str, Any]]:
    """Tiny WebSocket client for ``GET /ws`` (tests, smoke, examples).

    Performs the handshake, sends *request* as one text frame, and yields
    each response frame as a dict until the server closes.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        key = base64.b64encode(b"repro-ws-client-seed").decode("ascii")
        writer.write(
            f"GET /ws HTTP/1.1\r\nHost: {host}:{port}\r\n"
            f"Upgrade: websocket\r\nConnection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\nSec-WebSocket-Version: 13\r\n\r\n".encode("latin-1")
        )
        await writer.drain()
        status = await reader.readuntil(b"\r\n\r\n")
        if b" 101 " not in status.split(b"\r\n", 1)[0]:
            raise ConnectionError(f"websocket handshake refused: {status[:80]!r}")
        await _ws_send_text(writer, json.dumps(request), mask=True)
        while True:
            frame = await _ws_read_frame(reader)
            if frame is None:
                return
            _opcode, payload = frame
            yield json.loads(payload.decode("utf-8"))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[Dict[str, Any]] = None,
) -> Tuple[int, bytes]:
    """One-shot HTTP client (stdlib-only, used by tests and the CLI smoke).

    Returns ``(status, body_bytes)``; chunked NDJSON responses are
    de-chunked, so the body is the raw frame lines.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = json.dumps(body).encode("utf-8") if body is not None else b""
        writer.write(
            f"{method} {path} HTTP/1.1\r\nHost: {host}:{port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n".encode("latin-1")
            + payload
        )
        await writer.drain()
        status_line = await reader.readuntil(b"\r\n")
        status = int(status_line.split()[1])
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readuntil(b"\r\n")
            if line == b"\r\n":
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if headers.get("transfer-encoding", "").lower() == "chunked":
            chunks = []
            while True:
                size_line = await reader.readuntil(b"\r\n")
                size = int(size_line.strip() or b"0", 16)
                if size == 0:
                    await reader.readuntil(b"\r\n")
                    break
                chunks.append(await reader.readexactly(size))
                await reader.readexactly(2)  # trailing CRLF
            return status, b"".join(chunks)
        length = int(headers.get("content-length", "0") or "0")
        return status, (await reader.readexactly(length) if length else await reader.read())
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


__all__ = ["HttpGenerationServer", "http_request", "websocket_generate"]

"""A JSON-lines TCP front end for :class:`~repro.service.GenerationService`.

One request per line, one response per line, UTF-8 JSON.  The protocol is
deliberately tiny (and dependency-free) — it exists so the service can be
driven from outside the process (`python -m repro.service serve`), load
tested, and smoke tested in CI over a real socket.

Operations (``{"op": ..., ...}``):

``ping``
    Liveness probe → ``{"ok": true, "op": "ping"}``.
``publish``
    ``{"source": "..."}`` → ``{"ok": true, "fingerprint": "..."}``.  The
    program can then be requested by fingerprint alone.
``generate``
    ``{"source": "..."} | {"fingerprint": "..."}`` plus optional ``n``,
    ``seed``, ``strategy``, ``max_iterations``, ``derive``, ``options``
    (strategy options object) → the full
    :meth:`~repro.service.protocol.GenerateResponse.as_dict` payload.
``stats``
    → ``{"ok": true, "stats": {...}}`` (service-level counters).
``shutdown``
    Acknowledges, then stops the server loop (used for clean shutdown in
    tests and the CLI).

Errors never drop the connection: they come back as
``{"ok": false, "error": {"type": ..., "message": ...}}``, with overload
shedding distinguishable as ``type == "ServiceOverloadedError"``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional

from .service import GenerationService


class GenerationServer:
    """Serve a :class:`GenerationService` over newline-delimited JSON."""

    def __init__(self, service: GenerationService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port  # 0 = ephemeral; the bound port lands here after start()
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> "GenerationServer":
        await self.service.start()
        self._server = await asyncio.start_server(self._handle_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` op arrives (or the task is cancelled)."""
        await self._shutdown.wait()
        await self.close()

    async def close(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        await self.service.close()
        self._shutdown.set()

    async def __aenter__(self) -> "GenerationServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        await self.close()

    # -- request handling ---------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not reader.at_eof():
                line = await reader.readline()
                if not line.strip():
                    if not line:
                        break
                    continue
                response = await self._dispatch_line(line)
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
                if response.get("op") == "shutdown" and response.get("ok"):
                    self._shutdown.set()
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            # Swallow CancelledError too: server.close() cancels handler
            # tasks mid-await, and a cancelled cleanup is still a clean close.
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _dispatch_line(self, line: bytes) -> Dict[str, Any]:
        try:
            request = json.loads(line.decode("utf-8"))
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            return await self._dispatch(request)
        except Exception as error:  # noqa: BLE001 - protocol errors must answer
            # ServiceErrors (overload, generation failure) and protocol
            # errors alike answer in-band; the type travels in the payload.
            return _error_response(error)

    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op", "generate")
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "stats":
            return {"ok": True, "op": "stats", "stats": self.service.service_stats()}
        if op == "shutdown":
            return {"ok": True, "op": "shutdown"}
        if op == "publish":
            fingerprint = self.service.publish(str(request["source"]))
            return {"ok": True, "op": "publish", "fingerprint": fingerprint}
        if op == "generate":
            source_or_hash = request.get("source") or request.get("fingerprint")
            if not source_or_hash:
                raise ValueError("generate needs 'source' or 'fingerprint'")
            options = request.get("options") or {}
            if not isinstance(options, dict):
                raise ValueError("'options' must be an object of strategy options")
            response = await self.service.generate(
                str(source_or_hash),
                n=int(request.get("n", 1)),
                seed=int(request.get("seed", 0)),
                strategy=str(request.get("strategy", "rejection")),
                max_iterations=int(request.get("max_iterations", 2000)),
                derive=str(request.get("derive", "splitmix")),
                **options,
            )
            return {"ok": True, "op": "generate", **response.as_dict()}
        raise ValueError(f"unknown op {op!r}")


def _error_response(error: Exception) -> Dict[str, Any]:
    return {
        "ok": False,
        "error": {"type": type(error).__name__, "message": str(error)},
    }


async def request_over_tcp(host: str, port: int, request: Dict[str, Any]) -> Dict[str, Any]:
    """Send one JSON-lines request and await its response (client helper)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(json.dumps(request).encode("utf-8") + b"\n")
        await writer.drain()
        line = await reader.readline()
        if not line:
            raise ConnectionError("server closed the connection without answering")
        return json.loads(line.decode("utf-8"))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


__all__ = ["GenerationServer", "request_over_tcp"]
